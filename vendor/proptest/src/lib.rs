//! Minimal API-compatible stand-in for the `proptest` crate.
//!
//! The build environment for this repository is offline, so the real
//! `proptest` cannot be fetched. This shim keeps the property tests
//! runnable with the same source text: the [`proptest!`] macro expands to
//! ordinary `#[test]` functions that draw each argument from its
//! [`Strategy`](strategy::Strategy) for a configurable number of cases
//! using a deterministic per-test RNG.
//!
//! **Differences from real proptest:** no shrinking (a failing case
//! reports the assertion message only), no persisted failure seeds, and
//! only the strategy combinators this workspace uses (`Just`, ranges,
//! tuples, `prop_map`, `prop_oneof!`, `collection::vec`, `any` for
//! primitives).

pub mod test_runner {
    //! Test-case driving: configuration and the deterministic RNG.

    /// Mirror of proptest's run configuration (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xorshift64* RNG, seeded from the test name so each
    /// property sees a stable but distinct stream across runs.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary string (e.g. the test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, then force non-zero.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h },
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "TestRng::below(0)");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators (generation only).

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe: `prop_oneof!` stores arms as `Box<dyn Strategy>`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among strategies of a common value type
    /// (what `prop_oneof!` builds).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total_weight: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total_weight }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total_weight);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights cover the draw")
        }
    }

    /// Boxes a strategy, erasing its concrete type (helper for macros).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Types with a canonical "any value" strategy.
    pub trait ArbitraryValue: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for an unconstrained value of `T` (see [`any`]).
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `proptest::prelude::any::<T>()` — any value of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A / 0);
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
        (A / 0, B / 1, C / 2, D / 3, E / 4);
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size bound for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — vectors of `element` with `size` in
    /// the given range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted or uniform choice among strategies (generation-only shim).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strategy))),+
        ])
    };
}

/// Property assertion (plain `assert!` here: no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strategy:expr),* $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                $(let $arg = $crate::strategy::boxed($strategy);)*
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)*
                    $body
                }
            }
        )*
    };
}
