//! Corpus-level sanity: generated benchmark programs flow through the
//! whole pipeline, and the headline comparisons of §6.5 hold in aggregate
//! (Retypd at least as accurate and at least as conservative as the
//! unification baseline).

use retypd::core::Lattice;
use retypd::eval::harness::evaluate_module;
use retypd::eval::metrics::average;
use retypd::minic::genprog::{ClusterSpec, GenConfig, ProgramGenerator};

#[test]
fn corpus_headline_comparison() {
    let lattice = Lattice::c_types();
    let mut retypd_scores = Vec::new();
    let mut unif_scores = Vec::new();
    for seed in 0..6u64 {
        let module = ProgramGenerator::new(GenConfig {
            seed: 1000 + seed,
            functions: 12,
            ..GenConfig::default()
        })
        .generate();
        let r = evaluate_module(&format!("corpus{seed}"), &module, &lattice);
        retypd_scores.push(r.scores.retypd);
        unif_scores.push(r.scores.unification);
    }
    let rt = average(&retypd_scores);
    let un = average(&unif_scores);
    // On tiny modules the unification blob can *look* close (it borrows
    // structure from the whole program) while being wildly non-conservative,
    // so distance gets a tolerance; the conservativeness gap is the robust
    // signal (the paper's §6.5 tradeoff).
    assert!(
        rt.distance <= un.distance + 0.25,
        "retypd distance {} vs unification {}",
        rt.distance,
        un.distance
    );
    assert!(
        rt.conservativeness >= un.conservativeness + 0.10,
        "retypd conservativeness {} vs unification {}",
        rt.conservativeness,
        un.conservativeness
    );
    // Retypd's conservativeness should be high in absolute terms (paper: 95%).
    assert!(
        rt.conservativeness > 0.75,
        "retypd conservativeness too low: {}",
        rt.conservativeness
    );
}

#[test]
fn clusters_flow_through_pipeline() {
    let lattice = Lattice::c_types();
    let spec = ClusterSpec {
        name: "mini".into(),
        members: 3,
        shared_functions: 8,
        member_functions: 3,
        seed: 77,
        call_depth: 0,
    };
    for (name, module) in ProgramGenerator::generate_cluster(&spec) {
        let r = evaluate_module(&name, &module, &lattice);
        assert!(r.scores.retypd.slots > 0, "{name} produced no slots");
        assert!(r.instructions > 100);
    }
}

#[test]
fn const_recall_is_high() {
    // §6.4: the const-recall rate over a small corpus should be near the
    // paper's 98%.
    let lattice = Lattice::c_types();
    let mut found = 0.0;
    let mut total = 0usize;
    for seed in 0..5u64 {
        let module = ProgramGenerator::new(GenConfig {
            seed: 2000 + seed,
            functions: 12,
            const_percent: 80,
            ..GenConfig::default()
        })
        .generate();
        let r = evaluate_module(&format!("c{seed}"), &module, &lattice);
        let m = r.scores.retypd;
        found += m.const_recall * m.const_truths as f64;
        total += m.const_truths;
    }
    assert!(total > 5, "corpus had too few const params: {total}");
    let recall = found / total as f64;
    assert!(recall > 0.85, "const recall {recall}");
}
