//! # retypd-congen
//!
//! Constraint generation: the abstract interpretation of Appendix A,
//! turning machine IR into Retypd type constraints.
//!
//! For every procedure the generator:
//!
//! 1. runs the [`retypd_mir`] analyses (CFG, stack-pointer tracking,
//!    reaching definitions),
//! 2. recovers the *locators* — formal-in/out locations (Appendix A.4),
//! 3. walks every instruction, emitting roughly one subtype constraint per
//!    instruction (§5.3): value copies become `Y ⊑ X`, loads become
//!    `P.load.σN@k ⊑ X`, stores become `Y ⊑ P.store.σN@k`, calls link
//!    actuals against callsite-tagged callee variables, and
//!    non-constant-operand arithmetic becomes `ADD`/`SUB` constraints.
//!
//! Flow sensitivity comes from reaching definitions: a location use is
//! typed by the definitions that reach it (Example A.2), which is what
//! defuses the §2.1 idioms (stack-slot reuse, fortuitous value reuse) and
//! the `xor reg,reg` semi-syntactic constants. The bit-twiddling special
//! cases of §A.5.2 (flag-only `test`/`cmp`, alignment masks, tag-bit
//! `or`s) are implemented faithfully.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gen;
pub mod stdlib;

pub use gen::{generate, generate_with_externals, FuncSummary};
pub use stdlib::standard_externals;
