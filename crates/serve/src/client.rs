//! The client library: a thin, blocking wrapper over the wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues requests serially
//! (the protocol is request/response). Concurrency comes from owning
//! several clients — the `loadgen` binary drives one per worker thread.
//!
//! Protocol v2 surfaces: the `*_in` request variants carry a
//! [`LatticeDescriptor`] (absent ⇒ the server's default `c_types`), and
//! [`Client::solve_batch_stream`] returns a [`BatchStream`] iterator that
//! yields each module's report as its frame arrives — first results land
//! while the rest of the batch is still solving.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use retypd_core::LatticeDescriptor;
use retypd_driver::ModuleJob;

use crate::wire::{
    self, Request, Response, WireBatchDone, WireMetrics, WireModule, WireReport, WireStats,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or protocol trouble.
    Wire(wire::WireError),
    /// The server refused the request at admission control.
    Overloaded {
        /// Jobs in flight at the server when it refused.
        queued: usize,
        /// The server's admission limit.
        limit: usize,
    },
    /// The server is draining.
    ShuttingDown,
    /// The server reported a request error.
    Server(String),
    /// One module of a streaming batch failed (e.g. a solver panic); the
    /// rest of the stream continues. Carries the module's submission
    /// index so the caller can mark or retry exactly that slot.
    Module {
        /// The failed module's position in the submitted batch.
        index: usize,
        /// The server's description of the failure.
        message: String,
    },
    /// The server answered with a response kind the call did not expect.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Overloaded { queued, limit } => {
                write!(f, "server overloaded ({queued}/{limit} jobs in flight)")
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Module { index, message } => {
                write!(f, "module {index} failed: {message}")
            }
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<wire::WireError> for ClientError {
    fn from(e: wire::WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Wire(wire::WireError::Io(e))
    }
}

/// Retry policy for [`ClientError::Overloaded`] refusals: jittered
/// exponential backoff under a bounded retry budget.
///
/// Admission refusals are transient by design — the server sheds load
/// instead of queueing unboundedly — so the productive client response
/// is to back off and resubmit. Only `Overloaded` is retried: every
/// other error (protocol trouble, server shutdown, invalid input) is
/// returned immediately.
///
/// The wait before retry `k` (0-based) is drawn uniformly from
/// `[d/2, d]` where `d = min(cap, base · 2^k)` ("equal jitter"), so
/// concurrent clients refused together do not resubmit in lockstep.
/// Total added latency is bounded by `budget · cap`; a policy never
/// spins forever.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Maximum number of retries after the initial attempt. `0` means
    /// the retry calls behave exactly like their plain counterparts.
    pub budget: u32,
    /// Backoff before the first retry; doubles each refusal.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Seed for the jitter PRNG — give each concurrent client a
    /// distinct seed so their backoff schedules decorrelate.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `budget` retries and the default backoff shape
    /// (10 ms base, 500 ms cap).
    pub fn new(budget: u32) -> RetryPolicy {
        RetryPolicy {
            budget,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The same policy with a different jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The jittered wait before retry `attempt` (0-based): equal-jitter
    /// exponential backoff, deterministic per `(policy, attempt)`. Public
    /// because the gateway's hedging and re-route machinery schedules its
    /// duplicate requests on exactly this curve.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX));
        let ceiling = doubled.min(self.cap);
        let nanos = u64::try_from(ceiling.as_nanos()).unwrap_or(u64::MAX);
        if nanos < 2 {
            return ceiling;
        }
        // xorshift64* keyed by seed and attempt: deterministic per
        // (policy, attempt) yet uncorrelated across seeds.
        let mut x = self.seed ^ (u64::from(attempt).wrapping_add(1)).wrapping_mul(0x2545_f491_4f6c_dd1d);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let half = nanos / 2;
        Duration::from_nanos(half + x % (nanos - half))
    }
}

/// A blocking connection to a `retypd-serve` server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Fails if the address does not resolve or the connection is refused.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Connects, retrying until `timeout` elapses — for racing a server
    /// that is still binding its socket (the CI load test starts the
    /// server as a background process).
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the deadline passes.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => retypd_core::sync::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        let payload = wire::read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Unexpected("server closed the connection".into()))?;
        Ok(Response::decode(&payload)?)
    }

    fn expect_solved(resp: Response) -> Result<Vec<WireReport>, ClientError> {
        match resp {
            Response::Solved(reports) => Ok(reports),
            Response::Overloaded { queued, limit } => {
                Err(ClientError::Overloaded { queued, limit })
            }
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            Response::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Solves one module against the server's default lattice.
    ///
    /// # Errors
    ///
    /// [`ClientError::Overloaded`] when admission control refuses the job;
    /// other variants for protocol or server failures.
    pub fn solve_module(&mut self, job: &ModuleJob) -> Result<WireReport, ClientError> {
        self.solve_module_in(job, None)
    }

    /// Solves one module against a described lattice (`None` = the
    /// server's default `c_types`). The report's `lattice_fp` names the
    /// lattice it was solved against.
    ///
    /// # Errors
    ///
    /// As [`Client::solve_module`], plus [`ClientError::Server`] for an
    /// invalid lattice descriptor.
    pub fn solve_module_in(
        &mut self,
        job: &ModuleJob,
        lattice: Option<&LatticeDescriptor>,
    ) -> Result<WireReport, ClientError> {
        self.solve_module_traced(job, lattice, None)
    }

    /// [`Client::solve_module_in`] with a request-scoped `trace_id`: the
    /// server stamps the solve's tracing spans with it and echoes it in
    /// the report (`WireReport::trace_id`).
    ///
    /// # Errors
    ///
    /// As [`Client::solve_module_in`]; additionally the server rejects ids
    /// that are empty or longer than [`wire::MAX_TRACE_ID_BYTES`].
    pub fn solve_module_traced(
        &mut self,
        job: &ModuleJob,
        lattice: Option<&LatticeDescriptor>,
        trace_id: Option<&str>,
    ) -> Result<WireReport, ClientError> {
        let resp = self.roundtrip(&Request::SolveModule {
            module: WireModule::from_job(job),
            lattice: lattice.cloned(),
            trace_id: trace_id.map(str::to_owned),
        })?;
        let mut reports = Self::expect_solved(resp)?;
        if reports.len() != 1 {
            return Err(ClientError::Unexpected(format!(
                "{} reports for one module",
                reports.len()
            )));
        }
        Ok(reports.remove(0))
    }

    /// Solves a batch against the server's default lattice; reports come
    /// back in submission order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Overloaded`] when other in-flight work leaves no
    /// room in the admission budget (admission is all-or-nothing, so
    /// retrying later can succeed); [`ClientError::Server`] when the batch
    /// is bigger than the server's whole budget and could *never* be
    /// admitted — split it instead of retrying; other variants for
    /// protocol or server failures.
    pub fn solve_batch(&mut self, jobs: &[ModuleJob]) -> Result<Vec<WireReport>, ClientError> {
        self.solve_batch_in(jobs, None)
    }

    /// [`Client::solve_batch`] against a described lattice (`None` = the
    /// server's default `c_types`).
    ///
    /// # Errors
    ///
    /// As [`Client::solve_batch`], plus [`ClientError::Server`] for an
    /// invalid lattice descriptor.
    pub fn solve_batch_in(
        &mut self,
        jobs: &[ModuleJob],
        lattice: Option<&LatticeDescriptor>,
    ) -> Result<Vec<WireReport>, ClientError> {
        let modules = jobs.iter().map(WireModule::from_job).collect();
        let resp = self.roundtrip(&Request::SolveBatch {
            modules,
            lattice: lattice.cloned(),
            stream: false,
            trace_id: None,
        })?;
        let reports = Self::expect_solved(resp)?;
        if reports.len() != jobs.len() {
            return Err(ClientError::Unexpected(format!(
                "{} reports for {} modules",
                reports.len(),
                jobs.len()
            )));
        }
        Ok(reports)
    }

    /// [`Client::solve_module_in`] with retry-on-overloaded: admission
    /// refusals are retried under `policy` (jittered exponential
    /// backoff, at most `policy.budget` retries); every other error
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// As [`Client::solve_module_in`]; [`ClientError::Overloaded`] is
    /// returned only once the retry budget is exhausted.
    pub fn solve_module_retry(
        &mut self,
        job: &ModuleJob,
        lattice: Option<&LatticeDescriptor>,
        policy: &RetryPolicy,
    ) -> Result<WireReport, ClientError> {
        self.with_retry(policy, |c| c.solve_module_in(job, lattice))
    }

    /// [`Client::solve_batch_in`] with retry-on-overloaded, as
    /// [`Client::solve_module_retry`].
    ///
    /// # Errors
    ///
    /// As [`Client::solve_batch_in`]; [`ClientError::Overloaded`] is
    /// returned only once the retry budget is exhausted. A batch larger
    /// than the server's whole admission budget fails as
    /// [`ClientError::Server`] without consuming retries.
    pub fn solve_batch_retry(
        &mut self,
        jobs: &[ModuleJob],
        lattice: Option<&LatticeDescriptor>,
        policy: &RetryPolicy,
    ) -> Result<Vec<WireReport>, ClientError> {
        self.with_retry(policy, |c| c.solve_batch_in(jobs, lattice))
    }

    fn with_retry<T>(
        &mut self,
        policy: &RetryPolicy,
        mut op: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0u32;
        loop {
            match op(self) {
                Err(ClientError::Overloaded { .. }) if attempt < policy.budget => {
                    retypd_core::sync::thread::sleep(policy.backoff(attempt));
                    attempt += 1;
                }
                done => return done,
            }
        }
    }

    /// Submits a streaming batch: the server answers with one `report`
    /// frame per module *as it finishes* plus a terminal `batch_done`.
    /// The returned [`BatchStream`] yields `(submission index, report)`
    /// pairs in completion order; after it is exhausted,
    /// [`BatchStream::summary`] holds the aggregate stats. The reassembled
    /// set is bit-identical to [`Client::solve_batch`]'s reply.
    ///
    /// # Errors
    ///
    /// Pre-admission refusals surface here ([`ClientError::Overloaded`],
    /// [`ClientError::ShuttingDown`], [`ClientError::Server`]); per-module
    /// failures surface as `Err` items of the stream without ending it.
    pub fn solve_batch_stream(
        &mut self,
        jobs: &[ModuleJob],
        lattice: Option<&LatticeDescriptor>,
    ) -> Result<BatchStream<'_>, ClientError> {
        let modules = jobs.iter().map(WireModule::from_job).collect();
        wire::write_frame(
            &mut self.stream,
            &Request::SolveBatch {
                modules,
                lattice: lattice.cloned(),
                stream: true,
                trace_id: None,
            }
            .encode(),
        )?;
        // Peek the first frame so admission refusals become plain errors
        // instead of iterator items.
        let first = Self::read_stream_frame(&mut self.stream)?;
        let pending = match first {
            Response::Report { .. } | Response::BatchDone(_) => first,
            Response::Overloaded { queued, limit } => {
                return Err(ClientError::Overloaded { queued, limit })
            }
            Response::ShuttingDown => return Err(ClientError::ShuttingDown),
            Response::Error(m) => return Err(ClientError::Server(m)),
            other => return Err(ClientError::Unexpected(format!("{other:?}"))),
        };
        Ok(BatchStream {
            client: self,
            pending: Some(pending),
            summary: None,
            poisoned: false,
        })
    }

    fn read_stream_frame(stream: &mut TcpStream) -> Result<Response, ClientError> {
        let payload = wire::read_frame(stream)?.ok_or_else(|| {
            ClientError::Unexpected("server closed the connection mid-stream".into())
        })?;
        Ok(Response::decode(&payload)?)
    }

    /// Fetches server statistics.
    ///
    /// # Errors
    ///
    /// Fails on protocol or server errors.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the merged telemetry registry (v2): counters, gauges, and
    /// histogram buckets with server-extracted p50/p95/p99.
    ///
    /// # Errors
    ///
    /// Fails on protocol or server errors (a pre-v2 server answers
    /// `error: unknown request kind`).
    pub fn metrics(&mut self) -> Result<WireMetrics, ClientError> {
        match self.roundtrip(&Request::Metrics { text: false })? {
            Response::Metrics(m) => Ok(m),
            Response::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Fetches the telemetry registry as Prometheus-style exposition text.
    ///
    /// # Errors
    ///
    /// As [`Client::metrics`].
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.roundtrip(&Request::Metrics { text: true })? {
            Response::MetricsText(t) => Ok(t),
            Response::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain and stop. Success requires the
    /// `shutting_down` ack frame: the server joins its connection handlers
    /// on drain, so the ack is always delivered before the process exits —
    /// a hang-up here is a real failure, not an acceptable race.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors, a hang-up before the ack, or if the
    /// request cannot be sent.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, &Request::Shutdown.encode())?;
        match wire::read_frame(&mut self.stream)? {
            Some(payload) => match Response::decode(&payload)? {
                Response::ShuttingDown => Ok(()),
                Response::Error(m) => Err(ClientError::Server(m)),
                other => Err(ClientError::Unexpected(format!("{other:?}"))),
            },
            None => Err(ClientError::Unexpected(
                "server hung up before acknowledging shutdown".into(),
            )),
        }
    }
}

/// The streaming-batch iterator returned by [`Client::solve_batch_stream`].
///
/// Yields `Ok((submission index, report))` per finished module (completion
/// order — reassemble by index) and `Err(ClientError::Module { .. })` for
/// per-module failures (the stream continues). A wire-level failure
/// poisons the stream: iteration ends and the connection should be
/// dropped. Iterate with `while let Some(item) = stream.next()`, then read
/// [`BatchStream::summary`].
pub struct BatchStream<'c> {
    client: &'c mut Client,
    pending: Option<Response>,
    summary: Option<WireBatchDone>,
    poisoned: bool,
}

impl BatchStream<'_> {
    /// The terminal `batch_done` stats; `Some` once the stream is
    /// exhausted cleanly.
    pub fn summary(&self) -> Option<&WireBatchDone> {
        self.summary.as_ref()
    }

    /// True when the stream ended on a wire-level failure; the connection
    /// is desynchronized and should be dropped.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

impl Iterator for BatchStream<'_> {
    type Item = Result<(usize, WireReport), ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.summary.is_some() || self.poisoned {
            return None;
        }
        let frame = match self.pending.take() {
            Some(f) => f,
            None => match Client::read_stream_frame(&mut self.client.stream) {
                Ok(f) => f,
                Err(e) => {
                    self.poisoned = true;
                    return Some(Err(e));
                }
            },
        };
        match frame {
            Response::Report { index, result } => Some(match result {
                Ok(report) => Ok((index, *report)),
                Err(message) => Err(ClientError::Module { index, message }),
            }),
            Response::BatchDone(done) => {
                self.summary = Some(done);
                None
            }
            other => {
                self.poisoned = true;
                Some(Err(ClientError::Unexpected(format!("{other:?}"))))
            }
        }
    }
}
