//! The `retypd-serve` server binary.
//!
//! ```text
//! cargo run --release -p retypd-serve --bin serve -- --addr 127.0.0.1:7411 \
//!     --shards 4 --workers 1 --queue-depth 256 --cache-capacity 4096 \
//!     --read-timeout 30
//! ```
//!
//! Prints a human log line to stderr and the machine-readable
//! `RETYPD_SERVE_READY addr=… pid=… shards=…` banner to stdout once the
//! socket is bound and every shard is warm, then blocks until a `shutdown`
//! wire message drains it (CI and the gateway start this in the background
//! and read the banner instead of sleeping).
//!
//! The whole main lives in [`retypd_serve::launch`] so the gateway crate
//! can ship the identical server as its own `serve_backend` test binary.

fn main() {
    std::process::exit(retypd_serve::launch::serve_main(std::env::args().skip(1)));
}
