//! # retypd-serve
//!
//! A sharded network analysis service over the Retypd driver: the layer
//! that turns the single-process [`retypd_driver::AnalysisDriver`] into
//! something a fleet can talk to.
//!
//! * [`wire`] — a length-prefixed JSON protocol, version 2: a versioned
//!   request envelope (`"v": 2`; absent ⇒ v1 compatibility), an optional
//!   `lattice` descriptor per solve request (absent ⇒ `c_types`), and a
//!   streaming `solve_batch` mode (`report` frame per module plus a
//!   terminal `batch_done`). Programs travel as canonical constraint
//!   text, which round-trips exactly through [`retypd_core::parse`], so
//!   server-side solves are bit-identical to in-process ones.
//! * [`server`] — an acceptor plus N shard threads, each owning a
//!   long-lived driver with a bounded persistent cache; shards solve
//!   through the driver's request/session API, so per-request lattices
//!   segregate cache entries by lattice fingerprint. Modules route by
//!   content fingerprint, so a re-submitted module always finds its warm
//!   cache. Admission control refuses work past a queue-depth limit with
//!   `overloaded` instead of stacking latency; connection handlers are
//!   tracked and joined on drain (polled reads with a configurable
//!   timeout), so shutdown delivers every final frame before exit.
//! * [`client`] — a blocking client (plus the [`client::BatchStream`]
//!   streaming iterator) used by the tests and by the
//!   [`loadgen`](../loadgen/index.html) binary, which replays a generated
//!   corpus at a target concurrency and reports p50/p95 latency,
//!   time-to-first-report, throughput, and per-shard cache hit rates as
//!   JSON.
//! * [`json`] — the dependency-free JSON model backing the protocol (the
//!   offline vendor set has no `serde_json`; the wire structs still carry
//!   serde derives so the real serde can slot in later).
//! * [`launch`] — the `serve` binary's main as a library function, plus
//!   the machine-readable stdout readiness banner
//!   (`RETYPD_SERVE_READY addr=… pid=… shards=…`) a supervisor parses to
//!   learn the bound address without races or fixed sleeps; shared so the
//!   gateway crate can spawn the identical server from its own tests.
//!
//! The networking is deliberately `std`-only (`TcpListener` + threads):
//! the vendored dependency set has no async runtime, and the analysis
//! itself is CPU-bound thread-pool work — the socket layer just needs to
//! feed it without blocking admission.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod client;
pub mod json;
pub mod launch;
pub mod server;
pub mod stats_cells;
pub mod wire;

pub use client::{BatchStream, Client, ClientError, RetryPolicy};
pub use launch::{parse_ready_banner, ready_banner, serve_main, READY_SENTINEL};
pub use server::{start, MetricsObserver, ServeConfig, ServerHandle};
pub use wire::{Request, Response, WireBatchDone, WireModule, WireReport, WireStats};

#[cfg(test)]
mod tests {
    use retypd_core::parse::parse_constraint_set;
    use retypd_core::solver::{CallTarget, Callsite, Procedure};
    use retypd_core::{Program, Symbol};
    use retypd_driver::ModuleJob;

    use crate::wire::{Request, Response, WireModule, WireReport};

    fn sample_job() -> ModuleJob {
        let mut prog = Program::new();
        prog.add_proc(Procedure {
            name: Symbol::intern("main"),
            constraints: parse_constraint_set(
                "main.in_stack0 <= x; x <= leaf@c1.in_stack0; Add(x, one; y)",
            )
            .unwrap(),
            callsites: vec![Callsite {
                callee: CallTarget::Internal(1),
                tag: "c1".into(),
            }],
        });
        prog.add_proc(Procedure {
            name: Symbol::intern("leaf"),
            constraints: parse_constraint_set(
                "leaf.in_stack0 <= t; t.load.σ32@0 <= int; VAR t.load",
            )
            .unwrap(),
            callsites: vec![Callsite {
                callee: CallTarget::External(Symbol::intern("malloc")),
                tag: "x1".into(),
            }],
        });
        prog.externals.insert(
            Symbol::intern("malloc"),
            retypd_core::TypeScheme::new(
                retypd_core::BaseVar::var("malloc"),
                ["τ"].into_iter().map(Symbol::intern).collect(),
                parse_constraint_set("malloc.in_stack0 <= size_t").unwrap(),
            ),
        );
        prog.globals.insert(retypd_core::BaseVar::var("gbuf"));
        ModuleJob {
            name: "sample".into(),
            program: prog,
        }
    }

    #[test]
    fn module_round_trips_through_the_wire_form() {
        let job = sample_job();
        let wire = WireModule::from_job(&job);
        let back = wire.to_job().expect("wire module reconstructs");
        assert_eq!(back.name, job.name);
        assert_eq!(back.fingerprint(), job.fingerprint(), "content-identical");
        // Spot-check structure, not just the fingerprint.
        assert_eq!(back.program.procs.len(), 2);
        assert_eq!(
            back.program.procs[0].constraints,
            job.program.procs[0].constraints
        );
        assert_eq!(back.program.externals.len(), 1);
        assert_eq!(back.program.globals, job.program.globals);
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let job = sample_job();
        let custom = retypd_core::Lattice::paper_example().descriptor().clone();
        for req in [
            Request::solve_module(WireModule::from_job(&job)),
            Request::solve_batch(vec![WireModule::from_job(&job); 3]),
            Request::SolveModule {
                module: WireModule::from_job(&job),
                lattice: Some(custom.clone()),
                trace_id: Some("req-7".into()),
            },
            Request::SolveBatch {
                modules: vec![WireModule::from_job(&job); 2],
                lattice: Some(custom),
                stream: true,
                trace_id: None,
            },
            Request::Stats,
            Request::Metrics { text: false },
            Request::Metrics { text: true },
            Request::Shutdown,
        ] {
            let bytes = req.encode();
            let back = Request::decode(&bytes).expect("request decodes");
            assert_eq!(back.encode(), bytes, "deterministic re-encode");
        }
    }

    #[test]
    fn v1_requests_still_decode_and_future_versions_are_refused() {
        // A v1 frame: no `v`, no `lattice`, no `stream` — the PR-4 wire
        // shape must keep decoding to a default-lattice non-streaming
        // request.
        let v1 = br#"{"kind": "solve_batch", "modules": []}"#;
        match Request::decode(v1).expect("v1 decodes") {
            Request::SolveBatch {
                modules,
                lattice,
                stream,
                trace_id,
            } => {
                assert!(modules.is_empty());
                assert!(lattice.is_none(), "absent lattice means the default");
                assert!(!stream, "v1 batches are single-frame");
                assert!(trace_id.is_none(), "v1 requests are untraced");
            }
            other => panic!("expected SolveBatch, got {other:?}"),
        }
        // An unknown future version is refused (its fields cannot be
        // guessed), with the supported ceiling named.
        let v9 = br#"{"v": 9, "kind": "stats"}"#;
        let err = Request::decode(v9).expect_err("future version refused");
        assert!(err.to_string().contains("version 9"), "{err}");
        // A malformed lattice descriptor is a protocol error, not a panic.
        let bad = br#"{"v": 2, "kind": "solve_batch", "lattice": "not a lattice", "modules": []}"#;
        assert!(Request::decode(bad).is_err());
    }

    #[test]
    fn responses_round_trip_through_frames() {
        let lattice = retypd_core::Lattice::c_types();
        let job = sample_job();
        let result = retypd_core::Solver::new(&lattice).infer(&job.program);
        let report = WireReport::from_result(&job.name, &result);
        for resp in [
            Response::Solved(vec![report.clone()]),
            Response::Report {
                index: 3,
                result: Ok(Box::new(report.clone())),
            },
            Response::Report {
                index: 4,
                result: Err("solver panicked".into()),
            },
            Response::BatchDone(crate::wire::WireBatchDone {
                modules: 5,
                delivered: 4,
                errors: vec!["solver panicked".into()],
                wall_ns: 123,
                lattice_fp: 7,
            }),
            Response::Overloaded {
                queued: 9,
                limit: 8,
            },
            Response::ShuttingDown,
            Response::Error("boom".into()),
        ] {
            let bytes = resp.encode();
            let back = Response::decode(&bytes).expect("response decodes");
            assert_eq!(back.encode(), bytes, "deterministic re-encode");
        }
        // The canonical text survives the wire byte-for-byte.
        let bytes = Response::Solved(vec![report.clone()]).encode();
        let Response::Solved(reports) = Response::decode(&bytes).unwrap() else {
            panic!("expected solved");
        };
        assert_eq!(reports[0].canonical_text(), report.canonical_text());
        assert_eq!(reports[0].stats.constraints, result.stats.constraints);
    }

    #[test]
    fn framing_rejects_oversized_and_truncated() {
        use crate::wire::{read_frame, write_frame};
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{}").unwrap();
        assert_eq!(read_frame(&mut &buf[..]).unwrap().as_deref(), Some(&b"{}"[..]));
        // Clean EOF between frames.
        assert_eq!(read_frame(&mut &[][..]).unwrap(), None);
        // EOF inside a frame is an error.
        let truncated = &buf[..buf.len() - 1];
        assert!(read_frame(&mut &truncated[..]).is_err());
        // An announced length over the cap is refused without allocating.
        let huge = (u32::MAX).to_be_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
    }
}
