//! The sign monoid `{⊕, ⊖}` of label variances (Definition 3.2).
//!
//! Every field label has a variance; the variance of a word of labels is the
//! product of the labels' variances in the sign monoid where
//! `⊕·⊕ = ⊖·⊖ = ⊕` and `⊕·⊖ = ⊖·⊕ = ⊖`.

use std::fmt;
use std::ops::Mul;

/// Variance of a field label or label word (Definition 3.2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Variance {
    /// `⊕` — covariant: `α ⊑ β` entails `α.ℓ ⊑ β.ℓ` (rule S-FIELD⊕).
    #[default]
    Covariant,
    /// `⊖` — contravariant: `α ⊑ β` entails `β.ℓ ⊑ α.ℓ` (rule S-FIELD⊖).
    Contravariant,
}

impl Variance {
    /// Composes two variances in the sign monoid.
    ///
    /// ```
    /// use retypd_core::Variance::{Contravariant, Covariant};
    /// assert_eq!(Covariant * Contravariant, Contravariant);
    /// assert_eq!(Contravariant * Contravariant, Covariant);
    /// ```
    pub fn compose(self, other: Variance) -> Variance {
        if self == other {
            Variance::Covariant
        } else {
            Variance::Contravariant
        }
    }

    /// Returns the opposite variance.
    pub fn flip(self) -> Variance {
        match self {
            Variance::Covariant => Variance::Contravariant,
            Variance::Contravariant => Variance::Covariant,
        }
    }

    /// True if this is `⊕`.
    pub fn is_covariant(self) -> bool {
        self == Variance::Covariant
    }
}

impl Mul for Variance {
    type Output = Variance;

    fn mul(self, rhs: Variance) -> Variance {
        self.compose(rhs)
    }
}

impl fmt::Display for Variance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Variance::Covariant => f.write_str("⊕"),
            Variance::Contravariant => f.write_str("⊖"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Variance::{self, Contravariant as N, Covariant as P};

    #[test]
    fn monoid_laws() {
        let all = [P, N];
        // Identity.
        for v in all {
            assert_eq!(P * v, v);
            assert_eq!(v * P, v);
        }
        // Associativity (exhaustive).
        for a in all {
            for b in all {
                for c in all {
                    assert_eq!((a * b) * c, a * (b * c));
                }
            }
        }
        // Commutativity (the sign monoid is abelian).
        for a in all {
            for b in all {
                assert_eq!(a * b, b * a);
            }
        }
    }

    #[test]
    fn flip_is_involutive() {
        assert_eq!(P.flip(), N);
        assert_eq!(N.flip(), P);
        assert_eq!(P.flip().flip(), P);
    }

    #[test]
    fn default_is_covariant() {
        assert_eq!(Variance::default(), P);
        assert!(P.is_covariant());
        assert!(!N.is_covariant());
    }
}
