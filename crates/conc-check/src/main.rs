//! `conc-check`: runs the model-checked concurrency suite and emits a
//! JSON run-stats report.
//!
//! ```text
//! conc-check [--seed N] [--max-iterations N] [--min-iterations N] [--out FILE]
//! ```
//!
//! Exit status 0 when every passing model explores clean (and meets
//! `--min-iterations`, when given) AND every mutation model fails with
//! a schedule that replays to the same failure; 1 otherwise; 2 on
//! usage errors. The JSON goes to stdout (or `--out FILE`) and CI
//! archives it next to the bench/fuzz smoke artifacts:
//!
//! ```json
//! {
//!   "seed": 1,
//!   "product_models_included": true,
//!   "models": [ {"name": "...", "iterations": 1234, "complete": true, ...} ],
//!   "mutations": [ {"name": "...", "caught": true, "schedule": "s1-p5:..."} ],
//!   "ok": true
//! }
//! ```

use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn main() {
    let mut seed = retypd_conc_check::DEFAULT_SEED;
    let mut max_iterations = retypd_conc_check::DEFAULT_MAX_ITERATIONS;
    let mut min_iterations = 0u64;
    let mut out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    let usage = "usage: conc-check [--seed N] [--max-iterations N] [--min-iterations N] [--out FILE]";
    while let Some(a) = args.next() {
        let mut num = |flag: &str| match args.next().map(|v| v.parse::<u64>()) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!("{flag} expects a non-negative integer; {usage}");
                std::process::exit(2);
            }
        };
        match a.as_str() {
            "--seed" => seed = num("--seed"),
            "--max-iterations" => max_iterations = num("--max-iterations"),
            "--min-iterations" => min_iterations = num("--min-iterations"),
            "--out" => match args.next() {
                Some(p) => out = Some(p.into()),
                None => {
                    eprintln!("--out expects a path; {usage}");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("{usage}");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; {usage}");
                std::process::exit(2);
            }
        }
    }

    let mut ok = true;
    let mut models_json = Vec::new();
    for def in retypd_conc_check::registry() {
        let report = def.check(seed, max_iterations);
        let model_ok = report.failure.is_none()
            && (report.iterations >= min_iterations || min_iterations == 0);
        if let Some(f) = &report.failure {
            eprintln!(
                "FAIL {}: {} (replay with schedule {:?})",
                def.name, f.message, f.schedule
            );
        } else if !model_ok {
            eprintln!(
                "FAIL {}: only {} interleavings explored (< {min_iterations})",
                def.name, report.iterations
            );
        } else {
            eprintln!(
                "ok   {}: {} interleavings, complete={}",
                def.name, report.iterations, report.complete
            );
        }
        ok &= model_ok;
        let mut m = String::new();
        let _ = write!(
            m,
            "{{\"name\": \"{}\", \"what\": \"{}\", \"preemption_bound\": {}, \
             \"iterations\": {}, \"complete\": {}, \"ok\": {}",
            json_escape(def.name),
            json_escape(def.what),
            def.preemption_bound,
            report.iterations,
            report.complete,
            model_ok
        );
        if let Some(f) = &report.failure {
            let _ = write!(
                m,
                ", \"failure\": \"{}\", \"schedule\": \"{}\"",
                json_escape(&f.message),
                json_escape(&f.schedule)
            );
        }
        m.push('}');
        models_json.push(m);
    }

    let mut mutations_json = Vec::new();
    for def in retypd_conc_check::mutations() {
        let report = def.check(seed, max_iterations);
        // A mutation is only "caught" if the failure also replays: the
        // schedule string must deterministically reproduce it.
        let caught = match &report.failure {
            Some(f) => def.replay(&f.schedule).failure.is_some(),
            None => false,
        };
        if caught {
            let f = report.failure.as_ref().expect("caught implies failure");
            eprintln!(
                "ok   {}: caught after {} interleavings, schedule {:?} replays",
                def.name, report.iterations, f.schedule
            );
        } else {
            eprintln!(
                "FAIL {}: the mutation was NOT caught ({} interleavings) — the checker has lost its teeth",
                def.name, report.iterations
            );
        }
        ok &= caught;
        let mut m = String::new();
        let _ = write!(
            m,
            "{{\"name\": \"{}\", \"what\": \"{}\", \"iterations\": {}, \"caught\": {}",
            json_escape(def.name),
            json_escape(def.what),
            report.iterations,
            caught
        );
        if let Some(f) = &report.failure {
            let _ = write!(
                m,
                ", \"failure\": \"{}\", \"schedule\": \"{}\"",
                json_escape(&f.message),
                json_escape(&f.schedule)
            );
        }
        m.push('}');
        mutations_json.push(m);
    }

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"max_iterations\": {max_iterations},\n  \
         \"min_iterations\": {min_iterations},\n  \
         \"product_models_included\": {},\n  \"models\": [\n    {}\n  ],\n  \
         \"mutations\": [\n    {}\n  ],\n  \"ok\": {ok}\n}}\n",
        cfg!(retypd_model_check),
        models_json.join(",\n    "),
        mutations_json.join(",\n    "),
    );
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!("run stats written to {}", path.display());
        }
        None => print!("{json}"),
    }
    if !ok {
        std::process::exit(1);
    }
}
