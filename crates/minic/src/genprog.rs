//! Seeded random program generation: the benchmark corpus factory.
//!
//! Substitutes for the paper's 160-binary suite (§6.2). Programs are
//! generated as *typed ASTs* — guaranteeing well-typed ground truth — and
//! then compiled through the type-erasing code generator. The generator
//! produces the source-level shapes the paper's evaluation exercises:
//!
//! * recursive structs (linked lists, trees) walked by loops,
//! * `malloc`/`free` wrapper functions (user-defined allocators, §2.2),
//! * getter/setter helpers reused at several types (polymorphism),
//! * `const` pointer parameters (read-only walkers) for §6.4,
//! * tagged scalars (`#FileDescriptor`) flowing through wrappers,
//! * occasional pointer casts (§2.6 cross-casting),
//! * `fastcall` register-parameter functions (§2.5).
//!
//! Clusters mimic coreutils: every member program links the same utility
//! module, so results within a cluster correlate (Figure 10's motivation
//! for cluster-averaged metrics).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ast::{BinKind, CmpKind, Expr, FuncDef, Module, SrcType, Stmt, StructDef};

/// Size/shape knobs for generated programs.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// RNG seed (deterministic output per seed).
    pub seed: u64,
    /// Approximate number of generated functions.
    pub functions: usize,
    /// Number of struct types to define (at least 1).
    pub structs: usize,
    /// Probability (0–100) that a pointer parameter is `const`.
    pub const_percent: u32,
    /// Probability (0–100) of `fastcall` convention per function.
    pub fastcall_percent: u32,
    /// Probability (0–100) of a type-unsafe cast inside a function.
    pub cast_percent: u32,
    /// Depth of an appended call chain (`deep_0 ← deep_1 ← … `): each link
    /// calls the previous, so the call-graph condensation gains at least
    /// this many waves. `0` (the default) appends nothing, leaving historic
    /// generation byte-identical. The organically generated call DAG is
    /// shallow (~2 waves), so this is the knob that makes wave pipelining
    /// in the parallel driver actually matter.
    pub call_depth: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            seed: 0xC0FFEE,
            functions: 10,
            structs: 3,
            const_percent: 60,
            fastcall_percent: 10,
            cast_percent: 5,
            call_depth: 0,
        }
    }
}

/// A coreutils-like cluster: one shared utility module linked into every
/// member.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Cluster name (e.g. `coreutils`).
    pub name: String,
    /// Number of member programs.
    pub members: usize,
    /// Functions in the shared utility module.
    pub shared_functions: usize,
    /// Functions unique to each member.
    pub member_functions: usize,
    /// Base seed.
    pub seed: u64,
    /// Call-chain depth appended to the *shared* module (see
    /// [`GenConfig::call_depth`]); every member inherits the chain, so each
    /// member's condensation has at least this many waves.
    pub call_depth: usize,
}

/// The deterministic program generator.
#[derive(Debug)]
pub struct ProgramGenerator {
    rng: StdRng,
    config: GenConfig,
}

impl ProgramGenerator {
    /// Creates a generator for a configuration.
    pub fn new(config: GenConfig) -> ProgramGenerator {
        ProgramGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Generates one module.
    pub fn generate(&mut self) -> Module {
        let mut module = Module::default();
        self.gen_structs(&mut module);
        // A few allocator wrappers first (they are callees of everything).
        let n_wrappers = (self.config.structs).max(1);
        for si in 0..n_wrappers.min(module.structs.len()) {
            module.funcs.push(self.gen_alloc_wrapper(si, &module));
        }
        // A generic release wrapper: ∀τ. τ* → void, the user-defined
        // deallocator idiom of §2.2 — the sharpest polymorphism test,
        // since it is called with *every* struct type.
        module.funcs.push(FuncDef {
            name: "release".into(),
            params: vec![("p".into(), SrcType::ptr(SrcType::Void))],
            ret: SrcType::Void,
            body: vec![
                Stmt::Expr(Expr::Call("free".into(), vec![Expr::Var("p".into())])),
                Stmt::Return(None),
            ],
            fastcall: false,
        });
        // Walkers, getters, setters, arithmetic helpers.
        while module.funcs.len() < self.config.functions {
            let f = match self.rng.gen_range(0..7) {
                0 => self.gen_list_walker(&module),
                1 => self.gen_getter(&module),
                2 => self.gen_setter(&module),
                3 => self.gen_arith(&module),
                4 => self.gen_fd_user(&module),
                5 => self.gen_poly_user(&module),
                _ => self.gen_caller(&module),
            };
            module.funcs.push(f);
        }
        self.append_call_chain(&mut module);
        module
    }

    /// Appends the `call_depth`-deep chain `deep_0 ← deep_1 ← …` (each link
    /// calls its predecessor), forcing the condensation's wave count to at
    /// least the chain length. A no-op at depth 0 so default-configured
    /// generation is unchanged.
    fn append_call_chain(&mut self, module: &mut Module) {
        for k in 0..self.config.call_depth {
            let body = if k == 0 {
                vec![Stmt::Return(Some(Expr::Bin(
                    BinKind::Add,
                    Box::new(Expr::Var("a".into())),
                    Box::new(Expr::Int(1)),
                )))]
            } else {
                vec![
                    Stmt::Decl(
                        "t".into(),
                        SrcType::Int,
                        Expr::Call(
                            format!("deep_{}", k - 1),
                            vec![Expr::Bin(
                                BinKind::Add,
                                Box::new(Expr::Var("a".into())),
                                Box::new(Expr::Int(k as i64)),
                            )],
                        ),
                    ),
                    Stmt::Return(Some(Expr::Var("t".into()))),
                ]
            };
            module.funcs.push(FuncDef {
                name: format!("deep_{k}"),
                params: vec![("a".into(), SrcType::Int)],
                ret: SrcType::Int,
                body,
                fastcall: false,
            });
        }
    }

    /// Allocates two *different* struct types and releases both through the
    /// polymorphic `release` wrapper: a unification-based analysis merges
    /// the two structs through the shared formal, Retypd does not.
    fn gen_poly_user(&mut self, module: &Module) -> FuncDef {
        if module.structs.len() < 2 || module.func_by_name("release").is_none() {
            return self.gen_arith(module);
        }
        let si = self.rng.gen_range(0..module.structs.len());
        let mut sj = self.rng.gen_range(0..module.structs.len());
        if sj == si {
            sj = (sj + 1) % module.structs.len();
        }
        let n = self.rng.gen::<u32>();
        let mk = |s: usize, var: &str, module: &Module| -> Vec<Stmt> {
            let ty = SrcType::ptr(SrcType::Struct(s));
            let maker = format!("make_S{s}");
            let init = if module.func_by_name(&maker).is_some() {
                Expr::Call(maker, vec![])
            } else {
                Expr::Cast(
                    ty.clone(),
                    Box::new(Expr::Call(
                        "malloc".into(),
                        vec![Expr::Int(module.structs[s].size(module).max(4) as i64)],
                    )),
                )
            };
            vec![Stmt::Decl(var.into(), ty, init)]
        };
        let mut body = Vec::new();
        body.extend(mk(si, "a", module));
        body.extend(mk(sj, "b", module));
        body.push(Stmt::Expr(Expr::Call(
            "release".into(),
            vec![Expr::Cast(
                SrcType::ptr(SrcType::Void),
                Box::new(Expr::Var("a".into())),
            )],
        )));
        body.push(Stmt::Expr(Expr::Call(
            "release".into(),
            vec![Expr::Cast(
                SrcType::ptr(SrcType::Void),
                Box::new(Expr::Var("b".into())),
            )],
        )));
        body.push(Stmt::Return(Some(Expr::Int(0))));
        FuncDef {
            name: format!("poly_{n:x}"),
            params: vec![],
            ret: SrcType::Int,
            body,
            fastcall: false,
        }
    }

    /// Generates a cluster of modules sharing a utility library.
    pub fn generate_cluster(spec: &ClusterSpec) -> Vec<(String, Module)> {
        let mut out = Vec::new();
        // The shared library is generated once with the cluster seed.
        let mut shared_gen = ProgramGenerator::new(GenConfig {
            seed: spec.seed,
            functions: spec.shared_functions,
            call_depth: spec.call_depth,
            ..GenConfig::default()
        });
        let shared = shared_gen.generate();
        for m in 0..spec.members {
            let mut gen = ProgramGenerator::new(GenConfig {
                seed: spec.seed ^ (0x9E3779B9u64.wrapping_mul(m as u64 + 1)),
                functions: spec.member_functions,
                ..GenConfig::default()
            });
            let mut member = shared.clone();
            let extra = gen.generate();
            // Link: append member-unique structs and functions, remapping
            // struct indices.
            let offset = member.structs.len();
            for s in &extra.structs {
                let mut s = s.clone();
                s.name = format!("{}_{}", s.name, m);
                for (_, t) in &mut s.fields {
                    remap_struct(t, offset);
                }
                member.structs.push(s);
            }
            for f in &extra.funcs {
                let mut f = f.clone();
                f.name = format!("{}_m{}", f.name, m);
                for (_, t) in &mut f.params {
                    remap_struct(t, offset);
                }
                remap_struct(&mut f.ret, offset);
                remap_body(&mut f.body, offset, m);
                member.funcs.push(f);
            }
            out.push((format!("{}_{m}", spec.name), member));
        }
        out
    }

    fn gen_structs(&mut self, module: &mut Module) {
        for i in 0..self.config.structs.max(1) {
            let recursive = i == 0 || self.rng.gen_bool(0.4);
            let mut fields = Vec::new();
            if recursive {
                fields.push(("next".to_owned(), SrcType::ptr(SrcType::Struct(i))));
            }
            let n_fields = self.rng.gen_range(1..4usize);
            for k in 0..n_fields {
                let ty = match self.rng.gen_range(0..5) {
                    0 => SrcType::Int,
                    1 => SrcType::UInt,
                    2 if i > 0 => SrcType::ptr(SrcType::Struct(self.rng.gen_range(0..i))),
                    3 => SrcType::Tagged("#FileDescriptor".into(), Box::new(SrcType::Int)),
                    _ => SrcType::Int,
                };
                fields.push((format!("f{k}"), ty));
            }
            module.structs.push(StructDef {
                name: format!("S{i}"),
                fields,
            });
        }
    }

    fn maybe_const(&mut self, t: SrcType) -> SrcType {
        if let SrcType::Ptr { pointee, .. } = t {
            let c = self.rng.gen_range(0..100) < self.config.const_percent;
            SrcType::Ptr {
                pointee,
                is_const: c,
            }
        } else {
            t
        }
    }

    fn gen_alloc_wrapper(&mut self, si: usize, module: &Module) -> FuncDef {
        // struct Si* make_Si(void) { struct Si* p = (struct Si*)malloc(N);
        //   p->f = 0...; return p; }
        let sty = SrcType::ptr(SrcType::Struct(si));
        let size = module.structs[si].size(module).max(4);
        let mut body = vec![Stmt::Decl(
            "p".into(),
            sty.clone(),
            Expr::Cast(
                sty.clone(),
                Box::new(Expr::Call("malloc".into(), vec![Expr::Int(size as i64)])),
            ),
        )];
        // Zero/NULL-initialize every word-sized field, as real allocator
        // wrappers do (the stores compile to the xor/push semi-syntactic
        // constant idiom of §2.1).
        for (name, ty) in &module.structs[si].fields {
            if ty.is_scalar() {
                body.push(Stmt::StoreField(
                    Expr::Var("p".into()),
                    name.clone(),
                    Expr::Int(0),
                ));
            }
        }
        body.push(Stmt::Return(Some(Expr::Var("p".into()))));
        FuncDef {
            name: format!("make_S{si}"),
            params: vec![],
            ret: sty,
            body,
            fastcall: false,
        }
    }

    fn recursive_struct(&mut self, module: &Module) -> Option<usize> {
        let candidates: Vec<usize> = module
            .structs
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                s.fields
                    .iter()
                    .any(|(_, t)| matches!(t.untagged(), SrcType::Ptr { pointee, .. } if matches!(pointee.untagged(), SrcType::Struct(j) if j == i)))
            })
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        }
    }

    fn scalar_field(&mut self, module: &Module, si: usize) -> Option<(String, SrcType)> {
        let fields: Vec<_> = module.structs[si]
            .fields
            .iter()
            .filter(|(_, t)| !matches!(t.untagged(), SrcType::Ptr { .. } | SrcType::Struct(_)))
            .cloned()
            .collect();
        if fields.is_empty() {
            None
        } else {
            Some(fields[self.rng.gen_range(0..fields.len())].clone())
        }
    }

    fn gen_list_walker(&mut self, module: &Module) -> FuncDef {
        // int walk_N(const struct S* p) { while (p->next != 0) { p = p->next; }
        //   return p->field; }
        let Some(si) = self.recursive_struct(module) else {
            return self.gen_arith(module);
        };
        let (fname, fty) = self
            .scalar_field(module, si)
            .unwrap_or(("next".into(), SrcType::Int));
        let param_ty = self.maybe_const(SrcType::ptr(SrcType::Struct(si)));
        let n = self.rng.gen::<u32>();
        FuncDef {
            name: format!("walk_{n:x}"),
            params: vec![("p".into(), param_ty)],
            ret: fty.clone(),
            body: vec![
                Stmt::While(
                    Expr::Cmp(
                        CmpKind::Ne,
                        Box::new(Expr::Field(Box::new(Expr::Var("p".into())), "next".into())),
                        Box::new(Expr::Int(0)),
                    ),
                    vec![Stmt::Assign(
                        "p".into(),
                        Expr::Field(Box::new(Expr::Var("p".into())), "next".into()),
                    )],
                ),
                Stmt::Return(Some(Expr::Field(
                    Box::new(Expr::Var("p".into())),
                    fname,
                ))),
            ],
            fastcall: false,
        }
    }

    fn gen_getter(&mut self, module: &Module) -> FuncDef {
        let si = self.rng.gen_range(0..module.structs.len());
        let Some((fname, fty)) = self.scalar_field(module, si) else {
            return self.gen_arith(module);
        };
        let n = self.rng.gen::<u32>();
        let param_ty = self.maybe_const(SrcType::ptr(SrcType::Struct(si)));
        FuncDef {
            name: format!("get_{n:x}"),
            params: vec![("p".into(), param_ty)],
            ret: fty,
            body: vec![Stmt::Return(Some(Expr::Field(
                Box::new(Expr::Var("p".into())),
                fname,
            )))],
            fastcall: self.rng.gen_range(0..100) < self.config.fastcall_percent,
        }
    }

    fn gen_setter(&mut self, module: &Module) -> FuncDef {
        let si = self.rng.gen_range(0..module.structs.len());
        let Some((fname, fty)) = self.scalar_field(module, si) else {
            return self.gen_arith(module);
        };
        let n = self.rng.gen::<u32>();
        FuncDef {
            name: format!("set_{n:x}"),
            params: vec![
                ("p".into(), SrcType::ptr(SrcType::Struct(si))),
                ("v".into(), fty),
            ],
            ret: SrcType::Void,
            body: vec![
                Stmt::StoreField(Expr::Var("p".into()), fname, Expr::Var("v".into())),
                Stmt::Return(None),
            ],
            fastcall: self.rng.gen_range(0..100) < self.config.fastcall_percent,
        }
    }

    fn gen_arith(&mut self, _module: &Module) -> FuncDef {
        let n = self.rng.gen::<u32>();
        let op = match self.rng.gen_range(0..3) {
            0 => BinKind::Add,
            1 => BinKind::Sub,
            _ => BinKind::Mul,
        };
        FuncDef {
            name: format!("calc_{n:x}"),
            params: vec![("a".into(), SrcType::Int), ("b".into(), SrcType::Int)],
            ret: SrcType::Int,
            body: vec![
                Stmt::Decl(
                    "t".into(),
                    SrcType::Int,
                    Expr::Bin(
                        op,
                        Box::new(Expr::Var("a".into())),
                        Box::new(Expr::Var("b".into())),
                    ),
                ),
                Stmt::If(
                    Expr::Cmp(
                        CmpKind::Lt,
                        Box::new(Expr::Var("t".into())),
                        Box::new(Expr::Int(0)),
                    ),
                    vec![Stmt::Return(Some(Expr::Call(
                        "abs".into(),
                        vec![Expr::Var("t".into())],
                    )))],
                    vec![],
                ),
                Stmt::Return(Some(Expr::Var("t".into()))),
            ],
            fastcall: self.rng.gen_range(0..100) < self.config.fastcall_percent,
        }
    }

    fn gen_fd_user(&mut self, _module: &Module) -> FuncDef {
        // int use_fd(#FileDescriptor int fd) { ... return close(fd); }
        let n = self.rng.gen::<u32>();
        FuncDef {
            name: format!("fduser_{n:x}"),
            params: vec![(
                "fd".into(),
                SrcType::Tagged("#FileDescriptor".into(), Box::new(SrcType::Int)),
            )],
            ret: SrcType::Int,
            body: vec![
                Stmt::If(
                    Expr::Cmp(
                        CmpKind::Lt,
                        Box::new(Expr::Var("fd".into())),
                        Box::new(Expr::Int(0)),
                    ),
                    vec![Stmt::Return(Some(Expr::Int(0)))],
                    vec![],
                ),
                Stmt::Return(Some(Expr::Call(
                    "close".into(),
                    vec![Expr::Var("fd".into())],
                ))),
            ],
            fastcall: false,
        }
    }

    fn gen_caller(&mut self, module: &Module) -> FuncDef {
        // Calls an existing function with freshly built arguments.
        let callable: Vec<FuncDef> = module
            .funcs
            .iter()
            .filter(|f| !f.params.is_empty() || f.ret != SrcType::Void)
            .cloned()
            .collect();
        if callable.is_empty() {
            return self.gen_arith(module);
        }
        let callee = &callable[self.rng.gen_range(0..callable.len())];
        let mut body: Vec<Stmt> = Vec::new();
        let mut args = Vec::new();
        for (pi, (_, pty)) in callee.params.iter().enumerate() {
            match pty.untagged() {
                SrcType::Ptr { pointee, .. } => match pointee.untagged() {
                    SrcType::Struct(si) => {
                        let var = format!("a{pi}");
                        let maker = format!("make_S{si}");
                        let init = if module.func_by_name(&maker).is_some() {
                            Expr::Call(maker, vec![])
                        } else {
                            Expr::Cast(
                                SrcType::ptr(SrcType::Struct(*si)),
                                Box::new(Expr::Call(
                                    "malloc".into(),
                                    vec![Expr::Int(
                                        module.structs[*si].size(module).max(4) as i64
                                    )],
                                )),
                            )
                        };
                        body.push(Stmt::Decl(var.clone(), pty.clone(), init));
                        args.push(Expr::Var(var));
                    }
                    _ => {
                        // NULL argument: the f(0, NULL) idiom.
                        args.push(Expr::Int(0));
                    }
                },
                _ => {
                    let v = self.rng.gen_range(0..64i64);
                    args.push(Expr::Int(v));
                }
            }
        }
        let call = Expr::Call(callee.name.clone(), args);
        let n = self.rng.gen::<u32>();
        let unsafe_cast = self.rng.gen_range(0..100) < self.config.cast_percent;
        if callee.ret == SrcType::Void {
            body.push(Stmt::Expr(call));
            body.push(Stmt::Return(Some(Expr::Int(0))));
        } else if unsafe_cast && callee.ret.untagged().is_scalar() {
            // Cross-cast: reinterpret the result (§2.6).
            body.push(Stmt::Decl(
                "r".into(),
                SrcType::ptr(SrcType::Int),
                Expr::Cast(SrcType::ptr(SrcType::Int), Box::new(call)),
            ));
            body.push(Stmt::Return(Some(Expr::Cast(
                SrcType::Int,
                Box::new(Expr::Var("r".into())),
            ))));
        } else {
            body.push(Stmt::Decl("r".into(), callee.ret.clone(), call));
            body.push(Stmt::Return(Some(Expr::Var("r".into()))));
        }
        FuncDef {
            name: format!("use_{n:x}"),
            params: vec![],
            ret: SrcType::Int,
            body,
            fastcall: false,
        }
    }
}

fn remap_struct(t: &mut SrcType, offset: usize) {
    match t {
        SrcType::Struct(i) => *i += offset,
        SrcType::Ptr { pointee, .. } => remap_struct(pointee, offset),
        SrcType::Tagged(_, inner) => remap_struct(inner, offset),
        _ => {}
    }
}

fn remap_body(stmts: &mut [Stmt], offset: usize, member: usize) {
    for s in stmts {
        match s {
            Stmt::Decl(_, ty, e) => {
                remap_struct(ty, offset);
                remap_expr(e, offset, member);
            }
            Stmt::Assign(_, e) | Stmt::Expr(e) => remap_expr(e, offset, member),
            Stmt::StoreField(b, _, v) | Stmt::StoreDeref(b, v) => {
                remap_expr(b, offset, member);
                remap_expr(v, offset, member);
            }
            Stmt::If(c, a, b) => {
                remap_expr(c, offset, member);
                remap_body(a, offset, member);
                remap_body(b, offset, member);
            }
            Stmt::While(c, b) => {
                remap_expr(c, offset, member);
                remap_body(b, offset, member);
            }
            Stmt::Return(Some(e)) => remap_expr(e, offset, member),
            Stmt::Return(None) => {}
        }
    }
}

fn remap_expr(e: &mut Expr, offset: usize, member: usize) {
    match e {
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            remap_expr(a, offset, member);
            remap_expr(b, offset, member);
        }
        Expr::Field(b, _) | Expr::Deref(b) => remap_expr(b, offset, member),
        Expr::Call(name, args) => {
            // Calls to member-local functions are renamed like the
            // functions themselves; shared-library and external names are
            // untouched. Member functions call either externals, shared
            // functions (generated from the same prefix set), or their own
            // module's functions — we rename only names that will exist in
            // renamed form.
            if name.starts_with("use_")
                || name.starts_with("calc_")
                || name.starts_with("walk_")
                || name.starts_with("get_")
                || name.starts_with("set_")
                || name.starts_with("fduser_")
                || name.starts_with("deep_")
                || name.starts_with("make_S")
            {
                // make_SN refers to struct indices: remap those too.
                if let Some(rest) = name.strip_prefix("make_S") {
                    if let Ok(si) = rest.parse::<usize>() {
                        *name = format!("make_S{}", si + offset);
                    }
                } else {
                    *name = format!("{name}_m{member}");
                }
            }
            for a in args {
                remap_expr(a, offset, member);
            }
        }
        Expr::Cast(t, inner) => {
            remap_struct(t, offset);
            remap_expr(inner, offset, member);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::compile;

    #[test]
    fn generation_is_deterministic() {
        let a = ProgramGenerator::new(GenConfig::default()).generate();
        let b = ProgramGenerator::new(GenConfig::default()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn generated_programs_compile() {
        for seed in 0..20 {
            let cfg = GenConfig {
                seed,
                functions: 12,
                ..GenConfig::default()
            };
            let m = ProgramGenerator::new(cfg).generate();
            let (mir, truth) = compile(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(mir.instruction_count() > 50);
            assert_eq!(truth.funcs.len(), m.funcs.len());
        }
    }

    #[test]
    fn clusters_share_code() {
        let spec = ClusterSpec {
            name: "core".into(),
            members: 3,
            shared_functions: 6,
            member_functions: 4,
            seed: 42,
            call_depth: 0,
        };
        let members = ProgramGenerator::generate_cluster(&spec);
        assert_eq!(members.len(), 3);
        // All members contain the shared functions (same names).
        let shared_names: Vec<&String> = members[0]
            .1
            .funcs
            .iter()
            .map(|f| &f.name)
            .filter(|n| !n.ends_with("_m0"))
            .collect();
        for (_, m) in &members[1..] {
            for n in &shared_names {
                assert!(m.funcs.iter().any(|f| &&f.name == n), "missing {n}");
            }
        }
        // And every member compiles.
        for (name, m) in &members {
            compile(m).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn call_depth_appends_a_chain() {
        let base = ProgramGenerator::new(GenConfig::default()).generate();
        let deep = ProgramGenerator::new(GenConfig {
            call_depth: 6,
            ..GenConfig::default()
        })
        .generate();
        // Depth 0 leaves generation byte-identical; the chain is purely
        // appended on top of it.
        assert_eq!(&deep.funcs[..base.funcs.len()], &base.funcs[..]);
        assert_eq!(deep.funcs.len(), base.funcs.len() + 6);
        for k in 0..6 {
            assert!(deep.func_by_name(&format!("deep_{k}")).is_some());
        }
        compile(&deep).expect("deep module compiles");
    }

    #[test]
    fn cluster_depth_rides_the_shared_module() {
        let spec = ClusterSpec {
            name: "deep".into(),
            members: 2,
            shared_functions: 6,
            member_functions: 3,
            seed: 42,
            call_depth: 6,
        };
        for (name, m) in ProgramGenerator::generate_cluster(&spec) {
            for k in 0..6 {
                assert!(
                    m.func_by_name(&format!("deep_{k}")).is_some(),
                    "{name} lost chain link {k}"
                );
            }
            compile(&m).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn scaling_sizes() {
        for target in [5usize, 50, 200] {
            let cfg = GenConfig {
                seed: 7,
                functions: target,
                ..GenConfig::default()
            };
            let m = ProgramGenerator::new(cfg).generate();
            assert!(m.funcs.len() >= target);
        }
    }
}
