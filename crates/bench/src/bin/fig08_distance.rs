//! Figure 8: distance to ground-truth types and interval size, per tool,
//! on the coreutils-like cluster, the larger singles (SPEC stand-ins),
//! and the whole suite.

use retypd_bench::{clusters, generate_single, SINGLES};
use retypd_core::Lattice;
use retypd_eval::harness::evaluate_module;
use retypd_eval::metrics::{average, ToolMetrics};
use retypd_minic::genprog::ProgramGenerator;

fn main() {
    let lattice = Lattice::c_types();
    let mut coreutils: Vec<[ToolMetrics; 3]> = Vec::new();
    let mut all: Vec<[ToolMetrics; 3]> = Vec::new();

    for spec in clusters() {
        let is_coreutils = spec.name == "coreutils";
        let mut member_scores = Vec::new();
        for (name, module) in ProgramGenerator::generate_cluster(&spec) {
            let r = evaluate_module(&name, &module, &lattice);
            member_scores.push([r.scores.retypd, r.scores.tie, r.scores.unification]);
        }
        // Cluster-fold: average members into one data point (§6.2).
        let folded = fold(&member_scores);
        if is_coreutils {
            coreutils.extend(member_scores.iter().copied());
        }
        all.push(folded);
    }
    let mut spec_like = Vec::new();
    for spec in SINGLES {
        let module = generate_single(spec);
        let r = evaluate_module(spec.name, &module, &lattice);
        let row = [r.scores.retypd, r.scores.tie, r.scores.unification];
        if spec.functions >= 74 {
            spec_like.push(row);
        }
        all.push(row);
    }

    println!("Figure 8: mean distance to source type / mean interval size");
    println!("{:<14} {:>22} {:>22} {:>22}", "Tool", "coreutils", "SPEC-like", "all");
    println!("{}", "-".repeat(84));
    for (i, tool) in ["Retypd", "TIE-like", "Unification"].iter().enumerate() {
        let pick = |rows: &[[ToolMetrics; 3]]| -> ToolMetrics {
            average(&rows.iter().map(|r| r[i]).collect::<Vec<_>>())
        };
        let (c, s, a) = (pick(&coreutils), pick(&spec_like), pick(&all));
        println!(
            "{:<14} {:>10.2} / {:>8.2} {:>11.2} / {:>7.2} {:>11.2} / {:>7.2}",
            tool, c.distance, c.interval, s.distance, s.interval, a.distance, a.interval
        );
    }
    println!("\n(paper: Retypd 0.54/1.2, TIE 1.58/2.0, SecondWrite 1.70/1.7 —");
    println!(" expect the same ordering: Retypd < TIE-like ≲ Unification)");
}

fn fold(rows: &[[ToolMetrics; 3]]) -> [ToolMetrics; 3] {
    [
        average(&rows.iter().map(|r| r[0]).collect::<Vec<_>>()),
        average(&rows.iter().map(|r| r[1]).collect::<Vec<_>>()),
        average(&rows.iter().map(|r| r[2]).collect::<Vec<_>>()),
    ]
}
