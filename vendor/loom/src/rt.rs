//! The model-checking runtime: one [`Execution`] per explored
//! interleaving, driven by a cooperative baton-passing scheduler.
//!
//! # How an execution runs
//!
//! Model threads are real OS threads, but exactly **one** is ever
//! executing user code: every model operation (atomic access, lock,
//! spawn, …) ends in a *schedule point* where the running thread picks
//! the next thread to run (recording the pick) and then parks on the
//! execution's condvar until the baton comes back. User code between
//! two model operations therefore runs fully serialized, and the whole
//! interleaving is determined by the recorded choice sequence.
//!
//! # How the search works
//!
//! Choices (which thread runs next; which store a relaxed load reads)
//! are recorded in a trace. After a run completes, the controller
//! backtracks DFS-style: find the deepest choice with an unexplored
//! alternative, replay the prefix up to it, take the next alternative,
//! and continue fresh from there. A seeded permutation of each choice
//! point's candidates makes "which schedules come first" deterministic
//! per seed without biasing the search toward program order. Context
//! switches away from a runnable thread are *preemptions*; bounding
//! them (CHESS-style) keeps the state space tractable while catching
//! most real bugs at small bounds.
//!
//! # Happens-before
//!
//! Every thread carries a vector clock. Release stores snapshot the
//! writer's clock; acquire loads that read them join it; mutexes,
//! spawn and join edges transfer clocks the same way. Relaxed loads
//! may read *stale* stores (any store not yet overwritten in this
//! thread's view), which is exactly what surfaces missing-`Release`
//! bugs as assertion failures or [`RaceCell`](crate::modelled::cell)
//! races under some explored schedule.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

use crate::clock::{VClock, MAX_THREADS};

/// Sentinel for "no thread is active" (all done).
const NO_THREAD: usize = usize::MAX;

/// The panic payload used to unwind model threads when an execution
/// aborts (failure found, or exploration torn down). Never observed by
/// user code: the thread wrapper catches it.
pub(crate) struct AbortToken;

/// Per-run limits and the exploration seed (shared by every execution
/// of one `check()` call).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cfg {
    pub seed: u64,
    pub preemption_bound: u32,
    pub max_steps: u64,
}

/// One recorded decision: which of `available` candidates was chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Choice {
    pub chosen: u32,
    pub available: u32,
}

/// A failure found in some interleaving, with the full choice trace
/// that reproduces it.
#[derive(Clone, Debug)]
pub(crate) struct RawFailure {
    pub message: String,
    pub trace: Vec<Choice>,
}

/// What a thread is currently doing, from the scheduler's view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    Ready,
    Blocked(Block),
    Done,
}

/// What a blocked thread is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Mutex(usize),
    RwRead(usize),
    RwWrite(usize),
    Cond(usize),
    /// A `wait_timeout` waiter: eligible for a timeout wakeup, but only
    /// once nothing else can run (timeouts fire as late as possible, so
    /// the notify-first schedules are explored too).
    TimedCond(usize),
    Join(usize),
}

/// Per-thread scheduler state.
struct Th {
    state: Run,
    clock: VClock,
    /// Per-location coherence floor: the newest store index this thread
    /// has already read (it may never read older).
    last_seen: HashMap<usize, usize>,
    name: Option<String>,
    timed_out: bool,
}

/// One store event in a location's modification order.
#[derive(Clone, Copy)]
struct StoreEv {
    val: u64,
    /// The writer's clock at the store: a later store with
    /// `wclock ≤ reader` makes this one unreadable (coherence).
    wclock: VClock,
    /// The clock an acquire load synchronizes with, `Some` for release
    /// stores (and RMWs extending a release sequence), `None` for plain
    /// relaxed stores — which is what breaks the sequence and makes a
    /// weakened `store` detectable.
    rel: Option<VClock>,
}

/// Modification-order history of one atomic location.
struct Loc {
    stores: Vec<StoreEv>,
}

#[derive(Default)]
struct MutexSt {
    owner: Option<usize>,
    /// Join of every unlocker's clock: the lock's release chain.
    clock: VClock,
}

#[derive(Default)]
struct RwSt {
    writer: Option<usize>,
    readers: u32,
    /// Writers' release chain (readers and writers acquire it).
    clock: VClock,
    /// Join of reader-unlock clocks since forever; the next writer
    /// acquires it (write-after-read ordering).
    read_release: VClock,
}

#[derive(Default)]
struct CondSt {
    waiters: Vec<usize>,
}

/// Race-detection state for one `RaceCell`.
#[derive(Default)]
struct CellSt {
    /// Last write: (thread, that thread's clock component at the write).
    write: Option<(usize, u32)>,
    /// Reads since the last write, same encoding.
    reads: Vec<(usize, u32)>,
}

/// Everything mutable about one execution, behind one lock.
pub(crate) struct Inner {
    cfg: Cfg,
    /// Replay prefix: decisions to take verbatim before exploring.
    prefix: Vec<u32>,
    pub(crate) trace: Vec<Choice>,
    threads: Vec<Th>,
    active: usize,
    live: usize,
    preemptions: u32,
    steps: u64,
    locs: HashMap<usize, Loc>,
    mutexes: HashMap<usize, MutexSt>,
    rws: HashMap<usize, RwSt>,
    conds: HashMap<usize, CondSt>,
    cells: HashMap<usize, CellSt>,
    fence_clock: VClock,
    aborted: bool,
    pub(crate) failure: Option<RawFailure>,
    pending_failure: Option<String>,
}

/// One interleaving being executed: shared state + the baton condvar.
pub(crate) struct Execution {
    inner: Mutex<Inner>,
    cv: Condvar,
}

/// What a model thread's user closure did.
pub(crate) enum Outcome {
    Ok,
    Abort,
    Panic(String),
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether `LOOM_DBG` tracing is on (checked once; the reschedule path
/// is far too hot for a per-call env lookup).
pub(crate) fn dbg_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("LOOM_DBG").is_some())
}

/// splitmix64: tiny, well-mixed seeded generator for choice-order
/// permutations (no external RNG — the vendor shims sit above us).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates over `v[1..]`: index 0 (the "default" candidate —
/// continue the current thread / read the newest store) always stays
/// first, so choice 0 is the cheap un-preempted path; the rest are
/// visited in a seed-determined order.
pub(crate) fn shuffle_tail<T>(v: &mut [T], seed: u64, salt: u64) {
    if v.len() <= 2 {
        return;
    }
    let mut s = splitmix64(seed ^ salt.wrapping_mul(0x2545_F491_4F6C_DD1D));
    for i in (2..v.len()).rev() {
        s = splitmix64(s);
        let j = 1 + (s % i as u64) as usize;
        v.swap(i, j);
    }
}

/// Records a decision with `n` candidates and returns the chosen index:
/// the replay prefix verbatim while it lasts, then always 0 (DFS
/// explores alternatives by extending the prefix).
fn choose_raw(prefix: &[u32], trace: &mut Vec<Choice>, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let d = trace.len();
    let pick = if d < prefix.len() {
        (prefix[d] as usize).min(n - 1)
    } else {
        0
    };
    trace.push(Choice {
        chosen: pick as u32,
        available: n as u32,
    });
    pick
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Inner {
    fn choose(&mut self, n: usize) -> usize {
        choose_raw(&self.prefix, &mut self.trace, n)
    }

    fn ensure_loc(&mut self, addr: usize, init: u64) {
        self.locs.entry(addr).or_insert_with(|| Loc {
            stores: vec![StoreEv {
                val: init,
                wclock: VClock::zero(),
                rel: Some(VClock::zero()),
            }],
        });
    }

    /// An atomic load: picks which store in the visible window to read
    /// (a decision point when more than one is coherent), joins the
    /// store's release clock for acquire loads.
    pub(crate) fn atomic_load(&mut self, tid: usize, addr: usize, order: Ordering, init: u64) -> u64 {
        assert!(
            !matches!(order, Ordering::Release | Ordering::AcqRel),
            "there is no such thing as a release load"
        );
        self.ensure_loc(addr, init);
        let c = self.threads[tid].clock;
        let floor = self.threads[tid].last_seen.get(&addr).copied().unwrap_or(0);
        let (seed, salt) = (self.cfg.seed, self.steps);
        let (idx, val, rel) = {
            let loc = self.locs.get(&addr).expect("location just ensured");
            let len = loc.stores.len();
            // Coherence floor: the newest store that happens-before this
            // load hides everything older.
            let mut lo = floor;
            for k in (floor..len).rev() {
                if loc.stores[k].wclock.le(&c) {
                    lo = k;
                    break;
                }
            }
            let idx = if order == Ordering::SeqCst {
                // Simplification: SC loads read the newest store (the
                // modification order doubles as the SC order).
                len - 1
            } else {
                let mut cands: Vec<usize> = (lo..len).rev().collect();
                shuffle_tail(&mut cands, seed, salt);
                let pick = choose_raw(&self.prefix, &mut self.trace, cands.len());
                cands[pick]
            };
            let st = &loc.stores[idx];
            (idx, st.val, if is_acquire(order) { st.rel } else { None })
        };
        if let Some(rc) = rel {
            self.threads[tid].clock.join(&rc);
        }
        self.threads[tid].last_seen.insert(addr, idx);
        val
    }

    /// An atomic store: appended to the modification order; release
    /// stores publish the writer's clock, relaxed stores publish
    /// nothing (and break any release sequence below them).
    pub(crate) fn atomic_store(&mut self, tid: usize, addr: usize, order: Ordering, val: u64, init: u64) {
        assert!(
            !matches!(order, Ordering::Acquire | Ordering::AcqRel),
            "there is no such thing as an acquire store"
        );
        self.ensure_loc(addr, init);
        let c = self.threads[tid].clock;
        let rel = if is_release(order) { Some(c) } else { None };
        let loc = self.locs.get_mut(&addr).expect("location just ensured");
        loc.stores.push(StoreEv {
            val,
            wclock: c,
            rel,
        });
        let idx = loc.stores.len() - 1;
        self.threads[tid].last_seen.insert(addr, idx);
    }

    /// A read-modify-write: always reads the newest store (C++ RMW
    /// atomicity), extends its release sequence.
    pub(crate) fn atomic_rmw(
        &mut self,
        tid: usize,
        addr: usize,
        order: Ordering,
        init: u64,
        f: &mut dyn FnMut(u64) -> u64,
    ) -> u64 {
        self.ensure_loc(addr, init);
        let prev = *self
            .locs
            .get(&addr)
            .expect("location just ensured")
            .stores
            .last()
            .expect("history never empty");
        if is_acquire(order) {
            if let Some(rc) = prev.rel {
                self.threads[tid].clock.join(&rc);
            }
        }
        let c = self.threads[tid].clock;
        let my_rel = if is_release(order) { Some(c) } else { None };
        // Release-sequence rule: an RMW inherits the previous store's
        // release clock (joined with its own if it is itself a release),
        // so `rel-store; relaxed-RMW; acquire-load` still synchronizes.
        let rel = match (prev.rel, my_rel) {
            (Some(a), Some(b)) => {
                let mut j = a;
                j.join(&b);
                Some(j)
            }
            (Some(a), None) => Some(a),
            (None, r) => r,
        };
        let newv = f(prev.val);
        let loc = self.locs.get_mut(&addr).expect("location just ensured");
        loc.stores.push(StoreEv {
            val: newv,
            wclock: c,
            rel,
        });
        let idx = loc.stores.len() - 1;
        self.threads[tid].last_seen.insert(addr, idx);
        prev.val
    }

    /// Compare-exchange: success is an RMW, failure is a load of the
    /// newest store with the failure ordering. (`_weak` never fails
    /// spuriously in the model — spurious failure adds schedules that
    /// retry loops already produce.)
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &mut self,
        tid: usize,
        addr: usize,
        expect: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        init: u64,
    ) -> Result<u64, u64> {
        self.ensure_loc(addr, init);
        let prev = *self
            .locs
            .get(&addr)
            .expect("location just ensured")
            .stores
            .last()
            .expect("history never empty");
        if prev.val == expect {
            Ok(self.atomic_rmw(tid, addr, success, init, &mut |_| new))
        } else {
            if is_acquire(failure) {
                if let Some(rc) = prev.rel {
                    self.threads[tid].clock.join(&rc);
                }
            }
            let len = self.locs.get(&addr).expect("location just ensured").stores.len();
            self.threads[tid].last_seen.insert(addr, len - 1);
            Err(prev.val)
        }
    }

    /// A memory fence, modeled coarsely through one global fence clock
    /// (release-ish fences publish to it, acquire-ish fences join it).
    /// Over-strong for independent fence pairs, but nothing in the
    /// workspace uses standalone fences today.
    pub(crate) fn fence(&mut self, tid: usize, order: Ordering) {
        if is_release(order) {
            let c = self.threads[tid].clock;
            self.fence_clock.join(&c);
        }
        if is_acquire(order) {
            let fc = self.fence_clock;
            self.threads[tid].clock.join(&fc);
        }
    }

    /// One `RaceCell` access; flags a data race when the access is
    /// concurrent (per vector clocks) with a previous conflicting one.
    pub(crate) fn cell_access(&mut self, tid: usize, addr: usize, write: bool) {
        let c = self.threads[tid].clock;
        let me = c.get(tid);
        let cell = self.cells.entry(addr).or_default();
        let mut race: Option<String> = None;
        if let Some((wt, ws)) = cell.write {
            if wt != tid && c.get(wt) < ws {
                race = Some(format!(
                    "data race: {} by thread {tid} concurrent with write by thread {wt}",
                    if write { "write" } else { "read" }
                ));
            }
        }
        if write && race.is_none() {
            for &(rt, rs) in &cell.reads {
                if rt != tid && c.get(rt) < rs {
                    race = Some(format!(
                        "data race: write by thread {tid} concurrent with read by thread {rt}"
                    ));
                    break;
                }
            }
        }
        if let Some(msg) = race {
            self.pending_failure = Some(msg);
            return;
        }
        if write {
            cell.write = Some((tid, me));
            cell.reads.clear();
        } else if let Some(slot) = cell.reads.iter_mut().find(|(t, _)| *t == tid) {
            slot.1 = me;
        } else {
            cell.reads.push((tid, me));
        }
    }
}

/// Records the first failure and flips the execution into teardown;
/// every parked thread wakes and unwinds via [`AbortToken`].
fn record_failure(g: &mut Inner, message: String) {
    if g.failure.is_none() {
        g.failure = Some(RawFailure {
            message,
            trace: g.trace.clone(),
        });
    }
    g.aborted = true;
}

impl Execution {
    fn new(cfg: Cfg, prefix: Vec<u32>) -> Execution {
        let root = Th {
            state: Run::Ready,
            clock: VClock::zero(),
            last_seen: HashMap::new(),
            name: Some("main".to_string()),
            timed_out: false,
        };
        Execution {
            inner: Mutex::new(Inner {
                cfg,
                prefix,
                trace: Vec::new(),
                threads: vec![root],
                active: 0,
                live: 1,
                preemptions: 0,
                steps: 0,
                locs: HashMap::new(),
                mutexes: HashMap::new(),
                rws: HashMap::new(),
                conds: HashMap::new(),
                cells: HashMap::new(),
                fence_clock: VClock::zero(),
                aborted: false,
                failure: None,
                pending_failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-tolerant lock: a checker-internal panic must not cascade.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until this thread holds the baton (is the active thread);
    /// unwinds with [`AbortToken`] if the execution aborts meanwhile.
    fn wait_active(&self, tid: usize) -> MutexGuard<'_, Inner> {
        let mut g = self.lock();
        loop {
            if g.aborted {
                drop(g);
                panic::panic_any(AbortToken);
            }
            if g.active == tid {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Like [`Execution::wait_active`] but continues from an
    /// already-held guard (post-reschedule parking).
    fn wait_turn<'a>(&'a self, mut g: MutexGuard<'a, Inner>, tid: usize) -> MutexGuard<'a, Inner> {
        loop {
            if g.aborted {
                drop(g);
                panic::panic_any(AbortToken);
            }
            if g.active == tid {
                return g;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The schedule point: `me` (whose state is already updated) picks
    /// the next active thread, counting preemptions and detecting
    /// deadlock when nothing can run.
    fn reschedule(&self, g: &mut MutexGuard<'_, Inner>, me: usize) {
        loop {
            let me_ready = g.threads[me].state == Run::Ready;
            if me_ready && g.preemptions >= g.cfg.preemption_bound {
                g.active = me;
                return;
            }
            let mut cands: Vec<usize> = Vec::new();
            if me_ready {
                cands.push(me);
            }
            for t in 0..g.threads.len() {
                if t != me && g.threads[t].state == Run::Ready {
                    cands.push(t);
                }
            }
            if cands.is_empty() {
                // Timeout rescue: `wait_timeout` waiters time out only
                // when nothing else can make progress.
                let timed: Vec<usize> = (0..g.threads.len())
                    .filter(|&t| matches!(g.threads[t].state, Run::Blocked(Block::TimedCond(_))))
                    .collect();
                if !timed.is_empty() {
                    for t in timed {
                        if let Run::Blocked(Block::TimedCond(cv)) = g.threads[t].state {
                            if let Some(cs) = g.conds.get_mut(&cv) {
                                cs.waiters.retain(|&w| w != t);
                            }
                        }
                        g.threads[t].state = Run::Ready;
                        g.threads[t].timed_out = true;
                    }
                    continue;
                }
                if g.threads.iter().all(|t| t.state == Run::Done) {
                    g.active = NO_THREAD;
                    self.cv.notify_all();
                    return;
                }
                let stuck: Vec<String> = g
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.state, Run::Blocked(_)))
                    .map(|(i, t)| {
                        let name = t.name.as_deref().unwrap_or("?");
                        // Describe the block by KIND, not by lock address:
                        // addresses vary run to run, and failure messages
                        // must be stable so a replayed schedule reproduces
                        // the failure verbatim.
                        let what = match t.state {
                            Run::Blocked(Block::Mutex(_)) => "a Mutex".to_string(),
                            Run::Blocked(Block::RwRead(_)) => "an RwLock (read)".to_string(),
                            Run::Blocked(Block::RwWrite(_)) => "an RwLock (write)".to_string(),
                            Run::Blocked(Block::Cond(_)) => "a Condvar".to_string(),
                            Run::Blocked(Block::TimedCond(_)) => {
                                "a Condvar (wait_timeout)".to_string()
                            }
                            Run::Blocked(Block::Join(target)) => {
                                format!("joining thread {target}")
                            }
                            Run::Ready | Run::Done => unreachable!("only blocked threads listed"),
                        };
                        format!("thread {i} ({name}) on {what}")
                    })
                    .collect();
                record_failure(g, format!("deadlock: no runnable thread; {}", stuck.join("; ")));
                self.cv.notify_all();
                return;
            }
            let (seed, salt) = (g.cfg.seed, g.steps);
            shuffle_tail(&mut cands, seed, salt);
            let pick = g.choose(cands.len());
            let next = cands[pick];
            if dbg_enabled() {
                eprintln!(
                    "[rt] step {} resched me={me}({:?}) cands={cands:?} -> {next} preempt={}",
                    g.steps, g.threads[me].state, g.preemptions
                );
            }
            if me_ready && next != me {
                g.preemptions += 1;
            }
            g.active = next;
            if next != me {
                self.cv.notify_all();
            }
            return;
        }
    }
}

/// Records a failure, aborts the execution, and unwinds the caller.
fn fail_and_abort(exec: &Execution, mut g: MutexGuard<'_, Inner>, message: String) -> ! {
    record_failure(&mut g, message);
    exec.cv.notify_all();
    drop(g);
    panic::panic_any(AbortToken);
}

/// The current thread's model context, if it is a model thread inside a
/// running execution.
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Binds the current OS thread to a model thread slot.
fn adopt(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
    IN_MODEL.with(|c| c.set(true));
}

fn unadopt() {
    CTX.with(|c| *c.borrow_mut() = None);
    IN_MODEL.with(|c| c.set(false));
}

/// Bumps the step budget, failing the run if exceeded (livelock guard).
fn bump_step<'a>(
    exec: &'a Execution,
    mut g: MutexGuard<'a, Inner>,
    tid: usize,
) -> MutexGuard<'a, Inner> {
    g.steps += 1;
    if g.steps > g.cfg.max_steps {
        fail_and_abort(
            exec,
            g,
            "step budget exceeded: livelock, or a model too large to explore".to_string(),
        );
    }
    g.threads[tid].clock.tick(tid);
    g
}

/// Runs one non-blocking model operation as a schedule point. Returns
/// `None` when the caller is not a model thread (the caller then falls
/// through to the real primitive).
pub(crate) fn op<R>(f: impl FnOnce(&mut Inner, usize) -> R) -> Option<R> {
    let (exec, tid) = current_ctx()?;
    let g = exec.wait_active(tid);
    let mut g = bump_step(&exec, g, tid);
    let r = f(&mut g, tid);
    if let Some(msg) = g.pending_failure.take() {
        fail_and_abort(&exec, g, msg);
    }
    exec.reschedule(&mut g, tid);
    let g = exec.wait_turn(g, tid);
    drop(g);
    Some(r)
}

/// Drops a model atomic's store history (its address may be reused by
/// a later allocation; stale values must not leak to it). No schedule
/// point, and safe during unwinding.
pub(crate) fn forget_location(addr: usize) {
    if let Some((exec, _)) = current_ctx() {
        let mut g = exec.lock();
        g.locs.remove(&addr);
    }
}

/// `try_lock` as a single schedule point: acquires iff free. Returns
/// `None` outside the model, `Some(acquired)` inside.
pub(crate) fn mutex_try_lock(addr: usize) -> Option<bool> {
    op(|g, tid| {
        let m = g.mutexes.entry(addr).or_default();
        if m.owner.is_none() {
            m.owner = Some(tid);
            let mc = m.clock;
            g.threads[tid].clock.join(&mc);
            true
        } else {
            false
        }
    })
}

/// Non-blocking read/write acquire for `RwLock::try_read`/`try_write`.
pub(crate) fn rw_try_lock(addr: usize, write: bool) -> Option<bool> {
    op(|g, tid| {
        let rw = g.rws.entry(addr).or_default();
        let ok = if write {
            rw.writer.is_none() && rw.readers == 0
        } else {
            rw.writer.is_none()
        };
        if ok {
            if write {
                rw.writer = Some(tid);
                let mut acq = rw.clock;
                acq.join(&rw.read_release);
                g.threads[tid].clock.join(&acq);
            } else {
                rw.readers += 1;
                let rc = rw.clock;
                g.threads[tid].clock.join(&rc);
            }
        }
        ok
    })
}

/// Unregisters a child slot whose real OS thread failed to spawn, so
/// the execution does not wait forever on a thread that never runs.
pub(crate) fn cancel_child(tid: usize) {
    if let Some((exec, _)) = current_ctx() {
        let mut g = exec.lock();
        g.threads[tid].state = Run::Done;
        g.live -= 1;
        for t in g.threads.iter_mut() {
            if t.state == Run::Blocked(Block::Join(tid)) {
                t.state = Run::Ready;
            }
        }
        exec.cv.notify_all();
    }
}

/// Model-acquires the mutex at `addr`, blocking (in model time) while
/// it is held. Returns false when not running under the model.
pub(crate) fn mutex_lock(addr: usize) -> bool {
    let Some((exec, tid)) = current_ctx() else {
        return false;
    };
    let mut g = exec.wait_active(tid);
    loop {
        g = bump_step(&exec, g, tid);
        let m = g.mutexes.entry(addr).or_default();
        match m.owner {
            None => {
                m.owner = Some(tid);
                let mc = m.clock;
                g.threads[tid].clock.join(&mc);
                exec.reschedule(&mut g, tid);
                let g = exec.wait_turn(g, tid);
                drop(g);
                return true;
            }
            Some(owner) if owner == tid => {
                fail_and_abort(
                    &exec,
                    g,
                    format!("thread {tid} re-locked a non-reentrant Mutex it already holds"),
                );
            }
            Some(_) => {
                g.threads[tid].state = Run::Blocked(Block::Mutex(addr));
                exec.reschedule(&mut g, tid);
                g = exec.wait_turn(g, tid);
                // Woken by an unlock and scheduled: retry the acquire.
            }
        }
    }
}

/// Releases the mutex at `addr` and wakes its waiters. Never panics:
/// guards drop during abort unwinding, and a panic here would be a
/// double panic.
pub(crate) fn mutex_unlock(addr: usize) {
    let Some((exec, tid)) = current_ctx() else {
        return;
    };
    if std::thread::panicking() {
        // User panic unwinding (failure already being recorded) or
        // abort teardown: release the model state without a schedule
        // point so the unwind stays clean.
        let mut g = exec.lock();
        release_mutex_state(&mut g, tid, addr);
        exec.cv.notify_all();
        return;
    }
    let g = exec.wait_active(tid);
    let mut g = bump_step(&exec, g, tid);
    release_mutex_state(&mut g, tid, addr);
    exec.reschedule(&mut g, tid);
    let g = exec.wait_turn(g, tid);
    drop(g);
}

fn release_mutex_state(g: &mut Inner, tid: usize, addr: usize) {
    let c = g.threads[tid].clock;
    let m = g.mutexes.entry(addr).or_default();
    m.owner = None;
    m.clock.join(&c);
    for t in g.threads.iter_mut() {
        if t.state == Run::Blocked(Block::Mutex(addr)) {
            t.state = Run::Ready;
        }
    }
}

/// Model-acquires a read lock at `addr`.
pub(crate) fn rw_lock_read(addr: usize) -> bool {
    let Some((exec, tid)) = current_ctx() else {
        return false;
    };
    let mut g = exec.wait_active(tid);
    loop {
        g = bump_step(&exec, g, tid);
        let rw = g.rws.entry(addr).or_default();
        if rw.writer.is_none() {
            rw.readers += 1;
            let rc = rw.clock;
            g.threads[tid].clock.join(&rc);
            exec.reschedule(&mut g, tid);
            let g = exec.wait_turn(g, tid);
            drop(g);
            return true;
        }
        g.threads[tid].state = Run::Blocked(Block::RwRead(addr));
        exec.reschedule(&mut g, tid);
        g = exec.wait_turn(g, tid);
    }
}

/// Model-acquires the write lock at `addr`.
pub(crate) fn rw_lock_write(addr: usize) -> bool {
    let Some((exec, tid)) = current_ctx() else {
        return false;
    };
    let mut g = exec.wait_active(tid);
    loop {
        g = bump_step(&exec, g, tid);
        let rw = g.rws.entry(addr).or_default();
        if rw.writer.is_none() && rw.readers == 0 {
            rw.writer = Some(tid);
            let mut acq = rw.clock;
            acq.join(&rw.read_release);
            g.threads[tid].clock.join(&acq);
            exec.reschedule(&mut g, tid);
            let g = exec.wait_turn(g, tid);
            drop(g);
            return true;
        }
        if rw.writer == Some(tid) {
            fail_and_abort(
                &exec,
                g,
                format!("thread {tid} re-locked a RwLock writer side it already holds"),
            );
        }
        g.threads[tid].state = Run::Blocked(Block::RwWrite(addr));
        exec.reschedule(&mut g, tid);
        g = exec.wait_turn(g, tid);
    }
}

/// Releases a read or write lock at `addr` and wakes rw waiters.
pub(crate) fn rw_unlock(addr: usize, write: bool) {
    let Some((exec, tid)) = current_ctx() else {
        return;
    };
    let release = |g: &mut Inner| {
        let c = g.threads[tid].clock;
        let rw = g.rws.entry(addr).or_default();
        if write {
            rw.writer = None;
            rw.clock.join(&c);
        } else {
            rw.readers = rw.readers.saturating_sub(1);
            rw.read_release.join(&c);
        }
        for t in g.threads.iter_mut() {
            if matches!(
                t.state,
                Run::Blocked(Block::RwRead(a)) | Run::Blocked(Block::RwWrite(a)) if a == addr
            ) {
                t.state = Run::Ready;
            }
        }
    };
    if std::thread::panicking() {
        let mut g = exec.lock();
        release(&mut g);
        exec.cv.notify_all();
        return;
    }
    let g = exec.wait_active(tid);
    let mut g = bump_step(&exec, g, tid);
    release(&mut g);
    exec.reschedule(&mut g, tid);
    let g = exec.wait_turn(g, tid);
    drop(g);
}

/// Condvar wait: atomically releases the mutex at `mx_addr`, blocks
/// until notified (or, for `timed`, until nothing else can run), then
/// model-reacquires the mutex. Returns whether the wait timed out.
pub(crate) fn cond_wait(cv_addr: usize, mx_addr: usize, timed: bool) -> bool {
    let Some((exec, tid)) = current_ctx() else {
        return false;
    };
    let g = exec.wait_active(tid);
    let mut g = bump_step(&exec, g, tid);
    release_mutex_state(&mut g, tid, mx_addr);
    g.conds.entry(cv_addr).or_default().waiters.push(tid);
    g.threads[tid].timed_out = false;
    g.threads[tid].state = Run::Blocked(if timed {
        Block::TimedCond(cv_addr)
    } else {
        Block::Cond(cv_addr)
    });
    exec.reschedule(&mut g, tid);
    let g = exec.wait_turn(g, tid);
    let timed_out = g.threads[tid].timed_out;
    drop(g);
    // Scheduled again ⇒ notified (or timed out); reacquire the mutex.
    mutex_lock(mx_addr);
    timed_out
}

/// Wakes one waiter (a decision point when several wait) or all.
pub(crate) fn cond_notify(cv_addr: usize, all: bool) {
    let _ = op(|g, _tid| {
        let Some(cs) = g.conds.get_mut(&cv_addr) else {
            return;
        };
        if cs.waiters.is_empty() {
            return;
        }
        if all {
            let woken = std::mem::take(&mut cs.waiters);
            for t in woken {
                g.threads[t].state = Run::Ready;
            }
        } else {
            let mut cands = cs.waiters.clone();
            cands.sort_unstable();
            let (seed, salt) = (g.cfg.seed, g.steps);
            shuffle_tail(&mut cands, seed, salt);
            let pick = g.choose(cands.len());
            let woken = cands[pick];
            if let Some(cs) = g.conds.get_mut(&cv_addr) {
                cs.waiters.retain(|&w| w != woken);
            }
            g.threads[woken].state = Run::Ready;
        }
    });
}

/// Registers a child thread slot. **Not** a schedule point: the parent
/// must stay active until the real OS thread actually exists (it is the
/// parent who spawns it — handing the baton to a not-yet-spawned child
/// would deadlock). The parent calls [`spawn_point`] right after the
/// real spawn succeeds.
pub(crate) fn register_child(name: Option<String>) -> Option<(Arc<Execution>, usize)> {
    let (exec, tid) = current_ctx()?;
    let g = exec.wait_active(tid);
    let mut g = bump_step(&exec, g, tid);
    if g.threads.len() >= MAX_THREADS {
        fail_and_abort(
            &exec,
            g,
            format!("model spawned more than {MAX_THREADS} threads; shrink the model"),
        );
    }
    let ctid = g.threads.len();
    let mut cclock = g.threads[tid].clock;
    cclock.tick(ctid);
    g.threads.push(Th {
        state: Run::Ready,
        clock: cclock,
        last_seen: HashMap::new(),
        name,
        timed_out: false,
    });
    g.live += 1;
    drop(g);
    Some((exec, ctid))
}

/// The schedule point right after a successful real spawn: the freshly
/// registered child is now a real thread parked in
/// [`child_enter`], so it is safe to hand it the baton.
pub(crate) fn spawn_point() {
    let _ = op(|_, _| ());
}

/// Entry point for a freshly spawned model thread's real OS thread:
/// binds the slot and parks until first scheduled.
pub(crate) fn child_enter(exec: Arc<Execution>, tid: usize) {
    adopt(exec.clone(), tid);
    let g = exec.wait_active(tid);
    drop(g);
}

/// Model-joins thread `target` (blocking in model time), transferring
/// its final clock.
pub(crate) fn join_model(target: usize) {
    let Some((exec, tid)) = current_ctx() else {
        return;
    };
    let mut g = exec.wait_active(tid);
    loop {
        g = bump_step(&exec, g, tid);
        if g.threads[target].state == Run::Done {
            let tc = g.threads[target].clock;
            g.threads[tid].clock.join(&tc);
            exec.reschedule(&mut g, tid);
            let g = exec.wait_turn(g, tid);
            drop(g);
            return;
        }
        g.threads[tid].state = Run::Blocked(Block::Join(target));
        exec.reschedule(&mut g, tid);
        g = exec.wait_turn(g, tid);
    }
}

/// Whether thread `target` has finished, as a model observation.
pub(crate) fn is_finished_model(target: usize) -> Option<bool> {
    op(|g, _| g.threads[target].state == Run::Done)
}

/// Epilogue of every model thread: records panics as failures, marks
/// the slot done, wakes joiners, hands the baton on.
pub(crate) fn finish_current(outcome: Outcome) {
    let Some((exec, tid)) = current_ctx() else {
        return;
    };
    unadopt();
    let mut g = exec.lock();
    if let Outcome::Panic(msg) = outcome {
        let name = g.threads[tid].name.clone().unwrap_or_default();
        record_failure(&mut g, format!("thread {tid} ({name}) panicked: {msg}"));
    }
    g.threads[tid].state = Run::Done;
    for t in g.threads.iter_mut() {
        if t.state == Run::Blocked(Block::Join(tid)) {
            t.state = Run::Ready;
        }
    }
    g.live -= 1;
    if !g.aborted {
        exec.reschedule(&mut g, tid);
    }
    exec.cv.notify_all();
}

/// Classifies a `catch_unwind` result for [`finish_current`].
pub(crate) fn classify(err: &(dyn std::any::Any + Send)) -> Outcome {
    if err.is::<AbortToken>() {
        Outcome::Abort
    } else if let Some(s) = err.downcast_ref::<&str>() {
        Outcome::Panic((*s).to_string())
    } else if let Some(s) = err.downcast_ref::<String>() {
        Outcome::Panic(s.clone())
    } else {
        Outcome::Panic("panic with non-string payload".to_string())
    }
}

/// Installs (once, process-wide) a panic hook that silences panics from
/// model threads: explored-and-rejected interleavings unwind via
/// panics by design and must not spam stderr.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_model = IN_MODEL.try_with(|c| c.get()).unwrap_or(false);
            if !in_model {
                prev(info);
            }
        }));
    });
}

/// The result of running a single interleaving.
pub(crate) struct RunResult {
    pub failure: Option<RawFailure>,
    pub trace: Vec<Choice>,
}

/// Executes the model closure once under `prefix`, returning the trace
/// (for DFS backtracking) and any failure found.
pub(crate) fn run_once(cfg: Cfg, prefix: Vec<u32>, f: Arc<dyn Fn() + Send + Sync>) -> RunResult {
    install_hook();
    let exec = Arc::new(Execution::new(cfg, prefix));
    let e2 = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("loom-model-main".to_string())
        .spawn(move || {
            adopt(Arc::clone(&e2), 0);
            let r = panic::catch_unwind(AssertUnwindSafe(|| {
                let g = e2.wait_active(0);
                drop(g);
                f();
            }));
            let outcome = match r {
                Ok(()) => Outcome::Ok,
                Err(e) => classify(&*e),
            };
            finish_current(outcome);
        })
        .expect("spawn model root thread");
    {
        let mut g = exec.lock();
        while g.live > 0 {
            g = exec.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        // While still holding the lock, no model thread can re-enter.
        let failure = g.failure.take();
        let trace = std::mem::take(&mut g.trace);
        drop(g);
        let _ = root.join();
        RunResult { failure, trace }
    }
}
