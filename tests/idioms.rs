//! The §2 idiom catalog, end to end: each test compiles an idiomatic
//! program and checks that inference survives where unification-style
//! reasoning would be damaged.

use retypd::baselines::infer_unification;
use retypd::core::{Label, Lattice, Loc, Solver, Symbol};
use retypd::eval::infer_retypd;
use retypd::minic::codegen::compile;
use retypd::minic::parse_module;

fn solve(src: &str) -> (retypd::core::SolverResult, Lattice, retypd::core::Program) {
    let module = parse_module(src).expect("parses");
    let (mir, _) = compile(&module).expect("compiles");
    let program = retypd::congen::generate(&mir);
    let lattice = Lattice::c_types();
    let result = Solver::new(&lattice).infer(&program);
    (result, lattice, program)
}

#[test]
fn semi_syntactic_constants_do_not_unify_params() {
    // §2.1: f(0, 0) compiles to xor eax,eax; push eax; push eax. The int
    // parameter and the pointer parameter must not be unified through the
    // shared zero register.
    let src = "
        struct S { int a; };
        int f(int x, struct S* y) {
            if (y != 0) { return y->a; }
            return x;
        }
        int caller() {
            return f(0, (struct S*) 0);
        }
    ";
    let (result, lattice, _) = solve(src);
    let f = &result.procs[&Symbol::intern("f")];
    let sk = f.sketch.as_ref().expect("sketch");
    // Param 1 (stack4) is pointer-like; param 0 (stack0) must NOT have
    // acquired pointer capabilities through the constant.
    let p1 = sk.walk(&[Label::in_stack(4)]).expect("param 1");
    assert!(sk.step(p1, Label::Load).is_some());
    if let Some(p0) = sk.walk(&[Label::in_stack(0)]) {
        assert!(
            sk.step(p0, Label::Load).is_none(),
            "int param contaminated with pointer capability:\n{}",
            sk.render(&lattice)
        );
    }
}

#[test]
fn fortuitous_reuse_keeps_return_types_apart() {
    // §2.1 / Figure 1: an early return of NULL shares the register with
    // the real result; the callee's return type must not leak into the
    // NULL path's producer.
    let src = "
        struct S { int a; };
        struct T { struct S* inner; };
        struct T* get_T(struct S* s) {
            if (s == 0) { return (struct T*) 0; }
            struct T* t = (struct T*) malloc(4);
            t->inner = s;
            return t;
        }
    ";
    let (result, _, _) = solve(src);
    let f = &result.procs[&Symbol::intern("get_T")];
    assert!(f.sketch.is_some());
    // The early-return zero contributes no constraints, so no
    // inconsistency can arise between the paths.
    assert!(result.inconsistencies.is_empty());
}

#[test]
fn stack_slot_reuse_does_not_merge_types() {
    // §2.1: two locals in disjoint scopes share one stack slot; one is an
    // int, the other a struct pointer. Flow-sensitive slot naming must
    // keep them apart (no pointer capability on the int's uses).
    let src = "
        struct S { int a; int b; };
        int g(int c) {
            if (c > 0) {
                int x = c + 1;
                return x;
            }
            if (c < 0) {
                struct S* p = (struct S*) malloc(8);
                return p->a;
            }
            return 0;
        }
    ";
    let (result, _, _) = solve(src);
    assert!(result.procs[&Symbol::intern("g")].sketch.is_some());
    assert!(result.inconsistencies.is_empty());
}

#[test]
fn polymorphic_wrappers_beat_unification() {
    // §2.2: a shared generic release wrapper must not merge its users'
    // types under Retypd, but does merge them under unification.
    let src = "
        struct A { int x; int y; };
        struct B { char* s; };
        void release(void* p) { free(p); return; }
        int user() {
            struct A* a = (struct A*) malloc(8);
            a->y = 3;
            struct B* b = (struct B*) malloc(4);
            char* s = b->s;
            release((void*) a);
            release((void*) b);
            return a->y;
        }
    ";
    let module = parse_module(src).unwrap();
    let (mir, _) = compile(&module).unwrap();
    let program = retypd::congen::generate(&mir);
    let lattice = Lattice::c_types();

    let rt = infer_retypd(&program, &lattice);
    let un = infer_unification(&program, &lattice);
    let rel = Symbol::intern("release");
    let r_param = &rt[&rel].params[&Loc::Stack(0)];
    let u_param = &un[&rel].params[&Loc::Stack(0)];
    // Retypd: generic pointer (no invented fields).
    let r_fields = count_fields(r_param);
    let u_fields = count_fields(u_param);
    assert!(
        r_fields < u_fields,
        "retypd {r_param} ({r_fields} fields) vs unification {u_param} ({u_fields} fields)"
    );
}

fn count_fields(t: &retypd::baselines::InfTy) -> usize {
    match t {
        retypd::baselines::InfTy::Ptr(p) => count_fields(p),
        retypd::baselines::InfTy::Struct(fs) => fs.len(),
        _ => 0,
    }
}

#[test]
fn register_param_false_positive_is_harmless() {
    // §2.5: fastcall register params + callsites with unrelated register
    // contents must not corrupt results (subtyping, not unification).
    let src = "
        fastcall int fast_add(int a, int b) {
            return a + b;
        }
        int caller() {
            int r = fast_add(1, 2);
            return r;
        }
    ";
    let (result, _, _) = solve(src);
    assert!(result.procs[&Symbol::intern("fast_add")].sketch.is_some());
    assert!(result.inconsistencies.is_empty());
}

#[test]
fn cross_cast_reports_but_does_not_crash() {
    // §2.6: reinterpreting a float's bits as an int is inconsistent but
    // must degrade gracefully (reported, not fatal).
    let src = "
        int bits(float f) {
            int* p = (int*) &f;
            return *p;
        }
    ";
    let (result, _, _) = solve(src);
    assert!(result.procs.contains_key(&Symbol::intern("bits")));
}
