//! The sharded analysis server.
//!
//! ## Architecture
//!
//! ```text
//!            accept()              bounded admission            shard threads
//!  client ──▶ acceptor ──▶ conn handler ──▶ [queued < limit?] ──▶ shard 0: AnalysisDriver + cache
//!  client ──▶            ──▶ conn handler ──▶        │         ──▶ shard 1: AnalysisDriver + cache
//!                                            reject: Overloaded    …  (route: fingerprint % shards)
//! ```
//!
//! * **One driver per shard.** Each shard thread owns a long-lived
//!   [`AnalysisDriver`] (owned lattice, bounded cache) for its whole life.
//!   Modules are routed by [`ModuleJob::fingerprint`]` % shards`, so a
//!   re-submitted module always lands on the shard whose cache already
//!   holds its SCCs — the warm path is a pure fingerprint hit.
//! * **Admission control.** A global in-flight job counter guards the
//!   queues: a request whose batch would push the count past
//!   [`ServeConfig::queue_depth`] is refused with `overloaded` *before*
//!   anything is enqueued (no partial admission), so an overloaded server
//!   answers immediately instead of stacking work. A batch larger than the
//!   whole budget could never be admitted, so it gets a permanent `error`
//!   naming the limit instead of an `overloaded` a retrying client would
//!   chase forever.
//! * **Panic isolation.** A solver panic is caught on the shard thread:
//!   the job's admission slot is released, the client gets an `error`
//!   response naming the module, and the shard rebuilds its driver (cold
//!   cache) and keeps serving — one hostile module cannot kill a shard.
//! * **Per-request lattices (protocol v2).** A solve request may carry a
//!   [`retypd_core::LatticeDescriptor`]; the server validates and builds
//!   it once per connection request (memoized server-wide), shards solve
//!   through the driver's session API with the shared lattice, and every
//!   scheme-cache key mixes in the lattice fingerprint — two lattices
//!   never share cache entries. Absent descriptor ⇒ `c_types`, exactly the
//!   v1 behavior.
//! * **Streaming batches.** `solve_batch` with `stream: true` writes one
//!   `report` frame per module the moment its shard finishes it, plus a
//!   terminal `batch_done` — time-to-first-report beats whole-batch
//!   latency because modules stream while siblings still solve.
//! * **Tracked connections.** Connection handlers are registered and
//!   *joined* on drain: reads are polled (so an idle handler notices the
//!   drain within a tick), every written frame reaches the kernel before
//!   the process can exit, and a stalled or half-open client is bounded by
//!   [`ServeConfig::read_timeout`] — it gets a protocol `error` reply when
//!   possible instead of pinning a thread forever.
//! * **Graceful drain.** `shutdown` (wire message or
//!   [`ServerHandle::shutdown`]) stops admissions, lets every queued job
//!   finish, and joins the shard *and connection* threads; in-flight
//!   responses are delivered before the listener goes away.
//!
//! Determinism: shard routing is content-addressed and each module solves
//! on exactly one driver, so results are bit-identical to in-process
//! [`AnalysisDriver::solve_batch`] — pinned by `tests/serve_determinism.rs`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use retypd_core::fxhash::FxHashMap;
use retypd_core::sync::atomic::{AtomicU64, Ordering};
use retypd_core::sync::thread::JoinHandle;
use retypd_core::sync::{mpsc, Arc, Mutex};
use retypd_core::{Lattice, LatticeDescriptor, SolverResult};
use retypd_driver::{
    AnalysisDriver, DriverConfig, LatticeMemo, LatticeSelector, ModuleJob, ModuleReport,
    SolveRequest,
};
use retypd_telemetry::{trace_id_hash, Counter, Histogram, MetricsSnapshot, Registry};

use crate::admission::Admission;
use crate::stats_cells::ShardStatsCells;

use crate::wire::{
    self, Request, Response, WireBatchDone, WireMetrics, WireModule, WireReport, WireStats,
};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Number of shards (each owns one driver and one cache).
    pub shards: usize,
    /// Worker threads inside each shard's wave scheduler.
    pub workers_per_shard: usize,
    /// Admission limit: maximum modules admitted but not yet finished.
    /// Clamped to at least 1 (a depth of 0 would permanently reject all
    /// work).
    pub queue_depth: usize,
    /// Per-shard driver cache capacity (see
    /// [`DriverConfig::cache_capacity`]); a resident service must bound its
    /// caches, so unlike the driver default this is `Some` out of the box.
    pub cache_capacity: Option<usize>,
    /// How long a connection may sit idle (or stall mid-frame) before the
    /// server replies with a protocol `error` and closes it; `None`
    /// disables the timeout. A half-open client can otherwise pin a
    /// connection thread forever. The same value (or 30 s when disabled)
    /// also bounds blocking *writes*, so a client that stops reading its
    /// streamed replies cannot wedge a handler — and therefore cannot
    /// wedge the drain that joins it.
    pub read_timeout: Option<Duration>,
    /// Cap on cumulative frames one connection may send over its lifetime;
    /// the frame that crosses the budget gets a protocol `error` naming
    /// the limit and the connection is closed. `None` disables the cap.
    /// Bounds how much total work a single endlessly-reconnecting-averse
    /// client can extract from one accepted socket.
    pub max_frames_per_conn: Option<u64>,
    /// Cap on cumulative bytes (payloads plus their 4-byte length
    /// prefixes) one connection may send; enforced like
    /// [`ServeConfig::max_frames_per_conn`]. `None` disables the cap.
    pub max_bytes_per_conn: Option<u64>,
    /// Directory for per-shard persistent scheme stores
    /// (`shard-<N>.store` under it; created if absent). When set, each
    /// shard's cache survives process restarts *and* panic rebuilds: the
    /// replacement driver replays the store instead of starting cold.
    /// `None` (the default) keeps shard caches process-lifetime only.
    pub persist_dir: Option<PathBuf>,
    /// Artificial per-job delay injected on the shard thread *before* the
    /// solve — a chaos/testing seam (`serve --solve-delay-ms`) for
    /// exercising tail-latency machinery (the gateway's hedged requests)
    /// against a deterministically slow backend. `None` (the default)
    /// adds nothing; results are unaffected either way.
    pub solve_delay: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            workers_per_shard: 1,
            queue_depth: 256,
            cache_capacity: Some(4096),
            read_timeout: Some(Duration::from_secs(30)),
            max_frames_per_conn: Some(100_000),
            max_bytes_per_conn: Some(1 << 30),
            persist_dir: None,
            solve_delay: None,
        }
    }
}

/// A solve job routed to a shard.
struct ShardJob {
    /// Position in the originating batch (responses preserve order).
    index: usize,
    job: ModuleJob,
    fingerprint: u64,
    /// The lattice to solve against; `None` is the shard driver's default
    /// (`c_types`). Pre-built and validated by the connection handler, so
    /// the shard's session resolution is infallible.
    lattice: Option<Arc<Lattice>>,
    /// When the connection handler enqueued the job — the shard measures
    /// queue wait as `dequeue − enqueued`.
    enqueued: Instant,
    /// Hashed request trace id (0 = untraced): established as the shard
    /// thread's current trace for the duration of the solve, so every span
    /// the solver emits carries it.
    trace: u64,
    /// The request's original trace id string, echoed on the report.
    trace_id: Option<Arc<str>>,
    /// `Err` carries a description of a solver panic on this module.
    reply: mpsc::Sender<(usize, Result<WireReport, String>)>,
}

/// One shard's handle: its queue sender, published statistics, and
/// metrics registry.
struct Shard {
    /// `None` once draining has begun (new sends fail fast).
    tx: Mutex<Option<mpsc::Sender<ShardJob>>>,
    /// Refreshed lock-free by the shard thread after every job.
    stats: ShardStatsCells,
    /// Per-shard instruments (queue wait, solve wall, job size). Every
    /// shard registers the same names, so the `metrics` reply merges them
    /// into one fleet-wide view — bit-identical regardless of shard count
    /// for shard-count-independent quantities like `shard.job_constraints`.
    metrics: Registry,
}

/// Server-wide instruments, resolved once so the per-frame record path is
/// an atomic add with no registry lookup.
struct ServerMetrics {
    registry: Registry,
    conns_opened: Arc<Counter>,
    conns_closed: Arc<Counter>,
    frames: Arc<Counter>,
    frame_decode_ns: Arc<Histogram>,
    frame_bytes: Arc<Histogram>,
    reply_flush_ns: Arc<Histogram>,
    admitted_jobs: Arc<Counter>,
    rejected_batches: Arc<Counter>,
}

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Registry::new();
        ServerMetrics {
            conns_opened: registry.counter("serve.conns_opened"),
            conns_closed: registry.counter("serve.conns_closed"),
            frames: registry.counter("serve.frames"),
            frame_decode_ns: registry.histogram("serve.frame_decode_ns"),
            frame_bytes: registry.histogram("serve.frame_bytes"),
            reply_flush_ns: registry.histogram("serve.reply_flush_ns"),
            admitted_jobs: registry.counter("serve.admitted_jobs"),
            rejected_batches: registry.counter("serve.rejected_batches"),
            registry,
        }
    }
}

struct Shared {
    shards: Vec<Shard>,
    /// The admission gate: bounded in-flight counter, accept/reject
    /// accounting, and the sticky drain flag (see [`crate::admission`]).
    admission: Admission,
    local_addr: SocketAddr,
    /// Per-connection read behavior (see [`ServeConfig::read_timeout`]).
    read_timeout: Option<Duration>,
    /// Per-connection budgets (see [`ServeConfig::max_frames_per_conn`]
    /// and [`ServeConfig::max_bytes_per_conn`]).
    max_frames_per_conn: Option<u64>,
    max_bytes_per_conn: Option<u64>,
    /// Live connection handlers, joined on drain so every final frame
    /// reaches the kernel before the process exits. The acceptor inserts
    /// `None` *before* spawning (so a handler that finishes instantly can
    /// deregister without racing the insert) and fills in the handle
    /// right after.
    conns: Mutex<FxHashMap<u64, Option<JoinHandle<()>>>>,
    next_conn: AtomicU64,
    /// Descriptor-built lattices memoized server-wide (bounded; shared
    /// across all shards and connections).
    lattices: LatticeMemo,
    /// `Lattice::c_types().fingerprint()` — what reports carry for
    /// default-lattice (v1) requests.
    default_lattice_fp: u64,
    /// Server-wide instruments (connection lifecycle, frame decode,
    /// admission, reply flush).
    metrics: ServerMetrics,
    /// This process's OS pid, echoed in `stats` so a supervisor can tie
    /// the socket to the child it spawned.
    pid: u64,
    /// Process start, nanoseconds since the UNIX epoch: a restarted
    /// backend answers with a larger value, so a supervisor can tell a
    /// recycled process from a surviving one behind the same addr.
    start_ns: u64,
    /// Artificial pre-solve delay (see [`ServeConfig::solve_delay`]).
    solve_delay: Option<Duration>,
}

impl Shared {
    /// Resolves an optional wire descriptor into a ready-to-share lattice,
    /// or a client-visible error message. `None` means the default.
    fn resolve_lattice(
        &self,
        descriptor: Option<&LatticeDescriptor>,
    ) -> Result<Option<Arc<Lattice>>, String> {
        let Some(d) = descriptor else { return Ok(None) };
        self.lattices
            .get_or_build(d)
            .map(Some)
            .map_err(|e| format!("bad lattice: {e}"))
    }
}

impl Shared {
    fn begin_drain(&self) {
        if !self.admission.begin_drain() {
            return; // already draining
        }
        // Hang up the shard queues: shards finish what is buffered, then
        // their `for` loops end.
        for shard in &self.shards {
            shard.tx.lock().expect("shard tx lock").take();
        }
        // Nudge the acceptor out of `accept()`. A bind to 0.0.0.0/[::] is
        // not a connectable destination everywhere, so aim the nudge at
        // loopback on the same port; residual failure (e.g. ephemeral-port
        // exhaustion) leaves the acceptor parked until the next real
        // connection, which also observes `draining` and lets it exit.
        let mut nudge = self.local_addr;
        if nudge.ip().is_unspecified() {
            nudge.set_ip(match nudge.ip() {
                std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&nudge, std::time::Duration::from_secs(1));
    }

    fn stats(&self) -> WireStats {
        WireStats {
            accepted: self.admission.accepted(),
            rejected: self.admission.rejected(),
            queued: self.admission.queued(),
            queue_limit: self.admission.limit(),
            pid: self.pid,
            start_ns: self.start_ns,
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| s.stats.snapshot(i))
                .collect(),
        }
    }

    /// The `metrics` reply: the process-global registry (core + driver
    /// instruments), the server-wide registry, and every shard registry
    /// merged into one name-sorted snapshot. Shard registries register
    /// identical names, so the merged histograms aggregate the fleet —
    /// and because merge re-sorts by name, the reply's ordering (and, for
    /// shard-count-independent quantities, its quantiles) is bit-identical
    /// at 1 and N shards.
    fn merged_metrics(&self) -> MetricsSnapshot {
        let mut snap = retypd_telemetry::global().snapshot();
        snap.merge(&self.metrics.registry.snapshot());
        for shard in &self.shards {
            snap.merge(&shard.metrics.snapshot());
        }
        snap
    }
}

/// A running server: its bound address and lifecycle control.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

/// Read-only metrics access that outlives [`ServerHandle::join`].
///
/// `join` consumes the handle, but the `serve` binary still needs one
/// final exposition after the drain (`--metrics-text`); the observer
/// keeps the registries alive exactly long enough to render it. Shard
/// registries are never torn down mid-snapshot — a shard thread exiting
/// only drops its `Sender`, not its `Registry`.
#[derive(Clone)]
pub struct MetricsObserver {
    shared: Arc<Shared>,
}

impl MetricsObserver {
    /// The merged snapshot: process-global + server-wide + every shard.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.shared.merged_metrics()
    }

    /// Prometheus-style text exposition of [`MetricsObserver::snapshot`].
    pub fn text(&self) -> String {
        self.snapshot().to_text()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A cloneable metrics view that survives [`ServerHandle::join`].
    pub fn metrics_observer(&self) -> MetricsObserver {
        MetricsObserver {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Begins a graceful drain and waits for queued work and every server
    /// thread to finish.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.join_threads();
    }

    /// Blocks until the server drains (a `shutdown` wire message, or
    /// [`ServerHandle::shutdown`] from another handle-owning thread).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        // With the acceptor gone no new connections can register; joining
        // what remains guarantees every final response frame was handed to
        // the kernel before this returns — the delivery contract that
        // retired the exit dwell in the `serve` binary. Handlers notice
        // the drain within one read-poll tick, so this is bounded.
        let conns: Vec<JoinHandle<()>> = self
            .shared
            .conns
            .lock()
            .expect("connection registry")
            .drain()
            .filter_map(|(_, handle)| handle)
            .collect();
        for handle in conns {
            let _ = handle.join();
        }
    }
}

/// How a shard runs one job. Production always goes through the driver's
/// session API (default or shared lattice); tests inject a panicking hook
/// to pin the shard's panic isolation end to end over a real socket.
type SolveHook = Arc<
    dyn Fn(&AnalysisDriver<'static>, &ModuleJob, Option<&Arc<Lattice>>) -> SolverResult
        + Send
        + Sync,
>;

/// The production solve: one-module session against the request lattice.
fn session_solve(
    driver: &AnalysisDriver<'static>,
    job: &ModuleJob,
    lattice: Option<&Arc<Lattice>>,
) -> SolverResult {
    let selector = match lattice {
        None => LatticeSelector::Default,
        Some(l) => LatticeSelector::Shared(Arc::clone(l)),
    };
    driver
        .session(SolveRequest::batch(std::slice::from_ref(job)).with_lattice(selector))
        .expect("pre-built lattices always resolve")
        .run()
        .pop()
        .expect("one job in, one report out")
        .result
}

/// Starts a server.
///
/// # Errors
///
/// Fails if the listen address cannot be bound.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    start_with_hook(config, Arc::new(session_solve))
}

fn start_with_hook(config: ServeConfig, hook: SolveHook) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shards = config.shards.max(1);

    let mut shard_handles = Vec::new();
    let mut shard_threads = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel::<ShardJob>();
        shard_handles.push(Shard {
            tx: Mutex::new(Some(tx)),
            stats: ShardStatsCells::default(),
            metrics: Registry::new(),
        });
        receivers.push(rx);
    }

    let shared = Arc::new(Shared {
        shards: shard_handles,
        admission: Admission::new(config.queue_depth),
        local_addr,
        read_timeout: config.read_timeout,
        max_frames_per_conn: config.max_frames_per_conn,
        max_bytes_per_conn: config.max_bytes_per_conn,
        conns: Mutex::new(FxHashMap::default()),
        next_conn: AtomicU64::new(0),
        lattices: LatticeMemo::new(),
        default_lattice_fp: Lattice::c_types().fingerprint(),
        metrics: ServerMetrics::new(),
        pid: std::process::id() as u64,
        start_ns: std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64),
        solve_delay: config.solve_delay,
    });

    // Per-shard store files: routing is stable (fingerprint % shards), so
    // shard N's log holds exactly the entries shard N will be asked for
    // again — as long as the relaunch uses the same shard count.
    if let Some(dir) = &config.persist_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "persist dir {}: unusable ({e}); serving without persistence",
                dir.display()
            );
        }
    }
    // Shards signal once their driver is built (store replayed, first
    // stats published): `start` returns only after every shard is ready,
    // so a stats probe right after a restart already sees the replay
    // gauges instead of racing driver construction.
    let (ready_tx, ready_rx) = mpsc::channel::<()>();
    for (shard_id, rx) in receivers.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let hook = Arc::clone(&hook);
        let ready = ready_tx.clone();
        let driver_config = DriverConfig {
            workers: config.workers_per_shard.max(1),
            cache_capacity: config.cache_capacity,
            persist_path: config
                .persist_dir
                .as_ref()
                .map(|dir| dir.join(format!("shard-{shard_id}.store"))),
        };
        shard_threads.push(
            retypd_core::sync::thread::Builder::new()
                .name(format!("retypd-shard-{shard_id}"))
                .spawn(move || shard_main(shard_id, rx, driver_config, shared, hook, ready))
                .expect("spawn shard thread"),
        );
    }
    drop(ready_tx);
    for _ in 0..shards {
        // A hung-up sender means the shard thread died during driver
        // construction; surface it instead of serving with a dead shard.
        ready_rx
            .recv()
            .expect("shard thread died before becoming ready");
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        retypd_core::sync::thread::Builder::new()
            .name("retypd-acceptor".into())
            .spawn(move || acceptor_main(listener, shared))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        shard_threads,
    })
}

fn shard_main(
    shard_id: usize,
    rx: mpsc::Receiver<ShardJob>,
    driver_config: DriverConfig,
    shared: Arc<Shared>,
    hook: SolveHook,
    ready: mpsc::Sender<()>,
) {
    // The driver outlives every request: its cache *is* the shard's state.
    let mut driver = AnalysisDriver::owned(Lattice::c_types(), driver_config.clone());
    let mut jobs_done = 0u64;
    let mut rebuilds = 0u64;
    let cells = &shared.shards[shard_id].stats;
    // Resolve the shard instruments once: the per-job record path is then
    // three lock-free atomic adds per histogram. `shard.job_constraints`
    // records a *deterministic* per-job quantity (the module's constraint
    // count), so the histogram merged across shards is a pure function of
    // the job multiset — the quantile bit-identity the acceptance test
    // pins at 1 vs N shards. The `_ns` histograms are wall-clock and only
    // asserted non-empty.
    let shard_metrics = &shared.shards[shard_id].metrics;
    let queue_wait_ns = shard_metrics.histogram("shard.queue_wait_ns");
    let solve_ns = shard_metrics.histogram("shard.solve_ns");
    let job_constraints = shard_metrics.histogram("shard.job_constraints");
    let jobs_counter = shard_metrics.counter("shard.jobs");
    // Publish before the first job so a `stats` probe right after a
    // (re)start already sees the replay gauges — that is how CI's restart
    // check distinguishes a warm start from a cold one without solving.
    cells.publish(&driver, jobs_done, rebuilds);
    let _ = ready.send(()); // unblocks `start`: this shard is warm and serving
    drop(ready);
    for msg in rx {
        // The job's admission slot, released exactly once on every exit
        // path (the solver panic below included) — dropped explicitly
        // *before* the reply send so a client acting on its response
        // already sees the freed slot in a `stats` probe.
        let slot = shared.admission.slot_guard();
        let start = Instant::now();
        queue_wait_ns.record(start.duration_since(msg.enqueued).as_nanos() as u64);
        job_constraints.record(
            msg.job
                .program
                .procs
                .iter()
                .map(|p| p.constraints.len() as u64)
                .sum(),
        );
        // The chaos seam: stall *before* solving so injected slowness is
        // pure latency — the result bytes cannot differ.
        if let Some(delay) = shared.solve_delay {
            retypd_core::sync::thread::sleep(delay);
        }
        // Every span the solver emits while this job runs carries the
        // request's trace id (0 = untraced); the guard restores the
        // previous trace when the job finishes.
        let trace_guard = retypd_telemetry::set_current_trace(msg.trace);
        let solve_span = retypd_telemetry::span("serve.shard_solve");
        // A solver panic on one hostile/unusual module must not kill the
        // shard: an unwinding shard thread would leak the job's admission
        // slot and turn 1/N of the fingerprint space into a dead letter.
        // Catch the panic, answer with an error, and rebuild the driver —
        // its caches may hold state from the half-finished solve.
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hook(&driver, &msg.job, msg.lattice.as_ref())
        }));
        drop(solve_span);
        drop(trace_guard);
        solve_ns.record(start.elapsed().as_nanos() as u64);
        jobs_counter.inc();
        let reply = match solved {
            Ok(result) => {
                let report = ModuleReport {
                    name: msg.job.name.clone(),
                    lattice_fp: msg
                        .lattice
                        .as_ref()
                        .map_or_else(|| driver.lattice().fingerprint(), |l| l.fingerprint()),
                    result,
                    wall: start.elapsed(),
                };
                jobs_done += 1;
                let mut wire = WireReport::from_report(&report, msg.fingerprint, shard_id);
                wire.trace_id = msg.trace_id.as_deref().map(str::to_owned);
                Ok(wire)
            }
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                // Flush the wounded driver's pending store appends, then
                // rebuild: the replacement replays the store, so with
                // persistence configured the rebuilt cache is *warm* (the
                // half-finished solve never inserted, so nothing tainted
                // was persisted). Without persistence this is the old
                // cold rebuild.
                driver.flush_store();
                driver = AnalysisDriver::owned(Lattice::c_types(), driver_config.clone());
                rebuilds += 1;
                Err(format!("solver panicked on module {:?}: {what}", msg.job.name))
            }
        };
        // After a panic the rebuilt driver reports a replayed (or, without
        // persistence, cold) cache plus the bumped rebuild counter — the
        // observability the stats probe needs to assert warm-after-rebuild.
        cells.publish(&driver, jobs_done, rebuilds);
        drop(slot);
        // A dropped reply receiver just means the client went away.
        let _ = msg.reply.send((msg.index, reply));
    }
}

fn acceptor_main(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.admission.is_draining() {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                // Persistent accept errors (e.g. EMFILE under fd
                // exhaustion) would otherwise spin this loop at 100% CPU;
                // back off briefly before retrying.
                retypd_core::sync::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        // Frames are small request/response pairs; Nagle + delayed ACK
        // would add ~40ms to every warm hit.
        stream.set_nodelay(true).ok();
        // Writes are always bounded: a client that stops reading its
        // replies must not wedge a handler the drain will join.
        stream
            .set_write_timeout(Some(shared.read_timeout.unwrap_or(DEFAULT_WRITE_TIMEOUT)))
            .ok();
        // Track the handler so a drain can join it: every written frame
        // reaches the kernel before the process exits. Register the id
        // *before* spawning so a handler that finishes instantly (port
        // scanner, health check) deregisters an existing entry instead of
        // racing the insert and leaking a dead handle.
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared
            .conns
            .lock()
            .expect("connection registry")
            .insert(id, None);
        let conn_shared = Arc::clone(&shared);
        let spawned = retypd_core::sync::thread::Builder::new()
            .name("retypd-conn".into())
            .spawn(move || {
                handle_conn(stream, &conn_shared);
                // Deregister after the last write: if the drain's sweep
                // already took this handle, the removal is a no-op and the
                // join covers us; either way nothing runs after this line.
                conn_shared
                    .conns
                    .lock()
                    .expect("connection registry")
                    .remove(&id);
            });
        let mut conns = shared.conns.lock().expect("connection registry");
        match spawned {
            // The handler may already have deregistered itself; only fill
            // in the handle if the entry is still live (a missing entry
            // means the thread is past its final write and exiting).
            Ok(handle) => {
                if let Some(slot) = conns.get_mut(&id) {
                    *slot = Some(handle);
                }
            }
            Err(_) => {
                conns.remove(&id);
            }
        }
    }
}

/// One poll tick: how often a blocked read re-checks the drain flag and
/// the configured read deadline. Bounds how long a drain waits on an idle
/// connection.
const READ_POLL: Duration = Duration::from_millis(100);

/// Once a drain begins, a connection mid-frame (or mid-write) gets this
/// long to finish before the handler gives up and closes — the backstop
/// that keeps the drain join bounded even with `read_timeout` disabled.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Blocking writes are always bounded (a client that stops reading its
/// replies must not wedge the handler the drain will join): the
/// configured read timeout, or this when reads are unbounded.
const DEFAULT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Outcome of a polled frame read.
enum PolledRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF between frames.
    Eof,
    /// The server began draining while this connection sat idle (no frame
    /// byte consumed): close without a reply — an unsolicited frame would
    /// desynchronize a request/response client.
    DrainIdle,
    /// No byte arrived within the configured read timeout (idle or
    /// stalled mid-frame): answer with a protocol error, then close.
    TimedOut,
    /// The peer announced a frame over [`wire::MAX_FRAME_BYTES`]: refuse
    /// it politely (the stream is desynchronized afterwards).
    Oversized(usize),
    /// Truncated frame or socket error: just close.
    Broken,
}

/// Reads one frame with a polling loop instead of a single blocking read:
/// every [`READ_POLL`] tick it re-checks the drain flag (idle connections
/// notice a drain promptly, which is what lets the server *join* its
/// connection handlers) and the `read_timeout` deadline (a half-open or
/// stalled client cannot pin the thread).
fn read_frame_polled(
    stream: &mut TcpStream,
    read_timeout: Option<Duration>,
    admission: &Admission,
) -> PolledRead {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return PolledRead::Broken;
    }
    let deadline = read_timeout.map(|t| Instant::now() + t);
    let mut drain_deadline: Option<Instant> = None;
    let mut len_buf = [0u8; 4];
    // `None` while the 4-byte prefix is being read; `Some(total)` after.
    let mut expected: Option<usize> = None;
    let mut payload: Vec<u8> = Vec::new();
    let mut filled = 0usize;
    loop {
        let read = match expected {
            None => std::io::Read::read(stream, &mut len_buf[filled..]),
            Some(total) => {
                // Grow the buffer only as bytes actually arrive: a peer
                // that *announces* a near-cap frame and then trickles (or
                // never sends) it must not cost the announced allocation
                // up front.
                if filled == payload.len() {
                    let take = (total - filled).min(wire::READ_CHUNK);
                    payload.resize(filled + take, 0);
                }
                std::io::Read::read(stream, &mut payload[filled..])
            }
        };
        match read {
            Ok(0) => {
                // EOF: clean only between frames.
                return if expected.is_none() && filled == 0 {
                    PolledRead::Eof
                } else {
                    PolledRead::Broken
                };
            }
            Ok(n) => {
                filled += n;
                match expected {
                    None => {
                        if filled < 4 {
                            continue;
                        }
                        let len = u32::from_be_bytes(len_buf) as usize;
                        if len > wire::MAX_FRAME_BYTES {
                            return PolledRead::Oversized(len);
                        }
                        if len == 0 {
                            return PolledRead::Frame(Vec::new());
                        }
                        expected = Some(len);
                        filled = 0;
                    }
                    Some(total) => {
                        if filled == total {
                            return PolledRead::Frame(payload);
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Poll tick. Only an *idle* connection (no frame byte yet)
                // may be closed promptly by a drain; a frame in flight is
                // a request that still deserves its (polite) refusal —
                // but only for [`DRAIN_GRACE`], so a client stalled
                // mid-frame cannot hold the drain join hostage even when
                // `read_timeout` is disabled.
                if admission.is_draining() {
                    if expected.is_none() && filled == 0 {
                        return PolledRead::DrainIdle;
                    }
                    let cutoff =
                        *drain_deadline.get_or_insert_with(|| Instant::now() + DRAIN_GRACE);
                    if Instant::now() >= cutoff {
                        return PolledRead::Broken;
                    }
                }
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return PolledRead::TimedOut;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return PolledRead::Broken,
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Shared) {
    shared.metrics.conns_opened.inc();
    // Count the close on *every* exit path (there are many), including a
    // handler panic — the opened/closed pair is how a leak would show.
    struct ConnClosed<'a>(&'a Counter);
    impl Drop for ConnClosed<'_> {
        fn drop(&mut self) {
            self.0.inc();
        }
    }
    let _closed = ConnClosed(&shared.metrics.conns_closed);
    let mut stream = stream;
    let mut frames_used = 0u64;
    let mut bytes_used = 0u64;
    loop {
        let payload = match read_frame_polled(&mut stream, shared.read_timeout, &shared.admission)
        {
            PolledRead::Frame(p) => p,
            PolledRead::Eof | PolledRead::DrainIdle | PolledRead::Broken => return,
            PolledRead::TimedOut => {
                // The satellite contract: a stalled client gets told why
                // before the close, when the socket still accepts writes.
                let secs = shared.read_timeout.unwrap_or_default().as_secs();
                let _ = wire::write_frame(
                    &mut stream,
                    &Response::Error(format!(
                        "read timed out after {secs}s; closing connection"
                    ))
                    .encode(),
                );
                return;
            }
            PolledRead::Oversized(len) => {
                // A refused frame leaves the stream in a known state —
                // only the 4-byte prefix was consumed — so say why before
                // hanging up instead of a bare connection reset.
                let _ = wire::write_frame(
                    &mut stream,
                    &Response::Error(format!("peer announced {len}-byte frame, over cap"))
                        .encode(),
                );
                // The peer's refused payload is typically still arriving;
                // closing with unread received data sends an RST that
                // would destroy the reply in flight. Briefly shed the
                // incoming bytes (bounded, so a firehosing peer cannot
                // pin the thread) to let the error frame flush first.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                let deadline = Instant::now() + Duration::from_millis(250);
                let mut sink = [0u8; 8192];
                while Instant::now() < deadline {
                    match std::io::Read::read(&mut stream, &mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                return;
            }
        };
        // Per-connection budgets: the frame that crosses a cap is refused
        // with an error naming the exhausted limit, then the connection is
        // closed — cumulative, so one socket cannot extract unbounded work
        // or feed unbounded bytes no matter how well-formed each frame is.
        frames_used += 1;
        bytes_used += 4 + payload.len() as u64;
        if let Some(limit) = shared.max_frames_per_conn {
            if frames_used > limit {
                let _ = wire::write_frame(
                    &mut stream,
                    &Response::Error(format!(
                        "per-connection frame budget of {limit} frames exhausted; \
                         closing connection"
                    ))
                    .encode(),
                );
                return;
            }
        }
        if let Some(limit) = shared.max_bytes_per_conn {
            if bytes_used > limit {
                let _ = wire::write_frame(
                    &mut stream,
                    &Response::Error(format!(
                        "per-connection byte budget of {limit} bytes exhausted; \
                         closing connection"
                    ))
                    .encode(),
                );
                return;
            }
        }
        shared.metrics.frames.inc();
        shared.metrics.frame_bytes.record(payload.len() as u64);
        let decode_start = Instant::now();
        let decoded = Request::decode(&payload);
        shared
            .metrics
            .frame_decode_ns
            .record(decode_start.elapsed().as_nanos() as u64);
        let response = match decoded {
            Ok(Request::SolveBatch {
                modules,
                lattice,
                stream: true,
                trace_id,
            }) => {
                // Streaming mode writes its own frames (one `report` per
                // module plus `batch_done`); a pre-admission refusal falls
                // through as a single ordinary response.
                match solve_streaming(
                    &mut stream,
                    &modules,
                    lattice.as_ref(),
                    trace_id.as_deref(),
                    shared,
                ) {
                    Ok(()) => continue,
                    Err(refusal) => refusal,
                }
            }
            Ok(req) => respond(req, shared),
            Err(e) => Response::Error(e.to_string()),
        };
        let flush_start = Instant::now();
        let wrote = wire::write_frame(&mut stream, &response.encode());
        shared
            .metrics
            .reply_flush_ns
            .record(flush_start.elapsed().as_nanos() as u64);
        if wrote.is_err() {
            return;
        }
    }
}

fn respond(req: Request, shared: &Shared) -> Response {
    match req {
        Request::SolveModule {
            module,
            lattice,
            trace_id,
        } => solve(
            std::slice::from_ref(&module),
            lattice.as_ref(),
            trace_id.as_deref(),
            shared,
        ),
        // `stream: true` is intercepted in `handle_conn`; a direct call
        // (impossible from the socket path) degrades to a single frame.
        Request::SolveBatch {
            modules,
            lattice,
            trace_id,
            ..
        } => solve(&modules, lattice.as_ref(), trace_id.as_deref(), shared),
        Request::Stats => Response::Stats(shared.stats()),
        Request::Metrics { text } => {
            let snap = shared.merged_metrics();
            if text {
                Response::MetricsText(snap.to_text())
            } else {
                Response::Metrics(WireMetrics::from_snapshot(&snap))
            }
        }
        Request::Shutdown => {
            shared.begin_drain();
            Response::ShuttingDown
        }
    }
}

/// An admitted, shard-dispatched batch awaiting replies.
struct Dispatched {
    /// Batch size as submitted.
    n: usize,
    /// Jobs actually handed to a shard (a drain can race the dispatch).
    dispatched: usize,
    /// Per-module replies, in completion order.
    reply_rx: mpsc::Receiver<(usize, Result<WireReport, String>)>,
}

/// Count-based admission shared by the single-frame and streaming paths:
/// the oversized-batch permanent error, the all-or-nothing admit, and the
/// accepted/rejected accounting. Callers have already checked the drain
/// flag; `Err` carries the single refusal response to send.
fn admit_batch(n: usize, shared: &Shared) -> Result<(), Response> {
    // A batch bigger than the whole admission budget could never be
    // admitted, even idle — that is a permanent error (retrying on
    // `overloaded` would spin forever), so name the limit instead.
    if n > shared.admission.limit() {
        return Err(Response::Error(format!(
            "batch of {n} modules can never fit the admission limit of {}; \
             split it into smaller batches",
            shared.admission.limit()
        )));
    }
    if let Err(queued) = shared.admission.admit(n) {
        if shared.admission.is_draining() {
            // A drain refusal is not overload pressure: report the drain
            // and leave the `rejected` counter (documented as overload
            // rejections) alone.
            return Err(Response::ShuttingDown);
        }
        shared.admission.record_rejected();
        shared.metrics.rejected_batches.inc();
        return Err(Response::Overloaded {
            queued,
            limit: shared.admission.limit(),
        });
    }
    shared.admission.record_accepted();
    shared.metrics.admitted_jobs.add(n as u64);
    Ok(())
}

/// Whole-batch validation, admission, and shard dispatch for the
/// single-frame reply path (the streaming path pipelines parse/dispatch
/// itself but shares [`admit_batch`]). `Err` carries the single refusal
/// response (`error` / `overloaded` / `shutting_down`) to send instead of
/// any report.
fn admit_and_dispatch(
    modules: &[WireModule],
    lattice: Option<&LatticeDescriptor>,
    trace_id: Option<&str>,
    shared: &Shared,
) -> Result<Dispatched, Response> {
    if shared.admission.is_draining() {
        return Err(Response::ShuttingDown);
    }
    // Build the lattice and reconstruct jobs *before* admission so a
    // malformed request costs no queue budget.
    let lattice = shared.resolve_lattice(lattice).map_err(Response::Error)?;
    let jobs = match modules
        .iter()
        .map(WireModule::to_job)
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(jobs) => jobs,
        Err(e) => return Err(Response::Error(e.to_string())),
    };
    let n = jobs.len();
    if n == 0 {
        let (_, reply_rx) = mpsc::channel();
        return Ok(Dispatched {
            n,
            dispatched: 0,
            reply_rx,
        });
    }
    admit_batch(n, shared)?;

    let trace = trace_id.map_or(0, trace_id_hash);
    let trace_str: Option<Arc<str>> = trace_id.map(Arc::from);
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut dispatched = 0usize;
    for (index, job) in jobs.into_iter().enumerate() {
        let fingerprint = job.fingerprint();
        let shard = (fingerprint % shared.shards.len() as u64) as usize;
        let sent = {
            let guard = shared.shards[shard].tx.lock().expect("shard tx lock");
            match guard.as_ref() {
                Some(tx) => tx
                    .send(ShardJob {
                        index,
                        job,
                        fingerprint,
                        lattice: lattice.clone(),
                        enqueued: Instant::now(),
                        trace,
                        trace_id: trace_str.clone(),
                        reply: reply_tx.clone(),
                    })
                    .is_ok(),
                None => false,
            }
        };
        if sent {
            dispatched += 1;
        } else {
            // Drain raced us between `admit` and dispatch: release the
            // budget for this job ourselves.
            shared.admission.release(1);
        }
    }
    Ok(Dispatched {
        n,
        dispatched,
        reply_rx,
    })
}

fn solve(
    modules: &[WireModule],
    lattice: Option<&LatticeDescriptor>,
    trace_id: Option<&str>,
    shared: &Shared,
) -> Response {
    let d = match admit_and_dispatch(modules, lattice, trace_id, shared) {
        Ok(d) => d,
        Err(refusal) => return refusal,
    };
    let mut reports: Vec<Option<WireReport>> = (0..d.n).map(|_| None).collect();
    let mut failures: Vec<String> = Vec::new();
    for (index, report) in d.reply_rx {
        match report {
            Ok(r) => reports[index] = Some(r),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        // One or more modules crashed the solver; the shard survived and
        // the budget was released, so report the failure rather than a
        // bogus drain.
        return Response::Error(failures.join("; "));
    }
    if d.dispatched < d.n || reports.iter().any(Option::is_none) {
        return Response::ShuttingDown;
    }
    Response::Solved(reports.into_iter().map(Option::unwrap).collect())
}

/// The streaming reply path: one `report` frame per module the moment its
/// shard finishes it (completion order, index-tagged), then a terminal
/// `batch_done` with aggregate stats. A pre-admission refusal is returned
/// as `Err` for the caller to send as the single reply frame.
///
/// Unlike the single-frame path, modules are *pipelined*: admission needs
/// only the batch count, so each module is parsed and dispatched
/// individually, with completed replies flushed between dispatches — the
/// first module is solving (and its report streaming back) while later
/// modules are still being parsed. A module that fails to parse becomes a
/// per-module error frame (its admission slot released) instead of
/// failing the whole batch.
fn solve_streaming(
    stream: &mut TcpStream,
    modules: &[WireModule],
    lattice: Option<&LatticeDescriptor>,
    trace_id: Option<&str>,
    shared: &Shared,
) -> Result<(), Response> {
    let start = Instant::now();
    if shared.admission.is_draining() {
        return Err(Response::ShuttingDown);
    }
    let lattice = shared.resolve_lattice(lattice).map_err(Response::Error)?;
    let lattice_fp = lattice
        .as_ref()
        .map_or(shared.default_lattice_fp, |l| l.fingerprint());
    let n = modules.len();
    let mut delivered = 0usize;
    let mut errors: Vec<String> = Vec::new();

    if n > 0 {
        // All-or-nothing admission, by count alone — parsing happens
        // inside the pipeline below.
        admit_batch(n, shared)?;

        let trace = trace_id.map_or(0, trace_id_hash);
        let trace_str: Option<Arc<str>> = trace_id.map(Arc::from);
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut write_ok = true;
        let mut write_report = |index: usize,
                                result: Result<WireReport, String>,
                                delivered: &mut usize,
                                errors: &mut Vec<String>,
                                write_ok: &mut bool| {
            match &result {
                Ok(_) => *delivered += 1,
                Err(e) => errors.push(e.clone()),
            }
            if *write_ok {
                let frame = Response::Report {
                    index,
                    result: result.map(Box::new),
                };
                if wire::write_frame(stream, &frame.encode()).is_err() {
                    *write_ok = false;
                }
            }
        };
        for (index, module) in modules.iter().enumerate() {
            match module.to_job() {
                Ok(job) => {
                    let fingerprint = job.fingerprint();
                    let shard = (fingerprint % shared.shards.len() as u64) as usize;
                    let sent = {
                        let guard = shared.shards[shard].tx.lock().expect("shard tx lock");
                        match guard.as_ref() {
                            Some(tx) => tx
                                .send(ShardJob {
                                    index,
                                    job,
                                    fingerprint,
                                    lattice: lattice.clone(),
                                    enqueued: Instant::now(),
                                    trace,
                                    trace_id: trace_str.clone(),
                                    reply: reply_tx.clone(),
                                })
                                .is_ok(),
                            None => false,
                        }
                    };
                    if !sent {
                        // Drain raced us between `admit` and dispatch:
                        // release the budget and report it per module.
                        shared.admission.release(1);
                        write_report(
                            index,
                            Err(format!(
                                "module {:?} not dispatched: server is draining",
                                module.name
                            )),
                            &mut delivered,
                            &mut errors,
                            &mut write_ok,
                        );
                    }
                }
                Err(e) => {
                    // A malformed module costs its slot only for the time
                    // it took to fail parsing.
                    shared.admission.release(1);
                    write_report(
                        index,
                        Err(e.to_string()),
                        &mut delivered,
                        &mut errors,
                        &mut write_ok,
                    );
                }
            }
            // Flush whatever already finished so the first report is on
            // the wire while later modules still parse and dispatch.
            while let Ok((index, result)) = reply_rx.try_recv() {
                write_report(index, result, &mut delivered, &mut errors, &mut write_ok);
            }
        }
        drop(reply_tx);
        for (index, result) in reply_rx {
            write_report(index, result, &mut delivered, &mut errors, &mut write_ok);
        }
        if !write_ok {
            // Client went away mid-stream; replies were still drained so
            // every shard send completed and no slot leaked.
            return Ok(());
        }
    }
    let done = Response::BatchDone(WireBatchDone {
        modules: n,
        delivered,
        errors,
        wall_ns: start.elapsed().as_nanos() as u64,
        lattice_fp,
    });
    let _ = wire::write_frame(stream, &done.encode());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientError};
    use retypd_core::Program;

    fn job(name: &str) -> ModuleJob {
        ModuleJob {
            name: name.into(),
            program: Program::new(),
        }
    }

    #[test]
    fn solver_panic_is_isolated_to_an_error_response() {
        // Inject a solver that panics on one module name: the real
        // catch_unwind / slot-release / driver-rebuild path runs over a
        // real socket.
        let hook: SolveHook = Arc::new(|driver, job, lattice| {
            assert!(!job.name.contains("boom"), "injected solver bug");
            session_solve(driver, job, lattice)
        });
        let handle = start_with_hook(ServeConfig::default(), hook).expect("bind");
        let mut client = Client::connect(handle.addr()).expect("connect");
        // The panicking module answers with an error naming it, not a
        // dropped connection or a bogus shutting_down.
        match client.solve_batch(&[job("ok_a"), job("boom"), job("ok_b")]) {
            Err(ClientError::Server(m)) => {
                assert!(m.contains("boom") && m.contains("panicked"), "{m}");
            }
            other => panic!("expected a server error, got {other:?}"),
        }
        // The admission budget is fully released (no leaked slots)...
        let stats = client.stats().expect("stats");
        assert_eq!(stats.queued, 0, "panic leaked an admission slot");
        // ...and the shard that panicked keeps serving: routing is by
        // program fingerprint and every test job shares the same (empty)
        // program, so this lands on exactly the shard that just panicked.
        let report = client.solve_module(&job("after")).expect("shard still serves");
        assert_eq!(report.name, "after");
        handle.shutdown();
    }

    #[test]
    fn retry_budget_is_bounded_against_a_saturated_server() {
        use crate::client::RetryPolicy;
        use retypd_core::sync::mpsc;
        use std::time::{Duration, Instant};

        // One admission slot, and a hook that parks the job occupying it
        // until released — the server is *saturated*, not slow, for as
        // long as the test wants.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let hook: SolveHook = Arc::new(move |driver, job, lattice| {
            if job.name.starts_with("blocker") {
                let _ = release_rx.lock().expect("release channel").recv();
            }
            session_solve(driver, job, lattice)
        });
        let config = ServeConfig {
            queue_depth: 1,
            shards: 1,
            ..ServeConfig::default()
        };
        let handle = start_with_hook(config, hook).expect("bind");
        let addr = handle.addr();

        let blocker = retypd_core::sync::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect blocker");
            c.solve_module(&job("blocker")).expect("blocker eventually solves")
        });
        // Wait until the blocker actually holds the only slot.
        let mut client = Client::connect(addr).expect("connect");
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.stats().expect("stats").queued < 1 {
            assert!(Instant::now() < deadline, "blocker never admitted");
            retypd_core::sync::thread::sleep(Duration::from_millis(5));
        }

        // A bounded budget against permanent saturation must terminate
        // with `Overloaded` — never spin forever. The whole schedule is
        // at most (budget + 1) attempts and budget * cap of sleep.
        let tight = RetryPolicy {
            budget: 3,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            seed: 42,
        };
        let t0 = Instant::now();
        match client.solve_module_retry(&job("starved"), None, &tight) {
            Err(ClientError::Overloaded { queued, limit }) => {
                assert_eq!((queued, limit), (1, 1));
            }
            other => panic!("expected overloaded after budget exhaustion, got {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "retry schedule overran its bound: {:?}",
            t0.elapsed()
        );

        // With the saturation lifting mid-schedule, a retrying client
        // rides the backoff to success instead of surfacing the refusal.
        let releaser = retypd_core::sync::thread::spawn(move || {
            retypd_core::sync::thread::sleep(Duration::from_millis(100));
            release_tx.send(()).expect("release the blocker");
        });
        let patient = RetryPolicy::new(400).with_seed(7);
        let report = client
            .solve_module_retry(&job("waited"), None, &patient)
            .expect("retry succeeds once the slot frees");
        assert_eq!(report.name, "waited");
        releaser.join().expect("releaser");
        blocker.join().expect("blocker thread");
        handle.shutdown();
    }
}
