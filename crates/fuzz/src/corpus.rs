//! The committed malformed-input regression corpus.
//!
//! Files live in `crates/fuzz/corpus/` and are replayed by
//! `tests/corpus_replay.rs` on every `cargo test` — over a live socket, at
//! one shard and several, asserting bit-identical reply bytes.
//!
//! Conventions:
//!
//! * A file named `raw_*` holds complete **wire bytes**, length prefix
//!   included — these entries attack the framing itself (lying, over-cap,
//!   truncated prefixes).
//! * A file named `gwstats_*` holds a malformed backend `stats` **reply**
//!   as seen by the gateway's health probe: it replays through
//!   `retypd_gateway::classify_stats_reply` (which must reject it without
//!   panicking), never through a request socket — such bytes can look
//!   exactly like a valid `stats` *request*.
//! * Any other file holds a frame **payload**; the replay harness frames
//!   it normally.
//! * Every request entry must fail **before admission** (framing, JSON,
//!   envelope, lattice, or constraint-text validation): pre-admission
//!   errors never reach a shard, which is what makes the reply bytes
//!   independent of the shard count. An entry that decodes into
//!   dispatchable work (or a `stats`/`shutdown` request) does not belong
//!   here.
//! * Entries replay in filename order; names describe the attack.

use std::fs;
use std::io;
use std::path::PathBuf;

/// One corpus entry.
pub struct CorpusEntry {
    /// File name (replay order and failure messages key off it).
    pub name: String,
    /// The committed bytes.
    pub bytes: Vec<u8>,
    /// True when `bytes` are complete wire bytes (`raw_*` files).
    pub raw: bool,
}

/// The corpus directory (committed alongside the crate).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Loads every corpus entry, sorted by file name.
///
/// # Errors
///
/// Propagates filesystem errors; a missing directory is an error too —
/// the corpus is a committed artifact, not an optional cache.
pub fn load() -> io::Result<Vec<CorpusEntry>> {
    let mut entries = Vec::new();
    for entry in fs::read_dir(corpus_dir())? {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let bytes = fs::read(entry.path())?;
        let raw = name.starts_with("raw_");
        entries.push(CorpusEntry { name, bytes, raw });
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(entries)
}

/// Saves a minimized failing input as a new corpus entry, picking the
/// first free `<prefix>_NNN.bin` name. Returns the chosen file name.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(prefix: &str, bytes: &[u8], raw: bool) -> io::Result<String> {
    let dir = corpus_dir();
    fs::create_dir_all(&dir)?;
    let marker = if raw { "raw_" } else { "" };
    for n in 0..10_000u32 {
        let name = format!("{marker}{prefix}_{n:03}.bin");
        let path = dir.join(&name);
        if !path.exists() {
            fs::write(path, bytes)?;
            return Ok(name);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::Other,
        "no free corpus file name",
    ))
}
