//! The gateway server: accepts the same wire protocol `serve` speaks,
//! routes every module to a backend by consistent hash, supervises the
//! backends, and aggregates their control-plane answers.
//!
//! ```text
//!                         ┌─ health checker ─ probe / evict / restart / re-add
//!  client ──▶ gateway ────┤
//!             (ring)      ├─▶ backend slot 0 (serve, own persist dir)
//!   solve_module ─ route ─┼─▶ backend slot 1 (serve, own persist dir)
//!   solve_batch ── split ─┴─▶ backend slot 2 (serve, own persist dir)
//!   stats/metrics ─ fan-in: sum / merge across healthy backends
//! ```
//!
//! * **Transparent protocol.** A client (or `loadgen`) pointed at the
//!   gateway sees a bit-identical protocol: `solve_module` forwards,
//!   `solve_batch` is decomposed into per-module forwards and
//!   reassembled in submission order (streaming batches emit `report`
//!   frames as modules finish), `stats` sums the fleet, `metrics`
//!   merges every backend registry with the gateway's own.
//! * **Warm affinity.** Routing is a pure function of
//!   `(lattice_fp, module_fp)` and the healthy slot set — a
//!   re-submitted module lands on the backend whose per-process
//!   persistent store already holds it, across gateway *and* backend
//!   restarts.
//! * **Supervision.** A health thread probes each backend with the
//!   ordinary `stats` request, evicts on failure (ring rebuild — the
//!   live re-shard), restarts spawned children with their original
//!   persist dir, and re-adds on recovery (ring rebuild back to the
//!   original map).
//! * **Hedging.** A solve stuck past [`GatewayConfig::hedge_after`] is
//!   duplicated to the next distinct slot on the ring; first winning
//!   reply is forwarded, the loser dropped. Determinism makes this
//!   safe: both backends compute byte-identical reports, so the race
//!   only picks *which copy* of the answer arrives.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use retypd_core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use retypd_core::sync::thread::JoinHandle;
use retypd_core::sync::{Arc, Mutex};
use retypd_core::Lattice;
use retypd_serve::wire::{
    self, Request, Response, WireBatchDone, WireMetrics, WireReport, WireStats,
};
use retypd_serve::RetryPolicy;
use retypd_telemetry::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};

use crate::backend::{Backend, BackendSpec};
use crate::forward::{exchange, hedged_exchange, Winner};
use crate::health::classify_stats_reply;
use crate::ring::{route_key, Ring};

/// Gateway tuning. `Default` suits tests and small fleets; the binary
/// maps flags onto it.
#[derive(Clone, Debug)]
pub struct GatewayConfig {
    /// Front-end listen address (`0` port binds ephemerally).
    pub addr: String,
    /// Pause between health sweeps.
    pub health_interval: Duration,
    /// Per-probe budget (connect + stats round trip).
    pub probe_timeout: Duration,
    /// Latency threshold after which a solve is hedged to a second
    /// backend; `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Re-route/overload retry schedule (the same machinery client-side
    /// retries use; the gateway reuses its jittered curve).
    pub retry: RetryPolicy,
    /// End-to-end budget for one forwarded exchange.
    pub forward_timeout: Duration,
    /// How long a spawned backend may take to print its readiness
    /// banner (covers persistent-store replay on warm restarts).
    pub spawn_timeout: Duration,
    /// Echo `RETYPD_GATEWAY_*` lines on stdout (the binary turns this
    /// on so operators and CI can find backend pids; tests keep it off).
    pub echo: bool,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            health_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_secs(2),
            hedge_after: None,
            retry: RetryPolicy::new(8),
            forward_timeout: Duration::from_secs(60),
            spawn_timeout: Duration::from_secs(30),
            echo: false,
        }
    }
}

/// Gateway-side instruments, exposed (merged with every backend's
/// registry) through the ordinary v2 `metrics` request.
struct GatewayMetrics {
    registry: Registry,
    requests: Arc<Counter>,
    hedge_fired: Arc<Counter>,
    hedge_won: Arc<Counter>,
    reroutes: Arc<Counter>,
    evicted: Arc<Counter>,
    readded: Arc<Counter>,
    restarts: Arc<Counter>,
    no_backend: Arc<Counter>,
    forward_ns: Arc<Histogram>,
    healthy: Arc<Gauge>,
    /// Per-slot routed-request counters, indexed by slot.
    routed: Vec<Arc<Counter>>,
}

impl GatewayMetrics {
    fn new(slots: usize) -> GatewayMetrics {
        let registry = Registry::new();
        GatewayMetrics {
            requests: registry.counter("gateway.requests"),
            hedge_fired: registry.counter("gateway.hedge_fired"),
            hedge_won: registry.counter("gateway.hedge_won"),
            reroutes: registry.counter("gateway.reroutes"),
            evicted: registry.counter("gateway.evicted"),
            readded: registry.counter("gateway.readded"),
            restarts: registry.counter("gateway.restarts"),
            no_backend: registry.counter("gateway.no_backend_errors"),
            forward_ns: registry.histogram("gateway.forward_ns"),
            healthy: registry.gauge("gateway.backends_healthy"),
            routed: (0..slots)
                .map(|s| registry.counter(&format!("gateway.backend_{s}.routed")))
                .collect(),
            registry,
        }
    }
}

struct Shared {
    backends: Vec<Backend>,
    /// The current ring — a pure function of the healthy slot set,
    /// swapped atomically on every membership change. Forwarders
    /// snapshot it per attempt, so a re-shard mid-retry is picked up.
    ring: Mutex<Arc<Ring>>,
    /// Bumped on every ring rebuild (observable mid-run re-sharding).
    epoch: AtomicU64,
    draining: AtomicBool,
    local_addr: SocketAddr,
    active_conns: AtomicUsize,
    default_lattice_fp: u64,
    metrics: GatewayMetrics,
    config: GatewayConfig,
}

impl Shared {
    fn ring_snapshot(&self) -> Arc<Ring> {
        Arc::clone(&self.ring.lock().expect("ring lock"))
    }

    /// Recomputes the ring from current backend health and swaps it in.
    /// This *is* the live re-shard: deterministic (the ring is a pure
    /// function of the healthy set) and atomic (in-flight forwards
    /// finish on their snapshot; every retry re-reads).
    fn rebuild_ring(&self) {
        let healthy: Vec<usize> = self
            .backends
            .iter()
            .filter(|b| b.healthy())
            .map(|b| b.slot)
            .collect();
        self.metrics.healthy.set(healthy.len() as i64);
        let ring = Arc::new(Ring::build(&healthy));
        *self.ring.lock().expect("ring lock") = ring;
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a slot unhealthy because a forward or probe failed, and
    /// re-shards if that is a transition. The health thread will restart
    /// it (spawned backends) and re-add it once it answers probes again.
    fn mark_unhealthy(&self, slot: usize, why: &str) {
        if self.backends[slot].set_healthy(false) {
            self.metrics.evicted.inc();
            self.log(&format!("slot {slot} evicted: {why}"));
            self.rebuild_ring();
        }
    }

    fn log(&self, msg: &str) {
        if self.config.echo {
            eprintln!("[gateway] {msg}");
        }
    }

    /// One probe: connect, `stats` round trip, classify. Pure verdict —
    /// health bookkeeping happens at the caller.
    fn probe(&self, slot: usize) -> Result<crate::health::ProbeReport, String> {
        let b = &self.backends[slot];
        let mut conn = b.connect(self.config.probe_timeout)?;
        let reply = exchange(
            &mut conn,
            &Request::Stats.encode(),
            self.config.probe_timeout,
        )?;
        let report = classify_stats_reply(&reply)?;
        b.note_probe(&report);
        b.pool(conn);
        Ok(report)
    }

    /// Forwards one already-encoded solve request for `key`, with
    /// hedging and eviction-driven re-routing. Returns the winning
    /// reply payload; encodes an error reply if every attempt failed.
    fn forward_solve(&self, key: u64, payload: &[u8]) -> Vec<u8> {
        let started = Instant::now();
        let mut last_err = String::new();
        for attempt in 0..=self.config.retry.budget {
            if attempt > 0 {
                self.metrics.reroutes.inc();
                retypd_core::sync::thread::sleep(self.config.retry.backoff(attempt - 1));
            }
            let ring = self.ring_snapshot();
            let Some(primary) = ring.route(key) else {
                self.metrics.no_backend.inc();
                last_err = "no healthy backends".into();
                continue;
            };
            let backend = &self.backends[primary];
            let mut conn = match backend.connect(self.config.probe_timeout) {
                Ok(c) => c,
                Err(e) => {
                    self.mark_unhealthy(primary, &e);
                    last_err = e;
                    continue;
                }
            };
            let hedge_slot = self
                .config
                .hedge_after
                .and_then(|_| ring.hedge_target(key, primary));
            let open_hedge = || {
                hedge_slot.and_then(|s| self.backends[s].connect(self.config.probe_timeout).ok())
            };
            // Hedge only when a distinct second backend exists.
            let hedge_after = hedge_slot.and(self.config.hedge_after);
            match hedged_exchange(
                payload,
                &mut conn,
                hedge_after,
                open_hedge,
                self.config.forward_timeout,
            ) {
                Ok(ex) => {
                    if ex.hedged {
                        self.metrics.hedge_fired.inc();
                    }
                    let winner_slot = match ex.winner {
                        Winner::Primary => {
                            backend.pool(conn);
                            primary
                        }
                        Winner::Hedge(stream) => {
                            self.metrics.hedge_won.inc();
                            let slot = hedge_slot.expect("hedge won implies target");
                            if let Some(s) = stream {
                                self.backends[slot].pool(s);
                            }
                            slot
                        }
                    };
                    self.metrics.routed[winner_slot].inc();
                    self.metrics
                        .forward_ns
                        .record(started.elapsed().as_nanos() as u64);
                    return ex.payload;
                }
                Err(e) => {
                    self.mark_unhealthy(primary, &e);
                    last_err = e;
                }
            }
        }
        Response::Error(format!(
            "gateway: forwarding failed after {} attempts: {last_err}",
            self.config.retry.budget + 1
        ))
        .encode()
    }

    /// Solves one module of a decomposed batch: route, forward, decode.
    /// `overloaded` backend replies are retried here on the jittered
    /// backoff curve — batch clients cannot retry per module, so the
    /// gateway absorbs admission pushback for them.
    fn solve_batch_module(
        &self,
        module: &wire::WireModule,
        lattice: &Option<retypd_core::LatticeDescriptor>,
        trace_id: &Option<String>,
    ) -> Result<WireReport, String> {
        let module_fp = module.to_job().map_err(|e| e.to_string())?.fingerprint();
        let lattice_fp = lattice
            .as_ref()
            .map_or(self.default_lattice_fp, |d| d.fingerprint());
        let key = route_key(lattice_fp, module_fp);
        let payload = Request::SolveModule {
            module: module.clone(),
            lattice: lattice.clone(),
            trace_id: trace_id.clone(),
        }
        .encode();
        for attempt in 0..=self.config.retry.budget {
            let reply = self.forward_solve(key, &payload);
            match Response::decode(&reply) {
                Ok(Response::Solved(mut reports)) if !reports.is_empty() => {
                    return Ok(reports.swap_remove(0));
                }
                Ok(Response::Overloaded { .. }) if attempt < self.config.retry.budget => {
                    retypd_core::sync::thread::sleep(self.config.retry.backoff(attempt));
                }
                Ok(Response::Overloaded { queued, limit }) => {
                    return Err(format!("backend overloaded ({queued}/{limit})"));
                }
                Ok(Response::Error(e)) => return Err(e),
                Ok(Response::ShuttingDown) => return Err("backend shutting down".into()),
                Ok(other) => return Err(format!("unexpected backend reply: {other:?}")),
                Err(e) => return Err(format!("undecodable backend reply: {e}")),
            }
        }
        Err("backend overloaded past the retry budget".into())
    }
}

/// A running gateway. Dropping the handle does not stop it; call
/// [`GatewayHandle::shutdown`] (or send the wire `shutdown` request).
pub struct GatewayHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl GatewayHandle {
    /// The bound front-end address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Current ring epoch — bumps on every membership change, so tests
    /// can assert that a mid-run event actually re-sharded.
    pub fn ring_epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Relaxed)
    }

    /// Slots currently routed to.
    pub fn healthy_slots(&self) -> Vec<usize> {
        self.shared
            .backends
            .iter()
            .filter(|b| b.healthy())
            .map(|b| b.slot)
            .collect()
    }

    /// A backend's last known pid (0 when unknown).
    pub fn backend_pid(&self, slot: usize) -> u64 {
        self.shared.backends[slot].pid()
    }

    /// Kills a spawned backend's process outright (chaos hook for
    /// failure-path tests; the supervisor notices, re-shards, restarts).
    pub fn kill_backend(&self, slot: usize) {
        // `kill` already drops the healthy bit, so re-shard explicitly
        // rather than through the transition-edge path.
        self.shared.backends[slot].kill();
        self.shared.metrics.evicted.inc();
        self.shared.log(&format!("slot {slot} killed by operator"));
        self.shared.rebuild_ring();
    }

    /// The gateway's own metrics snapshot (no backend fan-in).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.registry.snapshot()
    }

    /// Drains: stops accepting, waits for in-flight connections, shuts
    /// down spawned backends gracefully (wire `shutdown`, then kill on
    /// timeout).
    pub fn shutdown(mut self) {
        begin_drain(&self.shared);
        self.join_threads();
        drain_backends(&self.shared);
    }

    /// Blocks until the gateway drains (a wire `shutdown`, or
    /// [`GatewayHandle::shutdown`] from another thread).
    pub fn join(mut self) {
        self.join_threads();
        drain_backends(&self.shared);
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
    }
}

fn begin_drain(shared: &Shared) {
    // AcqRel, not SeqCst: the RMW's atomicity alone elects the single
    // drainer, and everything the winner tears down synchronizes through
    // channels and joins — no second location needs a total order.
    if shared.draining.swap(true, Ordering::AcqRel) {
        return;
    }
    // Unblock the acceptor with a no-op connection.
    let _ = TcpStream::connect(shared.local_addr);
}

/// Gracefully stops every spawned backend: wire `shutdown` first (lets
/// the child flush its persistent store), hard kill as a fallback.
fn drain_backends(shared: &Shared) {
    for b in &shared.backends {
        if !b.restartable() {
            continue;
        }
        if let Ok(mut conn) = b.connect(Duration::from_secs(1)) {
            let _ = exchange(&mut conn, &Request::Shutdown.encode(), Duration::from_secs(5));
        }
        // `kill` reaps the child; if the graceful path worked the wait
        // returns immediately, otherwise this is the hard stop.
        let deadline = Instant::now() + Duration::from_secs(10);
        while !b.child_exited() && Instant::now() < deadline {
            retypd_core::sync::thread::sleep(Duration::from_millis(20));
        }
        b.kill();
    }
}

/// Starts a gateway over `specs` (slot = index). Spawned backends are
/// launched and *all* backends probed once; at least one must be
/// healthy or startup fails (a gateway with an empty ring would refuse
/// every request — better to fail loudly at the top).
pub fn start(config: GatewayConfig, specs: Vec<BackendSpec>) -> Result<GatewayHandle, String> {
    if specs.is_empty() {
        return Err("gateway needs at least one backend".into());
    }
    let backends: Vec<Backend> = specs
        .into_iter()
        .enumerate()
        .map(|(slot, spec)| Backend::new(slot, spec))
        .collect();
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| format!("bind {}: {e}", config.addr))?;
    let local_addr = listener.local_addr().map_err(|e| e.to_string())?;

    let metrics = GatewayMetrics::new(backends.len());
    let shared = Arc::new(Shared {
        backends,
        ring: Mutex::new(Arc::new(Ring::build(&[]))),
        epoch: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        local_addr,
        active_conns: AtomicUsize::new(0),
        default_lattice_fp: Lattice::c_types().fingerprint(),
        metrics,
        config,
    });

    // Bring the fleet up: launch children, then probe each backend (with
    // a short grace loop — an external server may still be binding).
    for b in &shared.backends {
        match b.launch(shared.config.spawn_timeout) {
            Ok(addr) => {
                if shared.config.echo {
                    println!(
                        "RETYPD_GATEWAY_BACKEND slot={} addr={addr} pid={}",
                        b.slot,
                        b.pid()
                    );
                }
            }
            Err(e) => shared.log(&format!("slot {} failed to launch: {e}", b.slot)),
        }
    }
    for b in &shared.backends {
        let deadline = Instant::now() + shared.config.probe_timeout;
        loop {
            match shared.probe(b.slot) {
                Ok(_) => {
                    b.set_healthy(true);
                    break;
                }
                Err(e) if Instant::now() >= deadline => {
                    shared.log(&format!("slot {} unhealthy at startup: {e}", b.slot));
                    break;
                }
                Err(_) => retypd_core::sync::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
    shared.rebuild_ring();
    if shared.ring_snapshot().is_empty() {
        drain_backends(&shared);
        return Err("no backend passed its startup probe".into());
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        retypd_core::sync::thread::Builder::new()
            .name("gateway-acceptor".into())
            .spawn(move || acceptor_main(listener, shared))
            .map_err(|e| e.to_string())?
    };
    let health = {
        let shared = Arc::clone(&shared);
        retypd_core::sync::thread::Builder::new()
            .name("gateway-health".into())
            .spawn(move || health_main(shared))
            .map_err(|e| e.to_string())?
    };
    Ok(GatewayHandle {
        shared,
        acceptor: Some(acceptor),
        health: Some(health),
    })
}

fn acceptor_main(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::Relaxed) {
            break;
        }
        let Ok(conn) = conn else { continue };
        // Replies are written prefix-then-payload; without nodelay the
        // second write sits out a Nagle/delayed-ACK round (~40ms).
        conn.set_nodelay(true).ok();
        shared.active_conns.fetch_add(1, Ordering::Relaxed);
        let shared2 = Arc::clone(&shared);
        let spawned = retypd_core::sync::thread::Builder::new()
            .name("gateway-conn".into())
            .spawn(move || {
                handle_conn(conn, &shared2);
                shared2.active_conns.fetch_sub(1, Ordering::Release);
            });
        if spawned.is_err() {
            shared.active_conns.fetch_sub(1, Ordering::Release);
        }
    }
    // Drain: give in-flight connections a bounded window to finish.
    let deadline = Instant::now() + Duration::from_secs(30);
    while shared.active_conns.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        retypd_core::sync::thread::sleep(Duration::from_millis(10));
    }
}

/// The supervisor: probe every slot each sweep, evict/restart/re-add.
fn health_main(shared: Arc<Shared>) {
    while !shared.draining.load(Ordering::Relaxed) {
        retypd_core::sync::thread::sleep(shared.config.health_interval);
        if shared.draining.load(Ordering::Relaxed) {
            break;
        }
        for b in &shared.backends {
            if shared.draining.load(Ordering::Relaxed) {
                return;
            }
            // A crashed child is a fact, not a probe verdict.
            if b.child_exited() {
                shared.mark_unhealthy(b.slot, "child process exited");
            }
            let restart = match shared.probe(b.slot) {
                Ok(_) => {
                    if !b.set_healthy(true) {
                        shared.metrics.readded.inc();
                        shared.log(&format!("slot {} re-added", b.slot));
                        shared.rebuild_ring();
                    }
                    false
                }
                Err(e) => {
                    shared.mark_unhealthy(b.slot, &e);
                    b.restartable()
                }
            };
            if restart {
                // Respawn with the original spec — same slot, same
                // persist dir — so the replacement warm-starts and
                // reclaims its exact keyspace. Re-add happens on the
                // next sweep's successful probe.
                b.kill();
                match b.launch(shared.config.spawn_timeout) {
                    Ok(addr) => {
                        shared.metrics.restarts.inc();
                        shared.log(&format!("slot {} restarted at {addr}", b.slot));
                        if shared.config.echo {
                            println!(
                                "RETYPD_GATEWAY_BACKEND slot={} addr={addr} pid={}",
                                b.slot,
                                b.pid()
                            );
                        }
                    }
                    Err(e) => shared.log(&format!("slot {} restart failed: {e}", b.slot)),
                }
            }
        }
    }
}

fn handle_conn(mut conn: TcpStream, shared: &Shared) {
    loop {
        let payload = match wire::read_frame(&mut conn) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(_) => return,
        };
        shared.metrics.requests.inc();
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                let _ = write_reply(&mut conn, &Response::Error(e.to_string()).encode());
                continue;
            }
        };
        if shared.draining.load(Ordering::Relaxed) {
            let _ = write_reply(&mut conn, &Response::ShuttingDown.encode());
            continue;
        }
        match request {
            Request::SolveModule {
                module, lattice, ..
            } => {
                // Forward the client's own frame verbatim — the gateway
                // only needs the routing key from it.
                let reply = match module.to_job() {
                    Ok(job) => {
                        let lattice_fp = lattice
                            .as_ref()
                            .map_or(shared.default_lattice_fp, |d| d.fingerprint());
                        shared.forward_solve(route_key(lattice_fp, job.fingerprint()), &payload)
                    }
                    Err(e) => Response::Error(e.to_string()).encode(),
                };
                if write_reply(&mut conn, &reply).is_err() {
                    return;
                }
            }
            Request::SolveBatch {
                modules,
                lattice,
                stream,
                trace_id,
            } => {
                if handle_batch(&mut conn, shared, modules, lattice, stream, trace_id).is_err() {
                    return;
                }
            }
            Request::Stats => {
                let reply = Response::Stats(aggregate_stats(shared)).encode();
                if write_reply(&mut conn, &reply).is_err() {
                    return;
                }
            }
            Request::Metrics { text } => {
                let merged = aggregate_metrics(shared);
                let reply = if text {
                    Response::MetricsText(metrics_to_text(&merged))
                } else {
                    Response::Metrics(merged)
                };
                if write_reply(&mut conn, &reply.encode()).is_err() {
                    return;
                }
            }
            Request::Shutdown => {
                let _ = write_reply(&mut conn, &Response::ShuttingDown.encode());
                begin_drain(shared);
                return;
            }
        }
    }
}

fn write_reply(conn: &mut TcpStream, payload: &[u8]) -> Result<(), String> {
    use std::io::Write;
    wire::write_frame(conn, payload).map_err(|e| e.to_string())?;
    conn.flush().map_err(|e| e.to_string())
}

/// Decomposes a batch into per-module forwards (a small worker pool —
/// modules route to *different* backends, so the fan-out is the whole
/// point), reassembles the reply in submission order. Streaming batches
/// emit `report` frames as modules finish, exactly like `serve`.
fn handle_batch(
    conn: &mut TcpStream,
    shared: &Shared,
    modules: Vec<wire::WireModule>,
    lattice: Option<retypd_core::LatticeDescriptor>,
    stream: bool,
    trace_id: Option<String>,
) -> Result<(), String> {
    let started = Instant::now();
    let total = modules.len();
    let lattice_fp = lattice
        .as_ref()
        .map_or(shared.default_lattice_fp, |d| d.fingerprint());
    if total == 0 {
        let reply = if stream {
            Response::BatchDone(WireBatchDone {
                modules: 0,
                delivered: 0,
                errors: vec![],
                wall_ns: 0,
                lattice_fp,
            })
        } else {
            Response::Solved(vec![])
        };
        return write_reply(conn, &reply.encode());
    }

    let healthy = shared.backends.iter().filter(|b| b.healthy()).count().max(1);
    let workers = total.min((2 * healthy).max(2));
    let next = AtomicUsize::new(0);
    let (tx, rx) = retypd_core::sync::mpsc::channel::<(usize, Result<WireReport, String>)>();

    // retypd-lint: allow(no-raw-thread) scoped spawns are not modeled
    std::thread::scope(|scope| -> Result<(), String> {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let modules = &modules;
            let lattice = &lattice;
            let trace_id = &trace_id;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= modules.len() {
                    break;
                }
                let result = shared.solve_batch_module(&modules[i], lattice, trace_id);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        if stream {
            let mut delivered = 0usize;
            let mut errors: Vec<String> = Vec::new();
            for (index, result) in rx {
                match result {
                    Ok(report) => {
                        delivered += 1;
                        write_reply(
                            conn,
                            &Response::Report {
                                index,
                                result: Ok(Box::new(report)),
                            }
                            .encode(),
                        )?;
                    }
                    Err(e) => {
                        errors.push(format!("module {index}: {e}"));
                        write_reply(
                            conn,
                            &Response::Report {
                                index,
                                result: Err(e),
                            }
                            .encode(),
                        )?;
                    }
                }
            }
            write_reply(
                conn,
                &Response::BatchDone(WireBatchDone {
                    modules: total,
                    delivered,
                    errors,
                    wall_ns: started.elapsed().as_nanos() as u64,
                    lattice_fp,
                })
                .encode(),
            )
        } else {
            let mut slots: Vec<Option<Result<WireReport, String>>> = (0..total).map(|_| None).collect();
            for (index, result) in rx {
                slots[index] = Some(result);
            }
            let mut reports = Vec::with_capacity(total);
            let mut errors: Vec<String> = Vec::new();
            for (index, slot) in slots.into_iter().enumerate() {
                match slot {
                    Some(Ok(report)) => reports.push(report),
                    Some(Err(e)) => errors.push(format!("module {index}: {e}")),
                    None => errors.push(format!("module {index}: lost by the gateway")),
                }
            }
            let reply = if errors.is_empty() {
                Response::Solved(reports)
            } else {
                Response::Error(errors.join("; "))
            };
            write_reply(conn, &reply.encode())
        }
    })
}

/// Fleet-wide stats: admission counters sum, shard lists concatenate
/// (renumbered into one flat fleet-wide sequence), pid/start time are
/// the gateway's own. A backend failing its stats round trip here is
/// evicted, exactly as if a probe had failed.
fn aggregate_stats(shared: &Shared) -> WireStats {
    let mut agg = WireStats {
        accepted: 0,
        rejected: 0,
        queued: 0,
        queue_limit: 0,
        pid: std::process::id() as u64,
        start_ns: 0,
        shards: vec![],
    };
    for b in &shared.backends {
        if !b.healthy() {
            continue;
        }
        let reply = b
            .connect(shared.config.probe_timeout)
            .and_then(|mut conn| {
                let r = exchange(
                    &mut conn,
                    &Request::Stats.encode(),
                    shared.config.probe_timeout,
                )?;
                b.pool(conn);
                Ok(r)
            })
            .and_then(|payload| classify_stats_reply(&payload));
        match reply {
            Ok(report) => {
                let s = report.stats;
                agg.accepted += s.accepted;
                agg.rejected += s.rejected;
                agg.queued += s.queued;
                agg.queue_limit += s.queue_limit;
                for mut shard in s.shards {
                    shard.shard = agg.shards.len();
                    agg.shards.push(shard);
                }
            }
            Err(e) => shared.mark_unhealthy(b.slot, &e),
        }
    }
    agg
}

/// The gateway's registry merged with every healthy backend's: the v2
/// `metrics` request answers for the whole fleet through one socket.
fn aggregate_metrics(shared: &Shared) -> WireMetrics {
    let mut merged = WireMetrics::from_snapshot(&shared.metrics.registry.snapshot());
    for b in &shared.backends {
        if !b.healthy() {
            continue;
        }
        let reply = b.connect(shared.config.probe_timeout).and_then(|mut conn| {
            let r = exchange(
                &mut conn,
                &Request::Metrics { text: false }.encode(),
                shared.config.probe_timeout,
            )?;
            b.pool(conn);
            Ok(r)
        });
        if let Ok(payload) = reply {
            if let Ok(Response::Metrics(wm)) = Response::decode(&payload) {
                merged.merge(&wm);
            }
        }
    }
    merged
}

/// Renders a merged wire snapshot as exposition text by rebuilding a
/// telemetry snapshot from the wire buckets — same format the backends
/// themselves produce.
fn metrics_to_text(wm: &WireMetrics) -> String {
    let mut snap = MetricsSnapshot {
        counters: wm.counters.clone(),
        gauges: wm.gauges.clone(),
        histograms: vec![],
    };
    for h in &wm.histograms {
        snap.histograms.push((
            h.name.clone(),
            retypd_telemetry::HistogramSnapshot::from_buckets(&h.buckets, h.sum),
        ));
    }
    snap.to_text()
}
