//! Criterion microbenchmarks for the core saturation/simplification engine.

use criterion::{criterion_group, criterion_main, Criterion};
use retypd_bench::{chain_constraints, figure2_constraints};
use retypd_core::graph::ConstraintGraph;
use retypd_core::saturation::saturate;
use retypd_core::{Lattice, SchemeBuilder};

fn bench(c: &mut Criterion) {
    c.bench_function("saturate_figure2", |b| {
        let cs = figure2_constraints();
        b.iter(|| {
            let mut g = ConstraintGraph::build(&cs);
            saturate(&mut g)
        })
    });
    c.bench_function("saturate_chain_200", |b| {
        let cs = chain_constraints(200);
        b.iter(|| {
            let mut g = ConstraintGraph::build(&cs);
            saturate(&mut g)
        })
    });
    c.bench_function("simplify_figure2_scheme", |b| {
        let cs = figure2_constraints();
        let lattice = Lattice::c_types();
        let builder = SchemeBuilder::new(&lattice);
        b.iter(|| builder.infer("f", &cs))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
