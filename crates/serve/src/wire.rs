//! The length-prefixed JSON wire protocol.
//!
//! ## Framing
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON. Frames are capped at
//! [`MAX_FRAME_BYTES`] so a corrupt peer cannot induce an unbounded
//! allocation.
//!
//! ## Messages (protocol v2)
//!
//! Requests (`kind` discriminator): `solve_module`, `solve_batch`,
//! `stats`, `shutdown`. Responses: `solved`, `report`, `batch_done`,
//! `stats`, `overloaded`, `shutting_down`, `error`. Programs travel as
//! their canonical constraint text (the same rendering the driver
//! fingerprints), which `retypd_core::parse` round-trips exactly —
//! including `VAR` declarations and `Add`/`Sub` additive constraints — so
//! the server-side reconstruction is solver-identical to the client's
//! in-process program.
//!
//! **Versioned envelope.** Every request carries `"v": 2`; a request with
//! no `v` field is a v1 request and keeps decoding exactly as before. A
//! `v` greater than [`PROTOCOL_VERSION`] is refused with an `error` reply
//! (the server cannot guess future fields' meaning).
//!
//! **Lattice descriptor.** Solve requests may carry a `lattice` field:
//! the canonical text of a [`retypd_core::LatticeDescriptor`]. Absent ⇒
//! [`retypd_core::Lattice::c_types`], preserving v1 behavior byte for
//! byte. The server builds (and memoizes) the described lattice and every
//! scheme-cache key mixes in its fingerprint, so two lattices never share
//! cache entries; each report names the lattice it was solved against in
//! `lattice_fp`.
//!
//! **Streaming batches.** `solve_batch` with `"stream": true` answers with
//! one `report` frame per module *as it finishes* (completion order, each
//! tagged with its submission `index`) and a terminal `batch_done` frame
//! carrying aggregate stats; the reassembled set is bit-identical to the
//! single-frame `solved` reply. Pre-admission refusals (`overloaded`,
//! `shutting_down`, `error`) still arrive as a single frame.
//!
//! Reports carry schemes and sketches in their canonical rendered form plus
//! the full [`SolverStats`]; [`WireReport::canonical_text`] is the
//! timing-free projection the determinism tests and `loadgen` compare
//! byte-for-byte against in-process and sequential solves.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{Read, Write};

use retypd_core::parse::{parse_constraint_set, parse_derived_var};
use retypd_core::solver::{CallTarget, Callsite, Procedure};
use retypd_core::{LatticeDescriptor, Program, SolverResult, SolverStats, Symbol, TypeScheme};
use retypd_driver::{CacheStats, ModuleJob, ModuleReport};
use serde::{Deserialize, Serialize};

use crate::json::Json;

/// Hard cap on one frame's payload (64 MiB): far above any real module,
/// far below an allocation that could hurt.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// The protocol version this build speaks. Requests without a `v` field
/// are treated as version 1; versions above this are refused.
pub const PROTOCOL_VERSION: u64 = 2;

/// Longest accepted envelope `trace_id` (bytes). Long enough for a UUID
/// plus tenant prefix; short enough that echoing it back is never a
/// memory concern.
pub const MAX_TRACE_ID_BYTES: usize = 64;

/// A protocol error: framing, JSON, or message-shape trouble.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The payload was not valid JSON or not a valid message.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn proto(msg: impl Into<String>) -> WireError {
    WireError::Protocol(msg.into())
}

// ---------------------------------------------------------------------------
// Framing

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Fails on socket errors or an oversized payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(proto(format!("frame of {} bytes exceeds cap", payload.len())));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Granularity of frame-payload allocation: the buffer grows one chunk at
/// a time as bytes actually arrive, so a peer that *announces* a large
/// frame but never delivers it cannot make the reader commit the full
/// announced allocation up front.
pub(crate) const READ_CHUNK: usize = 64 << 10;

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); EOF inside a frame is an error.
///
/// Both sides of the protocol use this: the announced length is validated
/// against [`MAX_FRAME_BYTES`] *before* any allocation (a malicious or
/// confused server must not make a [`crate::Client`] attempt a multi-GiB
/// allocation, and vice versa), and the payload buffer then grows in
/// [`READ_CHUNK`] steps so memory tracks bytes delivered, not bytes
/// promised.
///
/// # Errors
///
/// Fails on socket errors, truncated frames, or an oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(proto(format!("peer announced {len}-byte frame, over cap")));
    }
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    while payload.len() < len {
        let take = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + take, 0);
        if let Err(e) = r.read_exact(&mut payload[start..]) {
            return Err(e.into());
        }
    }
    Ok(Some(payload))
}

fn encode_msg(j: &Json) -> Vec<u8> {
    j.encode().into_bytes()
}

fn decode_msg(payload: &[u8]) -> Result<Json, WireError> {
    let text = std::str::from_utf8(payload).map_err(|_| proto("frame is not UTF-8"))?;
    Json::parse(text).map_err(|e| proto(format!("bad JSON: {e}")))
}

// ---------------------------------------------------------------------------
// Wire data shapes

/// A module on the wire: a named program in canonical constraint text.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireModule {
    /// Module name (reporting only; excluded from routing fingerprints).
    pub name: String,
    /// Procedures in program order.
    pub procs: Vec<WireProc>,
    /// External-function schemes.
    pub externals: Vec<WireScheme>,
    /// Global variables (never renamed during instantiation).
    pub globals: Vec<String>,
}

/// One procedure on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireProc {
    /// Procedure name.
    pub name: String,
    /// Canonical constraint text (`ConstraintSet` display form).
    pub constraints: String,
    /// Callsites in body order.
    pub callsites: Vec<WireCallsite>,
}

/// One callsite on the wire. Internal callees are referenced by *name*
/// (indices are an in-memory detail).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireCallsite {
    /// True if the callee is an external function.
    pub external: bool,
    /// Callee name.
    pub callee: String,
    /// Instantiation tag.
    pub tag: String,
}

/// A type scheme on the wire (`TypeScheme` decomposed into its
/// constructor arguments, so reconstruction is exact).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireScheme {
    /// The name this scheme is registered under.
    pub name: String,
    /// The scheme's subject variable.
    pub subject: String,
    /// Quantified internal variable names.
    pub existentials: Vec<String>,
    /// Canonical constraint text.
    pub constraints: String,
}

/// Per-procedure inference output on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireProcResult {
    /// Procedure name.
    pub name: String,
    /// The inferred scheme, canonically rendered.
    pub scheme: String,
    /// The refined sketch (canonical `Debug` form), if any.
    pub sketch: Option<String>,
    /// The most-general sketch, if any.
    pub general: Option<String>,
}

/// One module's inference report on the wire.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireReport {
    /// Module name (as submitted).
    pub name: String,
    /// The module's content fingerprint (shard routing key).
    pub fingerprint: u64,
    /// Fingerprint of the lattice this module was solved against
    /// ([`retypd_core::Lattice::fingerprint`]); `Lattice::c_types()`'s
    /// fingerprint for v1 requests.
    pub lattice_fp: u64,
    /// The shard that solved it.
    pub shard: usize,
    /// Per-procedure results, in name order.
    pub procs: Vec<WireProcResult>,
    /// Scalar consistency violations.
    pub inconsistencies: Vec<(String, String)>,
    /// Solver statistics (includes `solve_ns` and cache counters).
    pub stats: SolverStats,
    /// Wall-clock nanoseconds the shard spent on this module.
    pub wall_ns: u64,
    /// The client-supplied `trace_id`, echoed verbatim; `None` when the
    /// request carried none.
    pub trace_id: Option<String>,
    /// Per-phase solve timing, present when any phase recorded work (cache
    /// hits replay no phase work, so a fully warm report omits it).
    pub timing: Option<WireTiming>,
}

/// Per-phase timing breakdown of a solve: where the module's nanoseconds
/// went, split along the paper's pipeline (saturation → transducer →
/// simplify → sketches). Excluded from [`WireReport::canonical_text`], so
/// determinism comparisons are unaffected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireTiming {
    /// Nanoseconds building + saturating constraint graphs.
    pub saturate_ns: u64,
    /// Nanoseconds extracting scalar violations via the transducer.
    pub transducer_ns: u64,
    /// Nanoseconds simplifying type schemes (cache misses only).
    pub simplify_ns: u64,
    /// Nanoseconds inferring and refining sketches.
    pub sketch_ns: u64,
}

impl WireTiming {
    /// Extracts the phase breakdown from solver stats; `None` when no phase
    /// recorded any work.
    pub fn from_stats(s: &SolverStats) -> Option<WireTiming> {
        let t = WireTiming {
            saturate_ns: s.saturate_ns,
            transducer_ns: s.transducer_ns,
            simplify_ns: s.simplify_ns,
            sketch_ns: s.sketch_ns,
        };
        (t != WireTiming::default()).then_some(t)
    }
}

/// The merged telemetry registry on the wire: the `metrics` reply.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WireMetrics {
    /// Monotonic counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauges, name-sorted (merged across shards by summation).
    pub gauges: Vec<(String, i64)>,
    /// Histograms, name-sorted.
    pub histograms: Vec<WireHistogram>,
}

impl WireMetrics {
    /// Renders a merged [`retypd_telemetry::MetricsSnapshot`] for the wire.
    pub fn from_snapshot(snap: &retypd_telemetry::MetricsSnapshot) -> WireMetrics {
        WireMetrics {
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            histograms: snap
                .histograms
                .iter()
                .map(|(name, h)| WireHistogram {
                    name: name.clone(),
                    count: h.count,
                    sum: h.sum,
                    buckets: h.nonzero_buckets(),
                    p50: h.quantile(50, 100),
                    p95: h.quantile(95, 100),
                    p99: h.quantile(99, 100),
                })
                .collect(),
        }
    }

    /// Merges another wire snapshot into this one, the algebra a gateway
    /// uses to answer `metrics` as the sum of its own registry plus every
    /// backend's reply: counters and gauges sum by name, histograms merge
    /// bucket-wise (the bounds are the deterministic
    /// [`retypd_telemetry::bucket_bound`] grid, so bucket addition commutes)
    /// and the quantiles are re-extracted from the merged buckets — exactly
    /// what a single process holding all the samples would have reported.
    /// Name ordering stays sorted, so merge order never changes the bytes.
    pub fn merge(&mut self, other: &WireMetrics) {
        fn merge_sorted<V: Copy + std::ops::AddAssign>(
            dst: &mut Vec<(String, V)>,
            src: &[(String, V)],
        ) {
            for (name, v) in src {
                match dst.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                    Ok(i) => dst[i].1 += *v,
                    Err(i) => dst.insert(i, (name.clone(), *v)),
                }
            }
        }
        merge_sorted(&mut self.counters, &other.counters);
        merge_sorted(&mut self.gauges, &other.gauges);
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|mine| mine.name.as_str().cmp(&h.name))
            {
                Ok(i) => {
                    let mine = &mut self.histograms[i];
                    let mut snap = retypd_telemetry::HistogramSnapshot::from_buckets(
                        &mine.buckets,
                        mine.sum,
                    );
                    snap.merge(&retypd_telemetry::HistogramSnapshot::from_buckets(
                        &h.buckets, h.sum,
                    ));
                    mine.count = snap.count;
                    mine.sum = snap.sum;
                    mine.buckets = snap.nonzero_buckets();
                    mine.p50 = snap.quantile(50, 100);
                    mine.p95 = snap.quantile(95, 100);
                    mine.p99 = snap.quantile(99, 100);
                }
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }

    /// The histogram with this name, if present.
    pub fn histogram(&self, name: &str) -> Option<&WireHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The counter with this name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }
}

/// One histogram in a `metrics` reply: non-empty buckets plus the quantiles
/// the server extracted from the merged registry. The bucket bounds are
/// deterministic (`retypd_telemetry::bucket_bound`), so quantiles survive a
/// wire round trip bit-identically.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireHistogram {
    /// Instrument name.
    pub name: String,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
    /// Median (bucket upper bound at rank ⌈count/2⌉).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// A shard's published statistics.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WireShardStats {
    /// Shard index.
    pub shard: usize,
    /// Modules this shard has solved.
    pub jobs: u64,
    /// Times this shard's driver was rebuilt after a solver panic. With a
    /// persistent store each rebuild replays to a warm cache; without one
    /// it restarts cold — either way the count makes the event observable.
    pub rebuilds: u64,
    /// The shard driver's cumulative cache counters.
    pub cache: CacheStats,
    /// Cache entries currently mirrored in the shard's persistent store
    /// (0 when persistence is off).
    pub persisted_entries: u64,
    /// Entries the *current* driver replayed from its store at
    /// construction (0 when persistence is off or the store was empty).
    pub replayed_entries: u64,
    /// Wall-clock nanoseconds the current driver's replay took.
    pub replay_ns: u64,
}

/// The server-wide statistics reply.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireStats {
    /// Requests admitted past admission control.
    pub accepted: u64,
    /// Requests rejected as `overloaded`.
    pub rejected: u64,
    /// Jobs currently admitted but not finished.
    pub queued: usize,
    /// The admission limit.
    pub queue_limit: usize,
    /// The serving process's OS pid (0 when unknown — e.g. a pre-gateway
    /// server's reply). Lets a supervisor tie a socket to a child process
    /// without racing on spawn order.
    pub pid: u64,
    /// This process's start time, nanoseconds since the UNIX epoch (0 when
    /// unknown). A restarted backend answers with a *larger* `start_ns`
    /// than its predecessor, so a supervisor can distinguish "same
    /// process, still healthy" from "recycled under the same addr".
    pub start_ns: u64,
    /// Per-shard statistics.
    pub shards: Vec<WireShardStats>,
}

/// Aggregate statistics closing a streaming batch (`batch_done`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireBatchDone {
    /// Modules in the batch as submitted.
    pub modules: usize,
    /// `report` frames delivered with a result (excludes per-module
    /// errors).
    pub delivered: usize,
    /// Per-module failures (solver panics, drain races) in arrival order.
    pub errors: Vec<String>,
    /// Server-side wall clock from admission to the last report.
    pub wall_ns: u64,
    /// Fingerprint of the lattice the batch was solved against.
    pub lattice_fp: u64,
}

/// A request message.
#[derive(Clone, Debug)]
pub enum Request {
    /// Solve one module, optionally against a described lattice.
    SolveModule {
        /// The module to solve.
        module: WireModule,
        /// The lattice to solve against; `None` means `c_types`.
        lattice: Option<LatticeDescriptor>,
        /// Request-scoped trace id (1–64 chars), echoed in the report and
        /// stamped on the solve's tracing spans.
        trace_id: Option<String>,
    },
    /// Solve a batch of modules; the response preserves order.
    SolveBatch {
        /// The modules to solve, in submission order.
        modules: Vec<WireModule>,
        /// The lattice to solve against; `None` means `c_types`.
        lattice: Option<LatticeDescriptor>,
        /// `true` answers with one `report` frame per module as it
        /// finishes plus a terminal `batch_done`, instead of a single
        /// `solved` frame.
        stream: bool,
        /// Request-scoped trace id (1–64 chars), echoed in every report.
        trace_id: Option<String>,
    },
    /// Fetch server statistics.
    Stats,
    /// Fetch the merged telemetry registry (v2 only).
    Metrics {
        /// `true` asks for the Prometheus-style text exposition
        /// (`metrics_text` reply) instead of the structured snapshot.
        text: bool,
    },
    /// Begin a graceful drain: queued work finishes, new work is refused.
    Shutdown,
}

impl Request {
    /// A v1-shaped single-module request (default lattice).
    pub fn solve_module(module: WireModule) -> Request {
        Request::SolveModule {
            module,
            lattice: None,
            trace_id: None,
        }
    }

    /// A v1-shaped batch request (default lattice, single `solved` reply).
    pub fn solve_batch(modules: Vec<WireModule>) -> Request {
        Request::SolveBatch {
            modules,
            lattice: None,
            stream: false,
            trace_id: None,
        }
    }

    /// Sets the envelope `trace_id` on a solve request (no-op on control
    /// requests, which carry no reports to echo it in).
    pub fn with_trace_id(mut self, id: impl Into<String>) -> Request {
        match &mut self {
            Request::SolveModule { trace_id, .. }
            | Request::SolveBatch { trace_id, .. } => *trace_id = Some(id.into()),
            _ => {}
        }
        self
    }
}

/// A response message.
#[derive(Clone, Debug)]
pub enum Response {
    /// Reports for a solve request, in submission order.
    Solved(Vec<WireReport>),
    /// One module's result in a streaming batch, tagged with its
    /// submission index. `Err` carries a per-module failure (e.g. a solver
    /// panic) without aborting the rest of the stream.
    Report {
        /// The module's position in the submitted batch.
        index: usize,
        /// The module's report, or why it has none.
        result: Result<Box<WireReport>, String>,
    },
    /// Terminal frame of a streaming batch.
    BatchDone(WireBatchDone),
    /// Server statistics.
    Stats(WireStats),
    /// The request was refused by admission control.
    Overloaded {
        /// Jobs in flight when the request was refused.
        queued: usize,
        /// The admission limit.
        limit: usize,
    },
    /// The merged telemetry registry.
    Metrics(WireMetrics),
    /// The telemetry registry as Prometheus-style exposition text.
    MetricsText(String),
    /// The server is draining and takes no new work.
    ShuttingDown,
    /// The request could not be processed.
    Error(String),
}

// ---------------------------------------------------------------------------
// Program <-> wire conversion

impl WireModule {
    /// Renders a [`ModuleJob`] into its wire form.
    pub fn from_job(job: &ModuleJob) -> WireModule {
        let program = &job.program;
        WireModule {
            name: job.name.clone(),
            procs: program
                .procs
                .iter()
                .map(|p| WireProc {
                    name: p.name.as_str().to_owned(),
                    constraints: p.constraints.to_string(),
                    callsites: p
                        .callsites
                        .iter()
                        .map(|cs| match cs.callee {
                            CallTarget::Internal(i) => WireCallsite {
                                external: false,
                                callee: program.procs[i].name.as_str().to_owned(),
                                tag: cs.tag.clone(),
                            },
                            CallTarget::External(n) => WireCallsite {
                                external: true,
                                callee: n.as_str().to_owned(),
                                tag: cs.tag.clone(),
                            },
                        })
                        .collect(),
                })
                .collect(),
            externals: program
                .externals
                .iter()
                .map(|(name, scheme)| WireScheme {
                    name: name.as_str().to_owned(),
                    subject: scheme.subject().name().as_str().to_owned(),
                    existentials: scheme
                        .existentials()
                        .iter()
                        .map(|e| e.as_str().to_owned())
                        .collect(),
                    constraints: scheme.constraints().to_string(),
                })
                .collect(),
            globals: program.globals.iter().map(|g| g.to_string()).collect(),
        }
    }

    /// Reconstructs the [`ModuleJob`] this wire form describes. The result
    /// is solver-identical to the job that produced it: constraint text,
    /// `VAR` declarations, and additive constraints all round-trip.
    ///
    /// # Errors
    ///
    /// Fails on unparsable constraint text or a callsite referencing an
    /// unknown procedure.
    pub fn to_job(&self) -> Result<ModuleJob, WireError> {
        let mut program = Program::new();
        // Procedure indices are positional, so resolve names first.
        let index_of: BTreeMap<&str, usize> = self
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name.as_str(), i))
            .collect();
        for p in &self.procs {
            let constraints = parse_constraint_set(&p.constraints)
                .map_err(|e| proto(format!("procedure {}: {e}", p.name)))?;
            let callsites = p
                .callsites
                .iter()
                .map(|cs| {
                    let callee = if cs.external {
                        CallTarget::External(Symbol::intern(&cs.callee))
                    } else {
                        CallTarget::Internal(*index_of.get(cs.callee.as_str()).ok_or_else(
                            || proto(format!("{}: unknown callee {}", p.name, cs.callee)),
                        )?)
                    };
                    Ok(Callsite {
                        callee,
                        tag: cs.tag.clone(),
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            program.add_proc(Procedure {
                name: Symbol::intern(&p.name),
                constraints,
                callsites,
            });
        }
        for e in &self.externals {
            let subject_dv = parse_derived_var(&e.subject)
                .map_err(|err| proto(format!("external {}: {err}", e.name)))?;
            if !subject_dv.path().is_empty() {
                return Err(proto(format!("external {}: subject has labels", e.name)));
            }
            let constraints = parse_constraint_set(&e.constraints)
                .map_err(|err| proto(format!("external {}: {err}", e.name)))?;
            let existentials: BTreeSet<Symbol> =
                e.existentials.iter().map(|x| Symbol::intern(x)).collect();
            program.externals.insert(
                Symbol::intern(&e.name),
                TypeScheme::new(subject_dv.base(), existentials, constraints),
            );
        }
        for g in &self.globals {
            let dv = parse_derived_var(g).map_err(|e| proto(format!("global {g}: {e}")))?;
            if !dv.path().is_empty() {
                return Err(proto(format!("global {g} has labels")));
            }
            program.globals.insert(dv.base());
        }
        Ok(ModuleJob {
            name: self.name.clone(),
            program,
        })
    }
}

impl WireReport {
    /// Builds a report from a driver [`ModuleReport`].
    pub fn from_report(report: &ModuleReport, fingerprint: u64, shard: usize) -> WireReport {
        let mut w = WireReport::from_result(&report.name, &report.result);
        w.fingerprint = fingerprint;
        w.lattice_fp = report.lattice_fp;
        w.shard = shard;
        w.wall_ns = report.wall.as_nanos() as u64;
        w
    }

    /// Builds a report from a bare [`SolverResult`] (fingerprints, shard,
    /// and wall clock zeroed) — the shape used for in-process references in
    /// the determinism tests and `loadgen`.
    pub fn from_result(name: &str, result: &SolverResult) -> WireReport {
        WireReport {
            name: name.to_owned(),
            fingerprint: 0,
            lattice_fp: 0,
            shard: 0,
            procs: result
                .procs
                .iter()
                .map(|(pname, pr)| WireProcResult {
                    name: pname.as_str().to_owned(),
                    scheme: pr.scheme.to_string(),
                    sketch: pr.sketch.as_ref().map(|s| format!("{s:?}")),
                    general: pr.general_sketch.as_ref().map(|s| format!("{s:?}")),
                })
                .collect(),
            inconsistencies: result
                .inconsistencies
                .iter()
                .map(|(a, b)| (a.as_str().to_owned(), b.as_str().to_owned()))
                .collect(),
            stats: result.stats,
            wall_ns: 0,
            trace_id: None,
            timing: WireTiming::from_stats(&result.stats),
        }
    }

    /// The timing-free canonical projection: schemes, sketches, and
    /// inconsistencies. Two solves of the same module — over the wire, in
    /// process, sequential — must produce byte-identical canonical text;
    /// the determinism tests and the `loadgen` verifier compare exactly
    /// this.
    pub fn canonical_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in &self.procs {
            let _ = writeln!(out, "{}: {}", p.name, p.scheme);
            let _ = writeln!(out, "  sketch: {:?}", p.sketch);
            let _ = writeln!(out, "  general: {:?}", p.general);
        }
        let _ = writeln!(out, "{:?}", self.inconsistencies);
        out
    }
}

// ---------------------------------------------------------------------------
// JSON encoding/decoding

impl WireModule {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            (
                "procs".into(),
                Json::Arr(
                    self.procs
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&p.name)),
                                ("constraints".into(), Json::str(&p.constraints)),
                                (
                                    "callsites".into(),
                                    Json::Arr(
                                        p.callsites
                                            .iter()
                                            .map(|cs| {
                                                Json::Obj(vec![
                                                    (
                                                        "external".into(),
                                                        Json::Bool(cs.external),
                                                    ),
                                                    ("callee".into(), Json::str(&cs.callee)),
                                                    ("tag".into(), Json::str(&cs.tag)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "externals".into(),
                Json::Arr(
                    self.externals
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&e.name)),
                                ("subject".into(), Json::str(&e.subject)),
                                (
                                    "existentials".into(),
                                    Json::Arr(
                                        e.existentials.iter().map(Json::str).collect(),
                                    ),
                                ),
                                ("constraints".into(), Json::str(&e.constraints)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "globals".into(),
                Json::Arr(self.globals.iter().map(Json::str).collect()),
            ),
        ])
    }

    fn from_json(j: &Json) -> Result<WireModule, WireError> {
        Ok(WireModule {
            name: str_field(j, "name")?,
            procs: arr_field(j, "procs")?
                .iter()
                .map(|p| {
                    Ok(WireProc {
                        name: str_field(p, "name")?,
                        constraints: str_field(p, "constraints")?,
                        callsites: arr_field(p, "callsites")?
                            .iter()
                            .map(|cs| {
                                Ok(WireCallsite {
                                    external: bool_field(cs, "external")?,
                                    callee: str_field(cs, "callee")?,
                                    tag: str_field(cs, "tag")?,
                                })
                            })
                            .collect::<Result<_, WireError>>()?,
                    })
                })
                .collect::<Result<_, WireError>>()?,
            externals: arr_field(j, "externals")?
                .iter()
                .map(|e| {
                    Ok(WireScheme {
                        name: str_field(e, "name")?,
                        subject: str_field(e, "subject")?,
                        existentials: str_arr_field(e, "existentials")?,
                        constraints: str_field(e, "constraints")?,
                    })
                })
                .collect::<Result<_, WireError>>()?,
            globals: str_arr_field(j, "globals")?,
        })
    }
}

fn stats_to_json(s: &SolverStats) -> Json {
    Json::Obj(vec![
        ("graph_nodes".into(), Json::usize(s.graph_nodes)),
        ("graph_edges".into(), Json::usize(s.graph_edges)),
        ("quotient_nodes".into(), Json::usize(s.quotient_nodes)),
        ("sketch_states".into(), Json::usize(s.sketch_states)),
        ("constraints".into(), Json::usize(s.constraints)),
        ("solve_ns".into(), Json::u64(s.solve_ns)),
        ("cache_hits".into(), Json::u64(s.cache_hits)),
        ("cache_misses".into(), Json::u64(s.cache_misses)),
        ("saturate_ns".into(), Json::u64(s.saturate_ns)),
        ("transducer_ns".into(), Json::u64(s.transducer_ns)),
        ("simplify_ns".into(), Json::u64(s.simplify_ns)),
        ("sketch_ns".into(), Json::u64(s.sketch_ns)),
    ])
}

fn stats_from_json(j: &Json) -> Result<SolverStats, WireError> {
    // The phase-timing fields are newer than the stats shape; decode them
    // tolerantly (as the v2 fields were) so a client can read an older
    // server's reports.
    let opt_u64 = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(SolverStats {
        graph_nodes: usize_field(j, "graph_nodes")?,
        graph_edges: usize_field(j, "graph_edges")?,
        quotient_nodes: usize_field(j, "quotient_nodes")?,
        sketch_states: usize_field(j, "sketch_states")?,
        constraints: usize_field(j, "constraints")?,
        solve_ns: u64_field(j, "solve_ns")?,
        cache_hits: u64_field(j, "cache_hits")?,
        cache_misses: u64_field(j, "cache_misses")?,
        saturate_ns: opt_u64("saturate_ns"),
        transducer_ns: opt_u64("transducer_ns"),
        simplify_ns: opt_u64("simplify_ns"),
        sketch_ns: opt_u64("sketch_ns"),
    })
}

impl WireReport {
    fn to_json(&self) -> Json {
        let mut obj = Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("fingerprint".into(), Json::u64(self.fingerprint)),
            ("lattice_fp".into(), Json::u64(self.lattice_fp)),
            ("shard".into(), Json::usize(self.shard)),
            (
                "procs".into(),
                Json::Arr(
                    self.procs
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&p.name)),
                                ("scheme".into(), Json::str(&p.scheme)),
                                (
                                    "sketch".into(),
                                    p.sketch.as_ref().map_or(Json::Null, Json::str),
                                ),
                                (
                                    "general".into(),
                                    p.general.as_ref().map_or(Json::Null, Json::str),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "inconsistencies".into(),
                Json::Arr(
                    self.inconsistencies
                        .iter()
                        .map(|(a, b)| Json::Arr(vec![Json::str(a), Json::str(b)]))
                        .collect(),
                ),
            ),
            ("stats".into(), stats_to_json(&self.stats)),
            ("wall_ns".into(), Json::u64(self.wall_ns)),
        ]);
        // Optional v2 additions ride at the end so v1-era consumers that
        // index fields positionally are unaffected.
        let Json::Obj(fields) = &mut obj else { unreachable!() };
        if let Some(t) = &self.trace_id {
            fields.push(("trace_id".into(), Json::str(t)));
        }
        if let Some(t) = &self.timing {
            fields.push((
                "timing".into(),
                Json::Obj(vec![
                    ("saturate_ns".into(), Json::u64(t.saturate_ns)),
                    ("transducer_ns".into(), Json::u64(t.transducer_ns)),
                    ("simplify_ns".into(), Json::u64(t.simplify_ns)),
                    ("sketch_ns".into(), Json::u64(t.sketch_ns)),
                ]),
            ));
        }
        obj
    }

    fn from_json(j: &Json) -> Result<WireReport, WireError> {
        Ok(WireReport {
            name: str_field(j, "name")?,
            fingerprint: u64_field(j, "fingerprint")?,
            // v2 field: a v1 server's reports lack it — default to the
            // documented zeroed value rather than refusing an otherwise
            // usable report (requests got the same one-version tolerance).
            lattice_fp: j.get("lattice_fp").and_then(Json::as_u64).unwrap_or(0),
            shard: usize_field(j, "shard")?,
            procs: arr_field(j, "procs")?
                .iter()
                .map(|p| {
                    Ok(WireProcResult {
                        name: str_field(p, "name")?,
                        scheme: str_field(p, "scheme")?,
                        sketch: opt_str_field(p, "sketch")?,
                        general: opt_str_field(p, "general")?,
                    })
                })
                .collect::<Result<_, WireError>>()?,
            inconsistencies: arr_field(j, "inconsistencies")?
                .iter()
                .map(|pair| {
                    let items = pair.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                        proto("inconsistency entries are 2-element arrays")
                    })?;
                    Ok((
                        items[0]
                            .as_str()
                            .ok_or_else(|| proto("inconsistency members are strings"))?
                            .to_owned(),
                        items[1]
                            .as_str()
                            .ok_or_else(|| proto("inconsistency members are strings"))?
                            .to_owned(),
                    ))
                })
                .collect::<Result<_, WireError>>()?,
            stats: stats_from_json(
                j.get("stats").ok_or_else(|| proto("missing stats"))?,
            )?,
            wall_ns: u64_field(j, "wall_ns")?,
            trace_id: opt_str_field(j, "trace_id")?,
            // Optional phase breakdown; tolerate absence (older servers)
            // and decode sub-fields tolerantly like the stats additions.
            timing: j.get("timing").and_then(|t| {
                let f = |name: &str| t.get(name).and_then(Json::as_u64).unwrap_or(0);
                let w = WireTiming {
                    saturate_ns: f("saturate_ns"),
                    transducer_ns: f("transducer_ns"),
                    simplify_ns: f("simplify_ns"),
                    sketch_ns: f("sketch_ns"),
                };
                (w != WireTiming::default()).then_some(w)
            }),
        })
    }
}

fn shard_stats_to_json(s: &WireShardStats) -> Json {
    Json::Obj(vec![
        ("shard".into(), Json::usize(s.shard)),
        ("jobs".into(), Json::u64(s.jobs)),
        ("rebuilds".into(), Json::u64(s.rebuilds)),
        ("hits".into(), Json::u64(s.cache.hits)),
        ("misses".into(), Json::u64(s.cache.misses)),
        ("evictions".into(), Json::u64(s.cache.evictions)),
        ("scheme_entries".into(), Json::usize(s.cache.scheme_entries)),
        ("refine_entries".into(), Json::usize(s.cache.refine_entries)),
        ("persisted_entries".into(), Json::u64(s.persisted_entries)),
        ("replayed_entries".into(), Json::u64(s.replayed_entries)),
        ("replay_ns".into(), Json::u64(s.replay_ns)),
    ])
}

fn shard_stats_from_json(j: &Json) -> Result<WireShardStats, WireError> {
    // The rebuild/persistence gauges are newer than the stats shape
    // itself; decode them tolerantly (as the v2 fields were) so a client
    // can read an older server's stats reply.
    let opt_u64 = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(WireShardStats {
        shard: usize_field(j, "shard")?,
        jobs: u64_field(j, "jobs")?,
        rebuilds: opt_u64("rebuilds"),
        cache: CacheStats {
            hits: u64_field(j, "hits")?,
            misses: u64_field(j, "misses")?,
            evictions: u64_field(j, "evictions")?,
            scheme_entries: usize_field(j, "scheme_entries")?,
            refine_entries: usize_field(j, "refine_entries")?,
        },
        persisted_entries: opt_u64("persisted_entries"),
        replayed_entries: opt_u64("replayed_entries"),
        replay_ns: opt_u64("replay_ns"),
    })
}

impl Request {
    /// Encodes this request into a frame payload (a v2 envelope; the
    /// `lattice` and `stream` fields are omitted at their defaults, so a
    /// default-lattice request differs from v1 only by the `v` field).
    pub fn encode(&self) -> Vec<u8> {
        let envelope = |kind: &str| {
            vec![
                ("v".into(), Json::u64(PROTOCOL_VERSION)),
                ("kind".into(), Json::str(kind)),
            ]
        };
        let push_lattice = |fields: &mut Vec<(String, Json)>, l: &Option<LatticeDescriptor>| {
            if let Some(d) = l {
                fields.push(("lattice".into(), Json::str(&d.to_string())));
            }
        };
        let push_trace = |fields: &mut Vec<(String, Json)>, t: &Option<String>| {
            if let Some(id) = t {
                fields.push(("trace_id".into(), Json::str(id)));
            }
        };
        let j = match self {
            Request::SolveModule {
                module,
                lattice,
                trace_id,
            } => {
                let mut fields = envelope("solve_module");
                push_lattice(&mut fields, lattice);
                push_trace(&mut fields, trace_id);
                fields.push(("module".into(), module.to_json()));
                Json::Obj(fields)
            }
            Request::SolveBatch {
                modules,
                lattice,
                stream,
                trace_id,
            } => {
                let mut fields = envelope("solve_batch");
                push_lattice(&mut fields, lattice);
                push_trace(&mut fields, trace_id);
                if *stream {
                    fields.push(("stream".into(), Json::Bool(true)));
                }
                fields.push((
                    "modules".into(),
                    Json::Arr(modules.iter().map(WireModule::to_json).collect()),
                ));
                Json::Obj(fields)
            }
            Request::Stats => Json::Obj(envelope("stats")),
            Request::Metrics { text } => {
                let mut fields = envelope("metrics");
                if *text {
                    fields.push(("format".into(), Json::str("text")));
                }
                Json::Obj(fields)
            }
            Request::Shutdown => Json::Obj(envelope("shutdown")),
        };
        encode_msg(&j)
    }

    /// Decodes a request from a frame payload. A payload without a `v`
    /// field is a v1 request (no lattice, no streaming) and decodes to the
    /// same values it always did.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, an unknown `kind`, a protocol version
    /// above [`PROTOCOL_VERSION`], or an unparsable lattice descriptor.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let j = decode_msg(payload)?;
        let version = match j.get("v") {
            None => 1,
            Some(v) => v
                .as_u64()
                .ok_or_else(|| proto("field \"v\" must be a number"))?,
        };
        if version > PROTOCOL_VERSION {
            return Err(proto(format!(
                "protocol version {version} not supported (this server speaks ≤ {PROTOCOL_VERSION})"
            )));
        }
        let lattice = match j.get("lattice") {
            None | Some(Json::Null) => None,
            Some(Json::Str(text)) => Some(
                text.parse::<LatticeDescriptor>()
                    .map_err(|e| proto(format!("bad lattice descriptor: {e}")))?,
            ),
            Some(_) => return Err(proto("field \"lattice\" must be a string")),
        };
        let stream = match j.get("stream") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(proto("field \"stream\" must be a bool")),
        };
        // Envelope-level trace id: validated for every kind (control
        // requests simply have no report to echo it in).
        let trace_id = match j.get("trace_id") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) if !s.is_empty() && s.len() <= MAX_TRACE_ID_BYTES => {
                Some(s.clone())
            }
            Some(Json::Str(_)) => {
                return Err(proto(format!(
                    "field \"trace_id\" must be 1..={MAX_TRACE_ID_BYTES} bytes"
                )))
            }
            Some(_) => return Err(proto("field \"trace_id\" must be a string")),
        };
        match str_field(&j, "kind")?.as_str() {
            "solve_module" => Ok(Request::SolveModule {
                module: WireModule::from_json(
                    j.get("module").ok_or_else(|| proto("missing module"))?,
                )?,
                lattice,
                trace_id,
            }),
            "solve_batch" => Ok(Request::SolveBatch {
                modules: arr_field(&j, "modules")?
                    .iter()
                    .map(WireModule::from_json)
                    .collect::<Result<_, WireError>>()?,
                lattice,
                stream,
                trace_id,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" if version >= 2 => {
                let text = match j.get("format") {
                    None => false,
                    Some(Json::Str(s)) if s == "json" => false,
                    Some(Json::Str(s)) if s == "text" => true,
                    Some(Json::Str(s)) => {
                        return Err(proto(format!("unknown metrics format {s:?}")))
                    }
                    Some(_) => return Err(proto("field \"format\" must be a string")),
                };
                Ok(Request::Metrics { text })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(proto(format!("unknown request kind {other:?}"))),
        }
    }
}

impl Response {
    /// Encodes this response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let j = match self {
            Response::Solved(reports) => Json::Obj(vec![
                ("kind".into(), Json::str("solved")),
                (
                    "reports".into(),
                    Json::Arr(reports.iter().map(WireReport::to_json).collect()),
                ),
            ]),
            Response::Report { index, result } => {
                let mut fields = vec![
                    ("kind".into(), Json::str("report")),
                    ("index".into(), Json::usize(*index)),
                ];
                match result {
                    Ok(r) => fields.push(("report".into(), r.to_json())),
                    Err(m) => fields.push(("error".into(), Json::str(m))),
                }
                Json::Obj(fields)
            }
            Response::BatchDone(d) => Json::Obj(vec![
                ("kind".into(), Json::str("batch_done")),
                ("modules".into(), Json::usize(d.modules)),
                ("delivered".into(), Json::usize(d.delivered)),
                (
                    "errors".into(),
                    Json::Arr(d.errors.iter().map(Json::str).collect()),
                ),
                ("wall_ns".into(), Json::u64(d.wall_ns)),
                ("lattice_fp".into(), Json::u64(d.lattice_fp)),
            ]),
            Response::Stats(s) => Json::Obj(vec![
                ("kind".into(), Json::str("stats")),
                ("accepted".into(), Json::u64(s.accepted)),
                ("rejected".into(), Json::u64(s.rejected)),
                ("queued".into(), Json::usize(s.queued)),
                ("queue_limit".into(), Json::usize(s.queue_limit)),
                ("pid".into(), Json::u64(s.pid)),
                ("start_ns".into(), Json::u64(s.start_ns)),
                (
                    "shards".into(),
                    Json::Arr(s.shards.iter().map(shard_stats_to_json).collect()),
                ),
            ]),
            Response::Overloaded { queued, limit } => Json::Obj(vec![
                ("kind".into(), Json::str("overloaded")),
                ("queued".into(), Json::usize(*queued)),
                ("limit".into(), Json::usize(*limit)),
            ]),
            Response::Metrics(m) => Json::Obj(vec![
                ("kind".into(), Json::str("metrics")),
                (
                    "counters".into(),
                    Json::Obj(
                        m.counters
                            .iter()
                            .map(|(n, v)| (n.clone(), Json::u64(*v)))
                            .collect(),
                    ),
                ),
                (
                    "gauges".into(),
                    Json::Obj(
                        m.gauges
                            .iter()
                            .map(|(n, v)| (n.clone(), Json::Num(v.to_string())))
                            .collect(),
                    ),
                ),
                (
                    "histograms".into(),
                    Json::Arr(
                        m.histograms
                            .iter()
                            .map(|h| {
                                Json::Obj(vec![
                                    ("name".into(), Json::str(&h.name)),
                                    ("count".into(), Json::u64(h.count)),
                                    ("sum".into(), Json::u64(h.sum)),
                                    (
                                        "buckets".into(),
                                        Json::Arr(
                                            h.buckets
                                                .iter()
                                                .map(|(b, c)| {
                                                    Json::Arr(vec![
                                                        Json::u64(*b),
                                                        Json::u64(*c),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    ("p50".into(), Json::u64(h.p50)),
                                    ("p95".into(), Json::u64(h.p95)),
                                    ("p99".into(), Json::u64(h.p99)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::MetricsText(text) => Json::Obj(vec![
                ("kind".into(), Json::str("metrics_text")),
                ("text".into(), Json::str(text)),
            ]),
            Response::ShuttingDown => {
                Json::Obj(vec![("kind".into(), Json::str("shutting_down"))])
            }
            Response::Error(m) => Json::Obj(vec![
                ("kind".into(), Json::str("error")),
                ("message".into(), Json::str(m)),
            ]),
        };
        encode_msg(&j)
    }

    /// Decodes a response from a frame payload.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or an unknown `kind`.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let j = decode_msg(payload)?;
        match str_field(&j, "kind")?.as_str() {
            "solved" => Ok(Response::Solved(
                arr_field(&j, "reports")?
                    .iter()
                    .map(WireReport::from_json)
                    .collect::<Result<_, WireError>>()?,
            )),
            "report" => {
                let index = usize_field(&j, "index")?;
                let result = match j.get("report") {
                    Some(r) => Ok(Box::new(WireReport::from_json(r)?)),
                    None => Err(str_field(&j, "error").map_err(|_| {
                        proto("report frames carry either a report or an error")
                    })?),
                };
                Ok(Response::Report { index, result })
            }
            "batch_done" => Ok(Response::BatchDone(WireBatchDone {
                modules: usize_field(&j, "modules")?,
                delivered: usize_field(&j, "delivered")?,
                errors: str_arr_field(&j, "errors")?,
                wall_ns: u64_field(&j, "wall_ns")?,
                lattice_fp: u64_field(&j, "lattice_fp")?,
            })),
            "stats" => Ok(Response::Stats(WireStats {
                accepted: u64_field(&j, "accepted")?,
                rejected: u64_field(&j, "rejected")?,
                queued: usize_field(&j, "queued")?,
                queue_limit: usize_field(&j, "queue_limit")?,
                // Liveness fields are newer than the stats shape; decode
                // tolerantly so a pre-gateway server's reply still reads.
                pid: j.get("pid").and_then(Json::as_u64).unwrap_or(0),
                start_ns: j.get("start_ns").and_then(Json::as_u64).unwrap_or(0),
                shards: arr_field(&j, "shards")?
                    .iter()
                    .map(shard_stats_from_json)
                    .collect::<Result<_, WireError>>()?,
            })),
            "overloaded" => Ok(Response::Overloaded {
                queued: usize_field(&j, "queued")?,
                limit: usize_field(&j, "limit")?,
            }),
            "metrics" => {
                let pairs = |key: &str| -> Result<Vec<(String, String)>, WireError> {
                    match j.get(key) {
                        Some(Json::Obj(members)) => Ok(members
                            .iter()
                            .filter_map(|(n, v)| match v {
                                Json::Num(num) => Some((n.clone(), num.clone())),
                                _ => None,
                            })
                            .collect()),
                        _ => Err(proto(format!("missing object field {key:?}"))),
                    }
                };
                let counters = pairs("counters")?
                    .into_iter()
                    .filter_map(|(n, v)| v.parse::<u64>().ok().map(|v| (n, v)))
                    .collect();
                let gauges = pairs("gauges")?
                    .into_iter()
                    .filter_map(|(n, v)| v.parse::<i64>().ok().map(|v| (n, v)))
                    .collect();
                let histograms = arr_field(&j, "histograms")?
                    .iter()
                    .map(|h| {
                        Ok(WireHistogram {
                            name: str_field(h, "name")?,
                            count: u64_field(h, "count")?,
                            sum: u64_field(h, "sum")?,
                            buckets: arr_field(h, "buckets")?
                                .iter()
                                .map(|pair| {
                                    let items = pair
                                        .as_arr()
                                        .filter(|a| a.len() == 2)
                                        .ok_or_else(|| {
                                            proto("histogram buckets are 2-element arrays")
                                        })?;
                                    match (items[0].as_u64(), items[1].as_u64()) {
                                        (Some(b), Some(c)) => Ok((b, c)),
                                        _ => Err(proto("histogram buckets are u64 pairs")),
                                    }
                                })
                                .collect::<Result<_, WireError>>()?,
                            p50: u64_field(h, "p50")?,
                            p95: u64_field(h, "p95")?,
                            p99: u64_field(h, "p99")?,
                        })
                    })
                    .collect::<Result<_, WireError>>()?;
                Ok(Response::Metrics(WireMetrics {
                    counters,
                    gauges,
                    histograms,
                }))
            }
            "metrics_text" => Ok(Response::MetricsText(str_field(&j, "text")?)),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error(str_field(&j, "message")?)),
            other => Err(proto(format!("unknown response kind {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Field helpers

fn str_field(j: &Json, key: &str) -> Result<String, WireError> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| proto(format!("missing string field {key:?}")))
}

fn opt_str_field(j: &Json, key: &str) -> Result<Option<String>, WireError> {
    match j.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(proto(format!("field {key:?} must be a string or null"))),
    }
}

fn bool_field(j: &Json, key: &str) -> Result<bool, WireError> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(proto(format!("missing bool field {key:?}"))),
    }
}

fn u64_field(j: &Json, key: &str) -> Result<u64, WireError> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| proto(format!("missing u64 field {key:?}")))
}

fn usize_field(j: &Json, key: &str) -> Result<usize, WireError> {
    j.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| proto(format!("missing usize field {key:?}")))
}

fn arr_field<'j>(j: &'j Json, key: &str) -> Result<&'j [Json], WireError> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| proto(format!("missing array field {key:?}")))
}

fn str_arr_field(j: &Json, key: &str) -> Result<Vec<String>, WireError> {
    arr_field(j, key)?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_owned)
                .ok_or_else(|| proto(format!("{key:?} members must be strings")))
        })
        .collect()
}
