//! Stable 64-bit fingerprints of analysis inputs.
//!
//! The scheme cache is keyed by content, not identity: an SCC's fingerprint
//! covers everything its solve reads — the members' canonicalized
//! constraint sets, the callsite structure, the program's globals, and the
//! *fingerprints of the callee schemes* that get instantiated into the
//! combined set. Two modules that share a procedure (the near-duplicate
//! members of a real binary corpus, or a re-submitted module) therefore
//! produce colliding keys exactly when the solver would produce identical
//! output.
//!
//! Hashes are FNV-1a over rendered canonical text (`ConstraintSet` and
//! `DerivedVar` display deterministically from `BTreeSet` storage) or, for
//! sketches, over the automaton's structure field by field, so
//! fingerprints are stable across runs and processes for a fixed lattice —
//! deliberately *not* `DefaultHasher`, whose keys are randomized, and not
//! `Symbol`'s pointer-based `Hash`, which varies with interning history.

use std::collections::BTreeMap;

use retypd_core::{Program, Sketch, Symbol, TypeScheme};
use retypd_core::dtv::BaseVar;
use retypd_core::solver::CallTarget;

/// FNV-1a, 64-bit: small, dependency-free, and stable across platforms.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher, seeded with a domain tag so different fingerprint
    /// kinds never collide structurally.
    pub fn new(domain: &str) -> Fnv64 {
        let mut h = Fnv64(Self::OFFSET);
        h.write(domain.as_bytes());
        h
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a string with a length prefix (prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Absorbs a byte slice a word at a time — one xor-multiply round per
    /// 8 bytes instead of per byte, with the length absorbed first so
    /// the zero-padded tail cannot alias a longer input. Roughly 8× the
    /// throughput of [`Fnv64::write`]; used for the scheme store's frame
    /// checksums and for the bulk text fields of content fingerprints
    /// (constraint-set renderings run to hundreds of bytes per scheme).
    /// Not interchangeable with `write` — the two produce different
    /// hashes for the same bytes.
    pub fn write_wide(&mut self, bytes: &[u8]) {
        self.0 ^= bytes.len() as u64;
        self.0 = self.0.wrapping_mul(Self::PRIME);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.0 ^= u64::from_le_bytes(c.try_into().unwrap());
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.0 ^= u64::from_le_bytes(tail);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint of a type scheme, hashed from its canonical parts:
/// subject, existentials, and the *lossless* [`retypd_core::ConstraintSet`]
/// rendering. (`TypeScheme`'s own `Display` elides `VAR` declarations and
/// additive constraints, so it cannot key a lossless store record.)
pub fn scheme_fp(s: &TypeScheme) -> u64 {
    scheme_fp_parts(
        &s.subject().to_string(),
        s.existentials(),
        &s.constraints().to_string(),
    )
}

/// [`scheme_fp`] over pre-rendered parts. The driver renders a solved
/// scheme's subject and constraint text once, fingerprints the strings
/// here, and hands the same strings to the scheme store's writer — what
/// gets persisted is byte-for-byte the text that was fingerprinted.
pub fn scheme_fp_parts(
    subject: &str,
    existentials: &std::collections::BTreeSet<Symbol>,
    constraints: &str,
) -> u64 {
    let mut h = Fnv64::new("scheme");
    h.write_wide(subject.as_bytes());
    h.write_u64(existentials.len() as u64);
    for x in existentials {
        h.write_str(x.as_str());
    }
    // The constraint text is the bulk of the input (hundreds of bytes per
    // scheme), and this hash runs once per solved scheme *and* once per
    // replayed store record — wide absorption keeps both cheap.
    h.write_wide(constraints.as_bytes());
    h.finish()
}

/// Absorbs a label by discriminant and fields — registers go in by their
/// interned *string* (`Symbol`'s pointer identity varies with interning
/// history). Each discriminant fixes its field count, so adjacent labels
/// cannot alias.
fn write_label(h: &mut Fnv64, label: retypd_core::Label) {
    use retypd_core::{Label, Loc};
    let write_loc = |h: &mut Fnv64, loc: Loc| match loc {
        Loc::Stack(k) => {
            h.write_u64(0);
            h.write_u64(k as u64);
        }
        Loc::Reg(r) => {
            h.write_u64(1);
            h.write_str(r.as_str());
        }
    };
    match label {
        Label::In(loc) => {
            h.write_u64(0);
            write_loc(h, loc);
        }
        Label::Out(loc) => {
            h.write_u64(1);
            write_loc(h, loc);
        }
        Label::Load => h.write_u64(2),
        Label::Store => h.write_u64(3),
        Label::Sigma { bits, offset } => {
            h.write_u64(4);
            h.write_u64(bits as u64);
            h.write_u64(offset as u32 as u64);
        }
    }
}

/// Fingerprint of a sketch: structure, marks, and bound intervals, hashed
/// field by field. Element indices are descriptor-stable (see
/// [`retypd_core::LatticeElem::index`]) and labels are absorbed by
/// discriminant and fields (see [`write_label`]) — no rendering at all,
/// which matters because the scheme store fingerprints every sketch it
/// encodes *and* every sketch it replays.
pub fn sketch_fp(s: &Sketch) -> u64 {
    let mut h = Fnv64::new("sketch");
    h.write_u64(s.len() as u64);
    h.write_u64(s.root() as u64);
    for st in 0..s.len() as u32 {
        let (lower, upper) = s.interval(st);
        h.write_u64(s.mark(st).index() as u64);
        h.write_u64(lower.index() as u64);
        h.write_u64(upper.index() as u64);
        for (label, target) in s.edges(st) {
            h.write_u64(target as u64);
            write_label(&mut h, label);
        }
        // Targets are `u32`, so `u64::MAX` cannot be mistaken for an edge.
        h.write_u64(u64::MAX);
    }
    h.finish()
}

/// Content fingerprint of a whole program: globals, externals (name and
/// scheme), and every procedure's name, canonical constraint text, and
/// callsite structure, in program order. Two programs fingerprint equal
/// exactly when the solver would see identical input, which is what
/// `retypd-serve` relies on to route re-submitted modules onto the shard
/// whose cache already holds their SCCs.
pub fn program_fp(program: &Program) -> u64 {
    let mut h = Fnv64::new("program");
    h.write_u64(program.globals.len() as u64);
    for g in &program.globals {
        h.write_str(g.name().as_str());
    }
    h.write_u64(program.externals.len() as u64);
    for (name, scheme) in &program.externals {
        h.write_str(name.as_str());
        h.write_u64(scheme_fp(scheme));
    }
    h.write_u64(program.procs.len() as u64);
    for proc in &program.procs {
        h.write_str(proc.name.as_str());
        h.write_wide(proc.constraints.to_string().as_bytes());
        h.write_u64(proc.callsites.len() as u64);
        for cs in &proc.callsites {
            h.write_str(&cs.tag);
            match cs.callee {
                CallTarget::Internal(i) => {
                    h.write_str("internal");
                    h.write_str(program.procs[i].name.as_str());
                }
                CallTarget::External(n) => {
                    h.write_str("external");
                    h.write_str(n.as_str());
                }
            }
        }
    }
    h.finish()
}

/// Pass-1 fingerprint of an SCC: everything [`retypd_core::Solver::solve_scc`]
/// reads — *including the lattice it solves against*. `lattice_fp` is
/// [`retypd_core::Lattice::fingerprint`]; mixing it in first means two
/// lattices can never share a scheme-cache entry, however identical the
/// constraint text (the pass-2 key inherits this through `scc_fp`).
/// `scheme_fps` must contain the fingerprint of every already-solved
/// scheme by name (externals included) — exactly the names the combined
/// constraint set instantiates.
pub fn scc_fingerprint(
    lattice_fp: u64,
    program: &Program,
    scc: &[usize],
    scc_of: &[usize],
    scheme_fps: &BTreeMap<Symbol, u64>,
) -> u64 {
    let mut h = Fnv64::new("scc-schemes");
    h.write_u64(lattice_fp);
    for g in &program.globals {
        h.write_str(g.name().as_str());
    }
    let my_scc = scc_of[scc[0]];
    h.write_u64(scc.len() as u64);
    for &p in scc {
        let proc = &program.procs[p];
        h.write_str(proc.name.as_str());
        h.write_wide(proc.constraints.to_string().as_bytes());
        h.write_u64(proc.callsites.len() as u64);
        for cs in &proc.callsites {
            h.write_str(&cs.tag);
            match cs.callee {
                CallTarget::Internal(i) if scc_of[i] == my_scc => {
                    h.write_str("mono");
                    h.write_str(program.procs[i].name.as_str());
                }
                CallTarget::Internal(i) => {
                    let name = program.procs[i].name;
                    h.write_str("internal");
                    h.write_str(name.as_str());
                    h.write_u64(scheme_fps.get(&name).copied().unwrap_or(0));
                }
                CallTarget::External(n) => {
                    h.write_str("external");
                    h.write_str(n.as_str());
                    h.write_u64(scheme_fps.get(&n).copied().unwrap_or(0));
                }
            }
        }
    }
    h.finish()
}

/// Pass-2 fingerprint of an SCC: the pass-1 fingerprint (which covers the
/// combined constraint set, since schemes are final after pass 1) extended
/// with the refinement inputs — each member's callsite-actual variables and
/// the fingerprints of the actual sketches visible in the caller-produced
/// snapshot.
pub fn refine_fingerprint(
    scc_fp: u64,
    program: &Program,
    scc: &[usize],
    actuals: &BTreeMap<Symbol, Vec<BaseVar>>,
    sketches: &BTreeMap<BaseVar, Sketch>,
) -> u64 {
    let mut h = Fnv64::new("scc-refine");
    h.write_u64(scc_fp);
    for &p in scc {
        let proc = &program.procs[p];
        h.write_str(proc.name.as_str());
        if let Some(tags) = actuals.get(&proc.name) {
            h.write_u64(tags.len() as u64);
            for a in tags {
                h.write_str(a.name().as_str());
                match sketches.get(a) {
                    Some(s) => {
                        h.write_u64(1);
                        h.write_u64(sketch_fp(s));
                    }
                    None => h.write_u64(0),
                }
            }
        } else {
            h.write_u64(0);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv64::new("t");
        a.write_str("x");
        a.write_str("y");
        let mut b = Fnv64::new("t");
        b.write_str("x");
        b.write_str("y");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new("t");
        c.write_str("y");
        c.write_str("x");
        assert_ne!(a.finish(), c.finish());
        // Length prefixing: ("ab","c") ≠ ("a","bc").
        let mut d = Fnv64::new("t");
        d.write_str("ab");
        d.write_str("c");
        let mut e = Fnv64::new("t");
        e.write_str("a");
        e.write_str("bc");
        assert_ne!(d.finish(), e.finish());
    }
}
