//! Property tests for [`LatticeDescriptor`]: the canonical text form
//! round-trips through display→parse, rebuilding from a descriptor is
//! index-identical, and fingerprints are stable — across redundant edge
//! declarations, across rebuilds, and (pinned constants) across releases.

use proptest::prelude::*;
use retypd_core::{Lattice, LatticeBuilder, LatticeDescriptor};

/// Builds a random tree-shaped hierarchy (plus ⊥ under everything, the
/// c_types construction) from parent indices: element `i + 1` sits under
/// element `parents[i] % (i + 1)`. Trees with a shared bottom are always
/// valid lattices.
fn tree_lattice(parents: &[u8]) -> Lattice {
    let mut b = LatticeBuilder::named("gen");
    b.add("t").expect("fresh root");
    for (i, &p) in parents.iter().enumerate() {
        let parent = if p as usize % (i + 1) == 0 {
            "t".to_owned()
        } else {
            format!("n{}", p as usize % (i + 1) - 1)
        };
        b.add_under(&format!("n{i}"), &parent).expect("fresh child");
    }
    b.add("bot").expect("fresh bottom");
    b.le("bot", "t").expect("known");
    for i in 0..parents.len() {
        b.le("bot", &format!("n{i}")).expect("known");
    }
    b.build().expect("tree plus shared bottom is a lattice")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn display_parse_round_trip_is_identity(parents in proptest::collection::vec(any::<u8>(), 0..12)) {
        let lat = tree_lattice(&parents);
        let d = lat.descriptor().clone();
        let text = d.to_string();
        let back: LatticeDescriptor = text.parse().expect("canonical text parses");
        prop_assert_eq!(&back, &d);
        prop_assert_eq!(back.to_string(), text);
        prop_assert_eq!(back.fingerprint(), d.fingerprint());
    }

    #[test]
    fn rebuild_from_descriptor_is_fingerprint_stable(parents in proptest::collection::vec(any::<u8>(), 0..12)) {
        let lat = tree_lattice(&parents);
        let rebuilt = lat
            .descriptor()
            .to_string()
            .parse::<LatticeDescriptor>()
            .expect("parses")
            .build()
            .expect("canonical descriptor builds");
        prop_assert_eq!(rebuilt.fingerprint(), lat.fingerprint());
        prop_assert_eq!(rebuilt.descriptor(), lat.descriptor());
        // Index-identical rebuild: same dense index for every name, same
        // order tables, so solver output over the rebuilt lattice is
        // bit-identical.
        for (a, b) in lat.elements().zip(rebuilt.elements()) {
            prop_assert_eq!(lat.name(a), rebuilt.name(b));
            for (c, d) in lat.elements().zip(rebuilt.elements()) {
                prop_assert_eq!(lat.leq(a, c), rebuilt.leq(b, d));
            }
        }
    }
}

/// The built-in lattices' fingerprints are pinned: they key persistent
/// caches and shard routing, so an accidental change to the canonical form
/// (element order, cover computation, hash constants) must fail loudly
/// here rather than silently invalidating every cache.
#[test]
fn builtin_fingerprints_are_pinned() {
    assert_eq!(
        Lattice::c_types().fingerprint(),
        LatticeDescriptor::c_types().fingerprint()
    );
    let c = Lattice::c_types().fingerprint();
    let p = Lattice::paper_example().fingerprint();
    assert_ne!(c, p);
    assert_eq!(c, 0xa180_c57b_2474_5bf6, "c_types canonical form changed");
    assert_eq!(p, 0x499e_d676_9e66_9181, "paper canonical form changed");
}
