//! Model-checked doubles of `std::sync::atomic` types.
//!
//! Each type wraps the *real* std atomic. Inside a model execution,
//! every operation is a schedule point against the runtime's
//! store-history state (so relaxed loads can observe stale values and
//! acquire/release edges are tracked); outside an execution (statics at
//! process scope, non-model threads), operations fall through to the
//! real primitive, so these types are always safe to construct in
//! `static`s even in model builds.
//!
//! Values are stored in the history as `u64` bit patterns; each typed
//! front converts at the edges. Stores write through to the real cell
//! (with `Relaxed`) so fall-through readers and later executions see
//! the latest value.

use std::sync::atomic::Ordering;

use crate::rt;

macro_rules! model_atomic {
    ($name:ident, $prim:ty, $real:ty, $to:expr, $from:expr) => {
        /// Model-checked double of the std atomic of the same name; see
        /// the module docs for semantics.
        #[derive(Default)]
        pub struct $name {
            real: $real,
        }

        impl $name {
            /// Creates a new atomic (usable in `static`s).
            pub const fn new(v: $prim) -> Self {
                Self { real: <$real>::new(v) }
            }

            fn addr(&self) -> usize {
                &self.real as *const $real as usize
            }

            fn init(&self) -> u64 {
                ($to)(self.real.load(Ordering::Relaxed))
            }

            /// Loads the value; under the model a relaxed load may
            /// observe any coherent stale store.
            pub fn load(&self, order: Ordering) -> $prim {
                let (addr, init) = (self.addr(), self.init());
                match rt::op(|g, tid| g.atomic_load(tid, addr, order, init)) {
                    Some(bits) => ($from)(bits),
                    None => self.real.load(order),
                }
            }

            /// Stores the value; a relaxed store publishes no
            /// happens-before edge under the model.
            pub fn store(&self, v: $prim, order: Ordering) {
                let (addr, init) = (self.addr(), self.init());
                let bits = ($to)(v);
                if rt::op(|g, tid| g.atomic_store(tid, addr, order, bits, init)).is_some() {
                    self.real.store(v, Ordering::Relaxed);
                } else {
                    self.real.store(v, order);
                }
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |_| v, |r| r.swap(v, order))
            }

            /// Strong compare-exchange (the weak form is identical
            /// under the model; spurious failures only add schedules a
            /// retry loop already has).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let (addr, init) = (self.addr(), self.init());
                let (cb, nb) = (($to)(current), ($to)(new));
                match rt::op(|g, tid| g.atomic_cas(tid, addr, cb, nb, success, failure, init)) {
                    Some(r) => {
                        if r.is_ok() {
                            self.real.store(new, Ordering::Relaxed);
                        }
                        r.map(|b| ($from)(b)).map_err(|b| ($from)(b))
                    }
                    None => self.real.compare_exchange(current, new, success, failure),
                }
            }

            /// See [`Self::compare_exchange`].
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }

            fn rmw(
                &self,
                order: Ordering,
                f: impl Fn($prim) -> $prim,
                fallback: impl FnOnce(&$real) -> $prim,
            ) -> $prim {
                let (addr, init) = (self.addr(), self.init());
                let res = rt::op(|g, tid| {
                    g.atomic_rmw(tid, addr, order, init, &mut |bits| ($to)(f(($from)(bits))))
                });
                match res {
                    Some(prev_bits) => {
                        let prev = ($from)(prev_bits);
                        self.real.store(f(prev), Ordering::Relaxed);
                        prev
                    }
                    None => fallback(&self.real),
                }
            }

            /// Exclusive access to the value (no model bookkeeping
            /// needed: `&mut self` proves no concurrency).
            pub fn get_mut(&mut self) -> &mut $prim {
                rt::forget_location(self.addr());
                self.real.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(mut self) -> $prim {
                *self.get_mut()
            }
        }

        impl Drop for $name {
            fn drop(&mut self) {
                // The address may be recycled for a fresh atomic; its
                // model history must die with it.
                rt::forget_location(self.addr());
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{:?}", self.load(Ordering::Relaxed))
            }
        }

        impl From<$prim> for $name {
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $prim:ty, $real:ty, $to:expr, $from:expr) => {
        model_atomic!($name, $prim, $real, $to, $from);

        impl $name {
            /// Wrapping add, returning the previous value.
            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |x| x.wrapping_add(v), |r| r.fetch_add(v, order))
            }

            /// Wrapping subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |x| x.wrapping_sub(v), |r| r.fetch_sub(v, order))
            }

            /// Maximum, returning the previous value.
            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |x| x.max(v), |r| r.fetch_max(v, order))
            }

            /// Minimum, returning the previous value.
            pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |x| x.min(v), |r| r.fetch_min(v, order))
            }

            /// Bitwise and, returning the previous value.
            pub fn fetch_and(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |x| x & v, |r| r.fetch_and(v, order))
            }

            /// Bitwise or, returning the previous value.
            pub fn fetch_or(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |x| x | v, |r| r.fetch_or(v, order))
            }

            /// Bitwise xor, returning the previous value.
            pub fn fetch_xor(&self, v: $prim, order: Ordering) -> $prim {
                self.rmw(order, |x| x ^ v, |r| r.fetch_xor(v, order))
            }
        }
    };
}

model_atomic_int!(
    AtomicU64,
    u64,
    std::sync::atomic::AtomicU64,
    |v: u64| v,
    |b: u64| b
);
model_atomic_int!(
    AtomicUsize,
    usize,
    std::sync::atomic::AtomicUsize,
    |v: usize| v as u64,
    |b: u64| b as usize
);
model_atomic_int!(
    AtomicU32,
    u32,
    std::sync::atomic::AtomicU32,
    |v: u32| v as u64,
    |b: u64| b as u32
);
model_atomic_int!(
    AtomicI64,
    i64,
    std::sync::atomic::AtomicI64,
    |v: i64| v as u64,
    |b: u64| b as i64
);
model_atomic_int!(
    AtomicI32,
    i32,
    std::sync::atomic::AtomicI32,
    |v: i32| v as i64 as u64,
    |b: u64| b as i32
);
model_atomic!(
    AtomicBool,
    bool,
    std::sync::atomic::AtomicBool,
    |v: bool| v as u64,
    |b: u64| b != 0
);

impl AtomicBool {
    /// Bitwise and, returning the previous value.
    pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
        self.rmw(order, |x| x & v, |r| r.fetch_and(v, order))
    }

    /// Bitwise or, returning the previous value.
    pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
        self.rmw(order, |x| x | v, |r| r.fetch_or(v, order))
    }
}

/// A memory fence: modeled coarsely (see the runtime docs), a real
/// fence outside the model.
pub fn fence(order: Ordering) {
    if rt::op(|g, tid| g.fence(tid, order)).is_none() {
        std::sync::atomic::fence(order);
    }
}

/// Compiler fences constrain no cross-thread visibility; passthrough.
pub fn compiler_fence(order: Ordering) {
    std::sync::atomic::compiler_fence(order);
}
