//! Saturation of the constraint graph (Algorithm D.2).
//!
//! Saturation adds ε "shortcut" edges so that every balanced
//! push-ℓ … pop-ℓ excursion in a derivation is summarized by a single ε
//! edge. After saturation, every entailed constraint `X.u ⊑ Y.v` (with
//! `X.u`, `Y.v` materialized) is witnessed by a path that performs all its
//! pops first, then all its pushes — the "reduced" form of Appendix D.4.
//!
//! The algorithm maintains, per node `q`, a *reaching-push* set `R(q)` of
//! pairs `(ℓ, z)`: there is a transition sequence from `z` to `q` whose
//! stack-operation word reduces to `push ℓ`. The rules are:
//!
//! 1. seed: a push-ℓ edge `x → y` puts `(ℓ, x)` into `R(y)`;
//! 2. propagate: an ε edge `x → y` makes `R(y) ⊇ R(x)`;
//! 3. shortcut: a pop-ℓ edge `x → y` with `(ℓ, z) ∈ R(x)` adds the ε edge
//!    `z → y` (and its mirror, keeping the graph symmetric);
//! 4. **lazy S-POINTER** (the paper's ∆ptr has one rule per derived type
//!    variable, an infinite set, so it is applied lazily): at a
//!    contravariant node `(d,⊖)`, `(.store, z) ∈ R((d,⊖))` implies
//!    `(.load, z) ∈ R((d,⊕))`, and `(.load, z) ∈ R((d,⊖))` implies
//!    `(.store, z) ∈ R((d,⊕))`.
//!
//! Rule 4 moves entries **across the variance rows**: the pushdown rules
//! `rule⊕/rule⊖(v.store ⊑ v.load)` both transfer control from `v⊖` to `v⊕`
//! (swapping the pending label), which is what makes the Figure 14 example
//! derive its dashed `x.store⊕ → y.load⊕` edge. This cross-variance form is
//! validated against the naive Figure 3 oracle by the proptests in this
//! module.
//!
//! # Data plane
//!
//! The fixpoint runs entirely over dense integer indices, with no per-visit
//! allocations in the worklist inner loop:
//!
//! * Push labels are interned into small ids; an `R(q)` entry is one `u64`
//!   packing `(label id, source node)`, and `R(q)` itself is a sorted,
//!   deduplicated `Vec<u64>`.
//! * Rule 2 is an in-place merge of two sorted lists (count the missing
//!   elements, grow the destination once, merge backwards) — no temporary
//!   sets, no rehashing.
//! * Rule 3 indexes directly into the graph's pop-edge CSR partition; the
//!   matching `R` entries are found by binary search on the packed label
//!   prefix. New ε edges land in the graph's append-only delta lane, so no
//!   adjacency snapshot is taken.
//! * Rule 4 swaps `.load`/`.store` label ids through a reused scratch
//!   buffer.

use std::collections::{HashMap, VecDeque};

use crate::graph::{ConstraintGraph, NodeId};
use crate::label::Label;
use crate::variance::Variance;

/// Packs a reaching-set entry `(label, source)` into one sortable word.
fn pack(label_id: u32, z: NodeId) -> u64 {
    ((label_id as u64) << 32) | z.0 as u64
}

fn entry_label(e: u64) -> u32 {
    (e >> 32) as u32
}

fn entry_node(e: u64) -> NodeId {
    NodeId(e as u32)
}

/// Merges sorted `src` into sorted `dst` in place; returns true if `dst`
/// gained elements. Linear two-pointer count, then one backward merge pass —
/// the only allocation is the destination's own growth.
fn merge_into(dst: &mut Vec<u64>, src: &[u64]) -> bool {
    let mut i = 0;
    let mut missing = 0;
    for &s in src {
        while i < dst.len() && dst[i] < s {
            i += 1;
        }
        if i >= dst.len() || dst[i] != s {
            missing += 1;
        }
    }
    if missing == 0 {
        return false;
    }
    let old = dst.len();
    dst.resize(old + missing, 0);
    let mut a = old as isize - 1;
    let mut b = src.len() as isize - 1;
    let mut w = dst.len() as isize - 1;
    while b >= 0 {
        if a >= 0 && dst[a as usize] > src[b as usize] {
            dst[w as usize] = dst[a as usize];
            a -= 1;
        } else if a >= 0 && dst[a as usize] == src[b as usize] {
            dst[w as usize] = dst[a as usize];
            a -= 1;
            b -= 1;
        } else {
            dst[w as usize] = src[b as usize];
            b -= 1;
        }
        w -= 1;
    }
    true
}

/// Merges `R(src)` into `R(dst)` (distinct indices) via a split borrow.
fn merge_between(reaching: &mut [Vec<u64>], src: usize, dst: usize) -> bool {
    debug_assert_ne!(src, dst);
    if src < dst {
        let (a, b) = reaching.split_at_mut(dst);
        merge_into(&mut b[0], &a[src])
    } else {
        let (a, b) = reaching.split_at_mut(src);
        merge_into(&mut a[dst], &b[0])
    }
}

/// Saturates the graph in place. Returns the number of ε edges added.
pub fn saturate(g: &mut ConstraintGraph) -> usize {
    let n_nodes = g.node_count();

    // Intern the labels that can appear in reaching sets: push-edge labels,
    // plus .load/.store so the S-POINTER swap is always expressible.
    let mut label_ids: HashMap<Label, u32> = HashMap::new();
    let intern = |l: Label, label_ids: &mut HashMap<Label, u32>| -> u32 {
        let next = label_ids.len() as u32;
        *label_ids.entry(l).or_insert(next)
    };
    let load_id = intern(Label::Load, &mut label_ids);
    let store_id = intern(Label::Store, &mut label_ids);
    for n in g.nodes() {
        for &(l, _) in g.push_out(n) {
            intern(l, &mut label_ids);
        }
    }
    // Pre-resolve every pop edge's label id once (the pop partition is
    // immutable); `NO_LABEL` marks labels never pushed anywhere.
    const NO_LABEL: u32 = u32::MAX;
    let pop_lids: Vec<u32> = g
        .pop_edges()
        .iter()
        .map(|&(l, _)| label_ids.get(&l).copied().unwrap_or(NO_LABEL))
        .collect();

    let mut reaching: Vec<Vec<u64>> = vec![Vec::new(); n_nodes];
    let mut dirty: VecDeque<u32> = VecDeque::new();
    let mut queued: Vec<bool> = vec![false; n_nodes];
    let mut scratch: Vec<u64> = Vec::new();
    let mut added = 0usize;

    macro_rules! enqueue {
        ($n:expr) => {{
            let idx = $n.0 as usize;
            if !queued[idx] {
                queued[idx] = true;
                dirty.push_back($n.0);
            }
        }};
    }

    // Seed: push edges.
    for n in g.nodes() {
        for &(l, to) in g.push_out(n) {
            reaching[to.0 as usize].push(pack(label_ids[&l], n));
        }
    }
    for n in g.nodes() {
        let r = &mut reaching[n.0 as usize];
        if !r.is_empty() {
            r.sort_unstable();
            r.dedup();
            enqueue!(n);
        }
    }

    // Worklist: process nodes whose R set changed; re-run the lazy,
    // shortcut, and propagation rules from them. New ε edges re-enqueue
    // their sources so R flows across them.
    while let Some(n) = dirty.pop_front() {
        let n = NodeId(n);
        queued[n.0 as usize] = false;

        // Lazy S-POINTER at contravariant nodes: swap the pending label and
        // flip to the covariant twin.
        if n.variance() == Variance::Contravariant {
            scratch.clear();
            for &e in &reaching[n.0 as usize] {
                let lid = entry_label(e);
                let swapped = if lid == load_id {
                    store_id
                } else if lid == store_id {
                    load_id
                } else {
                    continue;
                };
                scratch.push(pack(swapped, entry_node(e)));
            }
            if !scratch.is_empty() {
                scratch.sort_unstable();
                let twin = n.mirror();
                if merge_into(&mut reaching[twin.0 as usize], &scratch) {
                    enqueue!(twin);
                }
            }
        }

        // Shortcut rule, indexed directly into the pop partition: for a
        // pop-ℓ edge n → y and (ℓ, z) ∈ R(n), add z --ε--> y. The matching
        // entries are one binary search away (R is sorted by label prefix).
        for pi in g.pop_range(n) {
            let lid = pop_lids[pi];
            if lid == NO_LABEL {
                continue;
            }
            let y = g.pop_edges()[pi].1;
            let r = &reaching[n.0 as usize];
            let lo = r.partition_point(|&e| e < pack(lid, NodeId(0)));
            let hi = r.partition_point(|&e| e <= pack(lid, NodeId(u32::MAX)));
            for k in lo..hi {
                let z = entry_node(reaching[n.0 as usize][k]);
                let (new_fwd, new_mirror) = g.add_eps_pair(z, y);
                if new_fwd {
                    added += 1;
                    enqueue!(z);
                }
                if new_mirror {
                    added += 1;
                    enqueue!(y.mirror());
                }
            }
        }

        // Propagate R along ε (base lane + any delta edges the shortcut
        // rule just appended — the delta lane is append-only, so indexed
        // access is stable and no snapshot is needed).
        let n_eps = g.eps_out_len(n);
        for i in 0..n_eps {
            let to = g.eps_out_nth(n, i);
            if to == n {
                continue;
            }
            if merge_between(&mut reaching, n.0 as usize, to.0 as usize) {
                enqueue!(to);
            }
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeKind;
    use crate::parse::{parse_constraint_set, parse_derived_var};
    use crate::transducer::accepts;

    fn saturated(src: &str) -> ConstraintGraph {
        let cs = parse_constraint_set(src).unwrap();
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        g
    }

    fn check(src: &str, query: &str) -> bool {
        let g = saturated(src);
        let c = crate::parse::parse_constraint(query).unwrap();
        accepts(&g, &c.lhs, &c.rhs)
    }

    #[test]
    fn merge_into_unions_sorted_lists() {
        let mut dst = vec![1u64, 4, 9];
        assert!(merge_into(&mut dst, &[0, 4, 5, 12]));
        assert_eq!(dst, vec![0, 1, 4, 5, 9, 12]);
        assert!(!merge_into(&mut dst, &[4, 9]));
        assert_eq!(dst, vec![0, 1, 4, 5, 9, 12]);
        let mut empty: Vec<u64> = Vec::new();
        assert!(merge_into(&mut empty, &[7]));
        assert_eq!(empty, vec![7]);
        assert!(!merge_into(&mut empty, &[]));
    }

    #[test]
    fn figure4_first_program() {
        // §3.3: C′1 = {q ⊑ p, x ⊑ p.store, q.load ⊑ y} ⊢ x ⊑ y.
        let src = "q <= p; x <= p.store; q.load <= y";
        assert!(check(src, "x <= y"));
        assert!(!check(src, "y <= x"));
    }

    #[test]
    fn figure4_second_program() {
        // §3.3: C′2 = {q ⊑ p, x ⊑ q.store, p.load ⊑ y} ⊢ x ⊑ y.
        let src = "q <= p; x <= q.store; p.load <= y";
        assert!(check(src, "x <= y"));
        assert!(!check(src, "y <= x"));
    }

    #[test]
    fn figure14_lazy_pointer_rule() {
        // {y ⊑ p, p ⊑ x, A ⊑ x.store, y.load ⊑ B} ⊢ A ⊑ B, via an implicit
        // S-POINTER application — the dashed edge of Figure 14.
        let src = "y <= p; p <= x; A <= x.store; y.load <= B";
        let g = saturated(src);
        let a = parse_derived_var("A").unwrap();
        let b = parse_derived_var("B").unwrap();
        assert!(accepts(&g, &a, &b));
        assert!(!accepts(&g, &b, &a));
        // The dashed edge itself: (x.store,⊕) --ε--> (y.load,⊕).
        let xs = g
            .node(
                &parse_derived_var("x.store").unwrap(),
                Variance::Covariant,
            )
            .unwrap();
        let yl = g
            .node(&parse_derived_var("y.load").unwrap(), Variance::Covariant)
            .unwrap();
        assert!(g.eps_out(xs).any(|to| to == yl));
    }

    #[test]
    fn nested_sigma_through_pointer() {
        // Writing through one alias and reading through the other at a field
        // offset: y ⊑ p.store.σ32@0 and p.load.σ32@0 ⊑ x gives y ⊑ x.
        let src = "q <= p; y <= q.store.σ32@0; p.load.σ32@0 <= x";
        assert!(check(src, "y <= x"));
        assert!(!check(src, "x <= y"));
    }

    #[test]
    fn transitive_chain() {
        assert!(check("a <= b; b <= c; c <= d", "a <= d"));
        assert!(!check("a <= b; b <= c; c <= d", "d <= a"));
    }

    #[test]
    fn field_queries() {
        // a ⊑ b with b.load materialized ⟹ a.load ⊑ b.load.
        let src = "a <= b; b.load <= c";
        assert!(check(src, "a.load <= b.load"));
        assert!(check(src, "a.load <= c"));
        // Contravariant: b.store ⊑ a.store when a.store materialized, but
        // NOT a.store ⊑ b.store (store flips the direction).
        let src2 = "a <= b; d <= a.store";
        assert!(check(src2, "b.store <= a.store"));
        assert!(!check(src2, "d <= b.store"));
        // Dually, a value stored through the supertype's pointer reaches the
        // subtype's store capability.
        let src3 = "a <= b; d <= b.store";
        assert!(check(src3, "d <= a.store"));
    }

    #[test]
    fn recursive_loop_accepted() {
        // τ.load.σ32@0 ⊑ τ lets arbitrarily deep words collapse.
        let src = "t.load.σ32@0 <= t; t.load.σ32@4 <= int";
        assert!(check(src, "t.load.σ32@4 <= int"));
        // Unrolled once: t.load.σ32@0.load.σ32@4 ⊑ int.
        let g = saturated(src);
        let lhs = parse_derived_var("t.load.σ32@0.load.σ32@4").unwrap();
        let rhs = parse_derived_var("int").unwrap();
        assert!(accepts(&g, &lhs, &rhs));
    }

    #[test]
    fn graph_stays_mirror_symmetric() {
        let g = saturated("y <= p; p <= x; A <= x.store; y.load <= B");
        for n in g.nodes() {
            for e in g.edges_out(n) {
                if e.kind == EdgeKind::Eps {
                    assert!(
                        g.has_eps(e.to.mirror(), n.mirror()),
                        "missing mirror of ({:?}, {:?})",
                        g.dtv(n),
                        g.dtv(e.to)
                    );
                }
            }
        }
    }
}
