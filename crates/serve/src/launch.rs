//! The `serve` binary's main, as a library function.
//!
//! The gateway supervises real `serve` *processes*, and its integration
//! tests need to spawn the same binary — but Cargo only exposes
//! `CARGO_BIN_EXE_<name>` to the defining package's own tests. Sharing the
//! whole binary main here lets `crates/gateway` ship a one-line
//! `serve_backend` bin that is byte-for-byte the same server, so gateway
//! tests (and the gateway's sibling-executable default) always have a
//! spawnable backend.
//!
//! ## Readiness banner
//!
//! Once the socket is bound and every shard has replayed its store, the
//! process prints exactly one line to **stdout** (stderr keeps the
//! human-oriented log):
//!
//! ```text
//! RETYPD_SERVE_READY addr=127.0.0.1:40613 pid=12345 shards=2
//! ```
//!
//! The line is machine-readable ([`parse_ready_banner`]) and carries the
//! *bound* address, so `--addr 127.0.0.1:0` (ephemeral port) works end to
//! end: a supervisor or CI script reads the banner instead of guessing
//! ports or sleeping. `--banner-file PATH` additionally writes the same
//! line to a file (created atomically via a temp-file rename), for
//! harnesses that capture stdout elsewhere.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use crate::{start, ServeConfig};

/// The sentinel that starts a readiness banner line.
pub const READY_SENTINEL: &str = "RETYPD_SERVE_READY";

/// Renders the one-line readiness banner.
pub fn ready_banner(addr: SocketAddr, pid: u32, shards: usize) -> String {
    format!("{READY_SENTINEL} addr={addr} pid={pid} shards={shards}")
}

/// Parses a readiness banner line into `(addr, pid, shards)`. Tolerates
/// surrounding whitespace and unknown trailing `key=value` fields (so the
/// banner can grow), but refuses anything not led by [`READY_SENTINEL`]
/// or missing one of the three required fields.
pub fn parse_ready_banner(line: &str) -> Option<(SocketAddr, u32, usize)> {
    let mut parts = line.trim().split_whitespace();
    if parts.next() != Some(READY_SENTINEL) {
        return None;
    }
    let (mut addr, mut pid, mut shards) = (None, None, None);
    for field in parts {
        let (key, value) = field.split_once('=')?;
        match key {
            "addr" => addr = value.parse::<SocketAddr>().ok(),
            "pid" => pid = value.parse::<u32>().ok(),
            "shards" => shards = value.parse::<usize>().ok(),
            _ => {} // future fields
        }
    }
    Some((addr?, pid?, shards?))
}

/// Writes the banner to `path` via temp-file + rename, so a reader never
/// observes a half-written line.
fn write_banner_file(path: &Path, banner: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{banner}\n"))?;
    std::fs::rename(&tmp, path)
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--shards N] [--workers N] \
         [--queue-depth N] [--cache-capacity N|unbounded] [--read-timeout SECS|0] \
         [--max-frames-per-conn N|0] [--max-bytes-per-conn N|0] [--persist-dir PATH] \
         [--solve-delay-ms N] [--banner-file FILE] \
         [--metrics-text FILE] [--trace-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_num(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("{flag} expects a non-negative integer");
            usage();
        }
    }
}

/// The full `serve` binary main: parses `args` (without the program
/// name), runs the server to drain, and returns the process exit code.
pub fn serve_main(args: impl IntoIterator<Item = String>) -> i32 {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7411".into(),
        ..ServeConfig::default()
    };
    let mut metrics_text: Option<PathBuf> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut banner_file: Option<PathBuf> = None;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => config.addr = args.next().unwrap_or_else(|| usage()),
            "--shards" => config.shards = parse_num(&mut args, "--shards").max(1),
            "--workers" => {
                config.workers_per_shard = parse_num(&mut args, "--workers").max(1)
            }
            "--queue-depth" => {
                config.queue_depth = parse_num(&mut args, "--queue-depth").max(1)
            }
            "--cache-capacity" => {
                let v = args.next().unwrap_or_else(|| usage());
                config.cache_capacity = if v == "unbounded" {
                    None
                } else {
                    match v.parse() {
                        Ok(n) => Some(n),
                        Err(_) => usage(),
                    }
                };
            }
            "--read-timeout" => {
                // 0 disables the timeout (a connection may then idle
                // forever between requests; drains still proceed).
                let secs = parse_num(&mut args, "--read-timeout");
                config.read_timeout = if secs == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs(secs as u64))
                };
            }
            "--max-frames-per-conn" => {
                // 0 disables the per-connection frame budget.
                let n = parse_num(&mut args, "--max-frames-per-conn");
                config.max_frames_per_conn = if n == 0 { None } else { Some(n as u64) };
            }
            "--max-bytes-per-conn" => {
                // 0 disables the per-connection byte budget.
                let n = parse_num(&mut args, "--max-bytes-per-conn");
                config.max_bytes_per_conn = if n == 0 { None } else { Some(n as u64) };
            }
            "--persist-dir" => {
                // Each shard keeps a `shard-<N>.store` scheme log here;
                // relaunching with the same dir (and shard count) starts
                // every shard with a warm cache.
                config.persist_dir =
                    Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--solve-delay-ms" => {
                // Chaos seam: a deterministic pre-solve stall per job, for
                // driving tail-latency machinery (gateway hedging) in
                // tests and benches. 0 means none.
                let ms = parse_num(&mut args, "--solve-delay-ms");
                config.solve_delay = if ms == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_millis(ms as u64))
                };
            }
            "--banner-file" => {
                banner_file = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--metrics-text" => {
                metrics_text = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            _ => usage(),
        }
    }
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create trace dir {}: {e}", dir.display());
            return 1;
        }
        // Spans stay a single relaxed atomic load when this flag is
        // absent; flipping it here is the only place the binary pays for
        // tracing.
        retypd_telemetry::set_spans_enabled(true);
    }
    match start(config.clone()) {
        Ok(handle) => {
            eprintln!(
                "retypd-serve listening on {} ({} shards, {} workers/shard, queue depth {}, \
                 cache capacity {:?}, read timeout {:?}, persist dir {:?})",
                handle.addr(),
                config.shards,
                config.workers_per_shard,
                config.queue_depth,
                config.cache_capacity,
                config.read_timeout,
                config.persist_dir
            );
            // The machine-readable readiness line. `start` returned, so
            // every shard has already replayed its store: a supervisor
            // that sees this line may immediately send traffic (or a
            // stats probe asserting the replay gauges).
            let banner = ready_banner(handle.addr(), std::process::id(), config.shards);
            {
                use std::io::Write as _;
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "{banner}");
                let _ = out.flush();
            }
            if let Some(path) = &banner_file {
                if let Err(e) = write_banner_file(path, &banner) {
                    eprintln!("failed to write banner file {}: {e}", path.display());
                }
            }
            // `join` consumes the handle; the observer is what lets us
            // render one final exposition after the drain.
            let observer = handle.metrics_observer();
            // `join` returns only after the drain joined every connection
            // handler, so the `shutting_down` ack and all final response
            // frames are already handed to the kernel — no exit dwell.
            handle.join();
            if let Some(path) = &metrics_text {
                match std::fs::write(path, observer.text()) {
                    Ok(()) => eprintln!("metrics exposition written to {}", path.display()),
                    Err(e) => eprintln!("failed to write {}: {e}", path.display()),
                }
            }
            if let Some(dir) = &trace_dir {
                let (events, dropped) = retypd_telemetry::drain_spans();
                let path = dir.join("serve-trace.jsonl");
                match std::fs::write(&path, retypd_telemetry::chrome_trace_json(&events)) {
                    Ok(()) => eprintln!(
                        "trace written to {} ({} spans, {dropped} dropped)",
                        path.display(),
                        events.len()
                    ),
                    Err(e) => eprintln!("failed to write {}: {e}", path.display()),
                }
            }
            eprintln!("retypd-serve drained, exiting");
            0
        }
        Err(e) => {
            eprintln!("failed to bind {}: {e}", config.addr);
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_round_trips_and_tolerates_growth() {
        // retypd-lint: allow(no-fixed-ports) the banner is parsed, never bound
        let addr: SocketAddr = "127.0.0.1:40613".parse().unwrap();
        let line = ready_banner(addr, 12345, 4);
        assert_eq!(parse_ready_banner(&line), Some((addr, 12345, 4)));
        // Whitespace and unknown future fields are fine.
        let grown = format!("  {line} epoch=7\n");
        assert_eq!(parse_ready_banner(&grown), Some((addr, 12345, 4)));
        // Wrong sentinel, missing fields, or garbage values are not.
        assert_eq!(parse_ready_banner("READY addr=1.2.3.4:5 pid=1 shards=1"), None);
        assert_eq!(
            parse_ready_banner("RETYPD_SERVE_READY addr=127.0.0.1:1 pid=1"),
            None
        );
        assert_eq!(
            parse_ready_banner("RETYPD_SERVE_READY addr=nope pid=1 shards=1"),
            None
        );
        assert_eq!(parse_ready_banner(""), None);
    }
}
