//! A TIE-style subtype-bounds baseline (§6.5, §7).
//!
//! TIE tracks subtyping (not unification) and reports an *interval* — an
//! upper and lower lattice bound — per variable. Compared with Retypd it
//! lacks two things, both reproduced here:
//!
//! * **polymorphism**: callsites link to the callee's one type variable,
//!   so uses at different types pollute each other (though less severely
//!   than unification, since only directional bounds flow);
//! * **recursive types**: structural results are cut at a fixed depth, so
//!   linked-list shapes degrade to bounded nestings.

use retypd_core::graph::ConstraintGraph;
use retypd_core::saturation::saturate;
use retypd_core::shapes::ShapeQuotient;
use retypd_core::transducer::accepts;
use retypd_core::{
    BaseVar, ConstraintSet, DerivedVar, Label, Lattice, Program,
};

use crate::common::{InfTy, InferredFunc, InferredProgram};

/// Maximum structural depth TIE-style results retain (no recursive types).
const MAX_DEPTH: u32 = 2;

/// Runs the TIE-style baseline on a constraint program.
pub fn infer_tie(program: &Program, lattice: &Lattice) -> InferredProgram {
    // Monolithic constraint set with monomorphic callsite links, but keep
    // the subtyping direction (actual ⊑ formal flows are already in the
    // bodies; we bridge tagged callee vars to the callee monomorphically).
    let mut cs = ConstraintSet::new();
    for proc in &program.procs {
        cs.extend(&proc.constraints);
        for site in &proc.callsites {
            let callee_name = match site.callee {
                retypd_core::CallTarget::Internal(i) => program.procs[i].name,
                retypd_core::CallTarget::External(n) => n,
            };
            let tagged = DerivedVar::var(&format!("{callee_name}@{}", site.tag));
            let own = DerivedVar::new(BaseVar::Var(callee_name));
            cs.add_sub(tagged.clone(), own.clone());
            cs.add_sub(own, tagged);
        }
    }
    // External models, expanded once (monomorphic).
    for (name, scheme) in &program.externals {
        let (inst, subject) = scheme.instantiate("mono", &program.globals);
        cs.extend(&inst);
        let own = DerivedVar::new(BaseVar::Var(*name));
        let tagged = DerivedVar::new(subject);
        cs.add_sub(tagged.clone(), own.clone());
        cs.add_sub(own, tagged);
    }

    let cs = retypd_core::addsub::augment_with_addsubs(&cs, lattice);
    let mut g = ConstraintGraph::build(&cs);
    saturate(&mut g);
    let quotient = ShapeQuotient::build(&cs);
    let consts: Vec<BaseVar> = cs
        .base_vars()
        .into_iter()
        .filter(|b| b.is_const())
        .collect();

    let mut out = InferredProgram::new();
    for proc in &program.procs {
        let mut inferred = InferredFunc::default();
        let pv = BaseVar::Var(proc.name);
        if let Some(root) = quotient.walk(pv, &[]) {
            for (l, c) in quotient.successors(root) {
                match l {
                    Label::In(loc) => {
                        let dv = DerivedVar::new(pv).push(l);
                        inferred.params.insert(
                            loc,
                            to_infty(&quotient, c, &g, lattice, &consts, &dv, 0),
                        );
                        let has_load = quotient.step(c, Label::Load).is_some();
                        let has_store = quotient.step(c, Label::Store).is_some();
                        if has_load || has_store {
                            inferred.const_params.insert(loc, has_load && !has_store);
                        }
                    }
                    Label::Out(_) => {
                        let dv = DerivedVar::new(pv).push(l);
                        inferred.ret =
                            Some(to_infty(&quotient, c, &g, lattice, &consts, &dv, 0));
                    }
                    _ => {}
                }
            }
        }
        out.insert(proc.name, inferred);
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn to_infty(
    quotient: &ShapeQuotient,
    class: retypd_core::shapes::ClassId,
    g: &ConstraintGraph,
    lattice: &Lattice,
    consts: &[BaseVar],
    dv: &DerivedVar,
    depth: u32,
) -> InfTy {
    // No recursive types: cut at a fixed depth.
    if depth > MAX_DEPTH {
        return InfTy::Unknown;
    }
    let pointee = quotient
        .step(class, Label::Load)
        .or_else(|| quotient.step(class, Label::Store));
    if let Some(p) = pointee {
        let via = if quotient.step(class, Label::Load).is_some() {
            Label::Load
        } else {
            Label::Store
        };
        let fields: Vec<(i32, InfTy)> = quotient
            .successors(p)
            .into_iter()
            .filter_map(|(l, c)| match l {
                Label::Sigma { offset, .. } => Some((
                    offset,
                    to_infty(
                        quotient,
                        c,
                        g,
                        lattice,
                        consts,
                        &dv.clone().push(via).push(l),
                        depth + 1,
                    ),
                )),
                _ => None,
            })
            .collect();
        if fields.is_empty() {
            return InfTy::Ptr(Box::new(to_infty(
                quotient,
                p,
                g,
                lattice,
                consts,
                &dv.clone().push(via),
                depth + 1,
            )));
        }
        if fields.len() == 1 && fields[0].0 == 0 {
            return InfTy::Ptr(Box::new(fields.into_iter().next().expect("one").1));
        }
        return InfTy::Ptr(Box::new(InfTy::Struct(fields)));
    }
    // Scalar: query bounds on this derived variable.
    let mut lower = lattice.bottom();
    let mut upper = lattice.top();
    for k in consts {
        let Some(e) = lattice.element_sym(k.name()) else {
            continue;
        };
        let kd = DerivedVar::new(*k);
        if accepts(g, &kd, dv) {
            lower = lattice.join(lower, e);
        }
        if accepts(g, dv, &kd) {
            upper = lattice.meet(upper, e);
        }
    }
    if lower == lattice.bottom() && upper == lattice.top() {
        return InfTy::Unknown;
    }
    // TIE's display policy: prefer the lower bound when informative.
    let mark = if lower != lattice.bottom() { lower } else { upper };
    InfTy::Scalar {
        mark: lattice.name(mark).to_owned(),
        lower: lattice.name(lower).to_owned(),
        upper: lattice.name(upper).to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retypd_core::parse::parse_constraint_set;
    use retypd_core::{CallTarget, Callsite, Loc, Procedure, Symbol};

    fn proc(name: &str, cs: &str, callsites: Vec<Callsite>) -> Procedure {
        Procedure {
            name: Symbol::intern(name),
            constraints: parse_constraint_set(cs).unwrap(),
            callsites,
        }
    }

    #[test]
    fn reports_intervals() {
        let lattice = Lattice::c_types();
        let mut program = Program::new();
        program.add_proc(proc(
            "f",
            "f.in_stack0 <= x; x <= int; #FileDescriptor <= x",
            vec![],
        ));
        let result = infer_tie(&program, &lattice);
        let f = &result[&Symbol::intern("f")];
        match &f.params[&Loc::Stack(0)] {
            InfTy::Scalar { lower, upper, .. } => {
                // Upper bounds flow back to the formal (x ⊑ int); lower
                // bounds on x do not lower-bound the formal.
                assert_eq!(upper, "int");
                assert_eq!(lower, "⊥");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn recursion_is_cut() {
        // A linked list: TIE's bounded depth loses the recursive tail.
        let lattice = Lattice::c_types();
        let mut program = Program::new();
        program.add_proc(proc(
            "w",
            "
                w.in_stack0 <= t
                t.load.σ32@0 <= t
                t.load.σ32@4 <= int
            ",
            vec![],
        ));
        let result = infer_tie(&program, &lattice);
        let w = &result[&Symbol::intern("w")];
        let ty = &w.params[&Loc::Stack(0)];
        // There is a pointer, but nested Unknown appears within 3 levels.
        fn has_unknown(t: &InfTy, d: u32) -> bool {
            match t {
                InfTy::Unknown => true,
                InfTy::Ptr(p) => has_unknown(p, d + 1),
                InfTy::Struct(fs) => fs.iter().any(|(_, t)| has_unknown(t, d + 1)),
                InfTy::Scalar { .. } => false,
            }
        }
        assert!(matches!(ty, InfTy::Ptr(_)));
        assert!(has_unknown(ty, 0), "{ty}");
    }

    #[test]
    fn monomorphic_callsites_share_bounds() {
        let lattice = Lattice::c_types();
        let mut program = Program::new();
        program.add_proc(proc(
            "id",
            "id.in_stack0 <= v; v <= id.out_eax",
            vec![],
        ));
        program.add_proc(proc(
            "caller",
            "
                int32 <= id@a.in_stack0
                float32 <= id@b.in_stack0
                id@b.out_eax <= r
            ",
            vec![
                Callsite {
                    callee: CallTarget::Internal(0),
                    tag: "a".into(),
                },
                Callsite {
                    callee: CallTarget::Internal(0),
                    tag: "b".into(),
                },
            ],
        ));
        let result = infer_tie(&program, &lattice);
        let id = &result[&Symbol::intern("id")];
        match &id.params[&Loc::Stack(0)] {
            // Both callsites' lower bounds join at the shared formal:
            // join(int32, float32) = reg32.
            InfTy::Scalar { lower, .. } => assert_eq!(lower, "reg32"),
            other => panic!("{other}"),
        }
    }
}
