//! Figure 12: type-inference memory usage vs program size, with the
//! power-law fit m = α·N^β (paper: β = 0.846, R² = 0.959).

use retypd_bench::generate_sized;
use retypd_core::Lattice;
use retypd_eval::fit_power_law;
use retypd_eval::harness::{estimated_bytes, time_retypd};

fn main() {
    let lattice = Lattice::c_types();
    let sizes: Vec<usize> = vec![
        1_000, 2_000, 4_000, 8_000, 12_000, 20_000, 32_000, 48_000, 64_000, 96_000,
    ];
    let mut samples = Vec::new();
    println!("Figure 12: solver memory vs program size");
    println!("{:>12} {:>14}", "Instructions", "Memory (MB)");
    println!("{}", "-".repeat(28));
    for (i, &target) in sizes.iter().enumerate() {
        let module = generate_sized(target, 400 + i as u64);
        let (n, _, stats) = time_retypd(&module, &lattice);
        let mb = estimated_bytes(&stats) as f64 / (1024.0 * 1024.0);
        println!("{:>12} {:>14.2}", n, mb);
        samples.push((n as f64, mb.max(1e-4)));
    }
    let fit = fit_power_law(&samples);
    println!("{}", "-".repeat(28));
    println!(
        "fit: m = {:.3e} · N^{:.3}   (R² = {:.3})",
        fit.alpha, fit.beta, fit.r2
    );
    println!("(paper: m = 0.037 · N^0.846, R² = 0.959 — expect β ≤ ~1)");
}
