//! A counting global allocator: the fuzz harness's bounded-allocation
//! oracle.
//!
//! Register it in a binary with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: retypd_fuzz::alloc::CountingAlloc = retypd_fuzz::alloc::CountingAlloc;
//! ```
//!
//! and read [`CountingAlloc::current`] / [`CountingAlloc::peak`] between
//! iterations. The counters are process-wide relaxed atomics — cheap
//! enough to leave on for every allocation, precise enough to catch a
//! mutant that makes the server (or the decode path) balloon by hundreds
//! of megabytes. Note that [`retypd_core::Symbol`] interning leaks by
//! design (symbols live for the process), so live-growth bounds must be
//! generous rather than tight.

use std::alloc::{GlobalAlloc, Layout, System};
// A global allocator must not route through the model-checking facade:
// under `--cfg retypd_model_check` every facade op may allocate (trace
// recording), and an allocator that allocates on its own path re-enters
// itself. Raw std atomics are load-bearing here, not an oversight.
// retypd-lint: allow(no-raw-atomics) GlobalAlloc cannot re-enter the facade
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// The counting allocator: forwards to [`System`], tracking live bytes
/// and the high-water mark.
pub struct CountingAlloc;

fn on_alloc(n: usize) {
    let live = CURRENT.fetch_add(n, Ordering::Relaxed) + n;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

// SAFETY: defers all allocation to `System`; the bookkeeping only touches
// atomics and never allocates itself.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: `layout` is forwarded to `System.alloc` unchanged, so the
    // returned pointer satisfies exactly the contract `System` promises;
    // the counter update happens only on success and never allocates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    // SAFETY: the caller guarantees `ptr` came from this allocator with
    // this `layout` (the GlobalAlloc contract); both are forwarded to
    // `System.dealloc` verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    // SAFETY: `ptr`/`layout`/`new_size` obey the GlobalAlloc realloc
    // contract by the caller's guarantee and are forwarded to
    // `System.realloc` unchanged; on failure the original allocation is
    // untouched, so the counters are only adjusted on success.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

impl CountingAlloc {
    /// Live heap bytes right now.
    pub fn current() -> usize {
        CURRENT.load(Ordering::Relaxed)
    }

    /// High-water mark of live heap bytes since process start (or the
    /// last [`CountingAlloc::reset_peak`]).
    pub fn peak() -> usize {
        PEAK.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live count.
    pub fn reset_peak() {
        PEAK.store(Self::current(), Ordering::Relaxed);
    }
}
