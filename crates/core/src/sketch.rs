//! Sketches: the semantic model of the type system (§3.5, Appendix E).
//!
//! A sketch is a possibly infinite, finitely-branching regular tree with
//! edges labeled by field labels and nodes marked with elements of the
//! auxiliary lattice Λ. Collapsing isomorphic subtrees represents a sketch
//! as a deterministic finite automaton whose every state is accepting
//! (the language is prefix-closed).
//!
//! Sketches form a lattice (Figure 18):
//!
//! * `L(X ⊓ Y) = L(X) ∪ L(Y)` — *more* capabilities is *lower* (more
//!   constrained);
//! * `L(X ⊔ Y) = L(X) ∩ L(Y)`;
//! * node marks combine by `∧`/`∨` according to the variance of the word
//!   reaching the node.
//!
//! Sketch shapes are inferred from the [`crate::shapes::ShapeQuotient`]
//! (Theorem 3.1) and the marks are solved from the saturated constraint
//! graph (Algorithm F.2's `SOLVE`): at each node, lower bounds are joined
//! into the mark and upper bounds are met into it.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use crate::bitset::BitSet;
use crate::dtv::{BaseVar, DerivedVar};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::graph::{ConstraintGraph, NodeId};
use crate::intern::Symbol;
use crate::label::Label;
use crate::lattice::{Lattice, LatticeElem};
use crate::shapes::{ClassId, ShapeQuotient};
use crate::variance::Variance;

/// State index within a [`Sketch`].
pub type SketchState = u32;

/// One state of a [`Sketch`] in decomposed form: the mark, the
/// `[lower, upper]` bound interval, and the labeled successors. This is the
/// serialization surface — [`Sketch::from_states`] reconstructs an
/// automaton from a state list, and the read accessors ([`Sketch::mark`],
/// [`Sketch::interval`], [`Sketch::edges`]) produce one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SketchStateSpec {
    /// The state's Λ mark.
    pub mark: LatticeElem,
    /// Lower constant bound (`⋁` of entailed lower bounds).
    pub lower: LatticeElem,
    /// Upper constant bound (`⋀` of entailed upper bounds).
    pub upper: LatticeElem,
    /// Labeled successors; labels must be distinct (the automaton is
    /// deterministic).
    pub edges: Vec<(Label, SketchState)>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct Node {
    mark: LatticeElem,
    lower: LatticeElem,
    upper: LatticeElem,
    edges: BTreeMap<Label, SketchState>,
}

/// A sketch: a rooted, deterministic, prefix-closed automaton over field
/// labels with Λ-marked states.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Sketch {
    nodes: Vec<Node>,
    root: SketchState,
}

impl Sketch {
    /// The trivial sketch `{ε}` with the given root mark.
    pub fn leaf(mark: LatticeElem) -> Sketch {
        Sketch::leaf_with_interval(mark, mark, mark)
    }

    /// The trivial sketch `{ε}` with an explicit `[lower, upper]` interval.
    pub fn leaf_with_interval(
        mark: LatticeElem,
        lower: LatticeElem,
        upper: LatticeElem,
    ) -> Sketch {
        Sketch {
            nodes: vec![Node {
                mark,
                lower,
                upper,
                edges: BTreeMap::new(),
            }],
            root: 0,
        }
    }

    /// The ⊤ sketch: language `{ε}`, marked ⊤ (the greatest sketch).
    pub fn top(lattice: &Lattice) -> Sketch {
        Sketch::leaf(lattice.top())
    }

    /// Reconstructs a sketch from a decomposed state list (the inverse of
    /// walking [`Sketch::mark`] / [`Sketch::interval`] / [`Sketch::edges`]
    /// over `0..len`). Returns `None` if the list is empty, the root or any
    /// edge target is out of range, or a state carries duplicate edge
    /// labels — a deserializer must treat that as a corrupt record, not a
    /// panic.
    pub fn from_states(states: Vec<SketchStateSpec>, root: SketchState) -> Option<Sketch> {
        let n = states.len();
        if n == 0 || root as usize >= n {
            return None;
        }
        let mut nodes = Vec::with_capacity(n);
        for spec in states {
            let mut edges = BTreeMap::new();
            for (label, target) in spec.edges {
                if target as usize >= n || edges.insert(label, target).is_some() {
                    return None;
                }
            }
            nodes.push(Node {
                mark: spec.mark,
                lower: spec.lower,
                upper: spec.upper,
                edges,
            });
        }
        Some(Sketch { nodes, root })
    }

    /// The root state.
    pub fn root(&self) -> SketchState {
        self.root
    }

    /// The mark of a state.
    pub fn mark(&self, s: SketchState) -> LatticeElem {
        self.nodes[s as usize].mark
    }

    /// The `[lower, upper]` bound interval of a state (used by the
    /// TIE-style evaluation metrics: interval size and conservativeness).
    pub fn interval(&self, s: SketchState) -> (LatticeElem, LatticeElem) {
        let n = &self.nodes[s as usize];
        (n.lower, n.upper)
    }

    /// The labeled successors of a state.
    pub fn edges(&self, s: SketchState) -> impl Iterator<Item = (Label, SketchState)> + '_ {
        self.nodes[s as usize].edges.iter().map(|(&l, &t)| (l, t))
    }

    /// Follows one label.
    pub fn step(&self, s: SketchState, l: Label) -> Option<SketchState> {
        self.nodes[s as usize].edges.get(&l).copied()
    }

    /// Follows a word from the root.
    pub fn walk(&self, word: &[Label]) -> Option<SketchState> {
        let mut cur = self.root;
        for &l in word {
            cur = self.step(cur, l)?;
        }
        Some(cur)
    }

    /// True if the word is in the sketch's language.
    pub fn contains_word(&self, word: &[Label]) -> bool {
        self.walk(word).is_some()
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A sketch always has at least the root state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Infers the sketch of `base` from the shape quotient, solving marks
    /// from the saturated graph (Algorithm F.2's `SOLVE`):
    ///
    /// * shape: the sub-automaton of the quotient reachable from `base`'s
    ///   class, with states split by path variance;
    /// * marks: initialized to ⊤ at covariant nodes and ⊥ at contravariant
    ///   nodes, then `ν := (ν ∨ ⋁ lowers) ∧ ⋀ uppers` where the bounds are
    ///   the type constants κ with `κ ⊑ base.u` / `base.u ⊑ κ` entailed.
    ///
    /// Returns `None` if `base` has no class (never mentioned).
    pub fn infer(
        base: BaseVar,
        g: &ConstraintGraph,
        quotient: &ShapeQuotient,
        lattice: &Lattice,
        consts: &[BaseVar],
    ) -> Option<Sketch> {
        let root_class = quotient.walk(base, &[])?;
        // BFS over (class, variance). The first-discovery tree — each
        // state's (parent, label) — is the trie of shortest representative
        // words the batched bound sweep walks below.
        let mut index: FxHashMap<(ClassId, Variance), SketchState> = FxHashMap::default();
        let mut nodes: Vec<Node> = Vec::new();
        let mut state_variance: Vec<Variance> = Vec::new();
        let mut tree_children: Vec<Vec<(Label, SketchState)>> = Vec::new();
        let mut queue: VecDeque<(ClassId, Variance)> = VecDeque::new();
        index.insert((root_class, Variance::Covariant), 0);
        nodes.push(Node {
            mark: lattice.top(),
            lower: lattice.bottom(),
            upper: lattice.top(),
            edges: BTreeMap::new(),
        });
        state_variance.push(Variance::Covariant);
        tree_children.push(Vec::new());
        queue.push_back((root_class, Variance::Covariant));
        while let Some((c, v)) = queue.pop_front() {
            let sid = index[&(c, v)];
            for (l, tc) in quotient.successors(c) {
                let tv = v * l.variance();
                let entry = (tc, tv);
                let tid = match index.get(&entry) {
                    Some(&t) => t,
                    None => {
                        let t = nodes.len() as SketchState;
                        index.insert(entry, t);
                        nodes.push(Node {
                            mark: lattice.top(),
                            lower: lattice.bottom(),
                            upper: lattice.top(),
                            edges: BTreeMap::new(),
                        });
                        state_variance.push(tv);
                        tree_children.push(Vec::new());
                        tree_children[sid as usize].push((l, t));
                        queue.push_back(entry);
                        t
                    }
                };
                nodes[sid as usize].edges.insert(l, tid);
            }
        }
        // One batched reachability sweep computes every state's constant
        // bounds at once (was: two `accepts` pushdown walks per state per
        // type constant).
        let bounds = solve_bounds(g, base, lattice, consts, &tree_children, &state_variance);
        // Solve the marks. Display policy per Figure 5: a covariant node
        // (output-like) shows the join of its lower bounds — everything
        // that flows into it; a contravariant node (input-like) shows the
        // meet of its upper bounds — everything demanded of it. The other
        // bound is used as a fallback when the primary one is degenerate.
        for (i, node) in nodes.iter_mut().enumerate() {
            let variance = state_variance[i];
            let (lower, upper) = bounds[i];
            let conflicted =
                lower != lattice.bottom() && upper != lattice.top() && !lattice.leq(lower, upper);
            let mark = if conflicted {
                // Inconsistent interval: signal ⊥ so the C-type conversion
                // applies the union policy (Example 4.2).
                lattice.bottom()
            } else {
                match variance {
                    Variance::Covariant if lower != lattice.bottom() => lower,
                    Variance::Covariant if upper != lattice.top() => upper,
                    Variance::Contravariant if upper != lattice.top() => upper,
                    Variance::Contravariant if lower != lattice.bottom() => lower,
                    _ => lattice.top(),
                }
            };
            node.mark = mark;
            node.lower = lower;
            node.upper = upper;
        }
        Some(Sketch { nodes, root: 0 })
    }

    /// Meet (`⊓`): language union, marks combined by variance
    /// (Figure 18).
    pub fn meet(&self, other: &Sketch, lattice: &Lattice) -> Sketch {
        self.combine(other, lattice, true)
    }

    /// Join (`⊔`): language intersection, marks combined by variance
    /// (Figure 18).
    pub fn join(&self, other: &Sketch, lattice: &Lattice) -> Sketch {
        self.combine(other, lattice, false)
    }

    fn combine(&self, other: &Sketch, lattice: &Lattice, is_meet: bool) -> Sketch {
        type PState = (Option<SketchState>, Option<SketchState>, Variance);
        let mut index: FxHashMap<PState, SketchState> = FxHashMap::default();
        let mut nodes: Vec<Node> = Vec::new();
        let mut queue: VecDeque<PState> = VecDeque::new();
        let start = (Some(self.root), Some(other.root), Variance::Covariant);
        index.insert(start, 0);
        nodes.push(Node {
            mark: lattice.top(),
            lower: lattice.bottom(),
            upper: lattice.top(),
            edges: BTreeMap::new(),
        });
        queue.push_back(start);
        while let Some(st @ (a, b, v)) = queue.pop_front() {
            let sid = index[&st];
            // Mark (Figure 18).
            let blend = |xa: Option<LatticeElem>, xb: Option<LatticeElem>| match (xa, xb) {
                (Some(ma), Some(mb)) => match (is_meet, v) {
                    (true, Variance::Covariant) | (false, Variance::Contravariant) => {
                        lattice.meet(ma, mb)
                    }
                    (true, Variance::Contravariant) | (false, Variance::Covariant) => {
                        lattice.join(ma, mb)
                    }
                },
                (Some(ma), None) => ma,
                (None, Some(mb)) => mb,
                (None, None) => unreachable!("product state with no sides"),
            };
            nodes[sid as usize].mark = blend(a.map(|s| self.mark(s)), b.map(|s| other.mark(s)));
            nodes[sid as usize].lower = blend(
                a.map(|s| self.nodes[s as usize].lower),
                b.map(|s| other.nodes[s as usize].lower),
            );
            nodes[sid as usize].upper = blend(
                a.map(|s| self.nodes[s as usize].upper),
                b.map(|s| other.nodes[s as usize].upper),
            );
            // Successor labels: union for meet, intersection for join.
            let mut labels: Vec<Label> = Vec::new();
            if let Some(s) = a {
                labels.extend(self.edges(s).map(|(l, _)| l));
            }
            if let Some(s) = b {
                labels.extend(other.edges(s).map(|(l, _)| l));
            }
            labels.sort();
            labels.dedup();
            for l in labels {
                let ta = a.and_then(|s| self.step(s, l));
                let tb = b.and_then(|s| other.step(s, l));
                let keep = if is_meet {
                    ta.is_some() || tb.is_some()
                } else {
                    ta.is_some() && tb.is_some()
                };
                if !keep {
                    continue;
                }
                let nv = v * l.variance();
                let key = (ta, tb, nv);
                let tid = match index.get(&key) {
                    Some(&t) => t,
                    None => {
                        let t = nodes.len() as SketchState;
                        index.insert(key, t);
                        nodes.push(Node {
                            mark: lattice.top(),
                            lower: lattice.bottom(),
                            upper: lattice.top(),
                            edges: BTreeMap::new(),
                        });
                        queue.push_back(key);
                        t
                    }
                };
                nodes[sid as usize].edges.insert(l, tid);
            }
        }
        Sketch { nodes, root: 0 }
    }

    /// The partial order `X ⊑ Y` on sketches: `L(Y) ⊆ L(X)` and for every
    /// word `w ∈ L(Y)`, the marks satisfy `νX(w) ≤ νY(w)` at covariant `w`
    /// and `νY(w) ≤ νX(w)` at contravariant `w`.
    pub fn leq(&self, other: &Sketch, lattice: &Lattice) -> bool {
        // Walk the product over other's language.
        let mut seen: FxHashMap<(SketchState, SketchState, Variance), ()> = FxHashMap::default();
        let mut queue: VecDeque<(SketchState, SketchState, Variance)> = VecDeque::new();
        queue.push_back((self.root, other.root, Variance::Covariant));
        seen.insert((self.root, other.root, Variance::Covariant), ());
        while let Some((a, b, v)) = queue.pop_front() {
            let (ma, mb) = (self.mark(a), other.mark(b));
            let ok = match v {
                Variance::Covariant => lattice.leq(ma, mb),
                Variance::Contravariant => lattice.leq(mb, ma),
            };
            if !ok {
                return false;
            }
            for (l, tb) in other.edges(b) {
                match self.step(a, l) {
                    None => return false, // L(other) ⊄ L(self)
                    Some(ta) => {
                        let key = (ta, tb, v * l.variance());
                        if seen.insert(key, ()).is_none() {
                            queue.push_back(key);
                        }
                    }
                }
            }
        }
        true
    }

    /// Structural equality up to bisimulation (language and marks).
    pub fn equivalent(&self, other: &Sketch, lattice: &Lattice) -> bool {
        self.leq(other, lattice) && other.leq(self, lattice)
    }

    /// Renders the sketch with one state per line (cyclic references shown
    /// by state number).
    pub fn render(&self, lattice: &Lattice) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(out, "%{i}: {}", lattice.name(n.mark));
            for (l, t) in &n.edges {
                let _ = write!(out, "  .{l} → %{t}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Computes every sketch state's constant-bound interval `[⋁ lowers, ⋀
/// uppers]` in one batch — the Appendix D.4 queries "which derived type
/// variables are bound above/below by which type constants", asked for all
/// representative words at once.
///
/// The per-state pushdown query `κ ⊑ base.w` (resp. `base.w ⊑ κ`) runs from
/// the constant's covariant entry node and pushes `w` back-to-front (resp.
/// pops `w` front-to-back) interleaved with ε steps, entering/leaving at the
/// `base` node of `w`'s variance. Instead of re-walking the graph per
/// (state, constant) pair, we take the product of the graph with the trie of
/// representative words (`tree_children`):
///
/// * **uppers** — forward sweep from `(base, V)`: ε edges keep the trie
///   state, a pop edge labeled `ℓ` advances to the trie child along `ℓ`.
///   Reaching a constant's covariant node at trie state `s` witnesses
///   `base.w_s ⊑ κ`.
/// * **lowers** — the same sweep on the *reversed* graph (reversed ε and
///   push edges): undoing the pushes of `κ ⇝ base.w_s` consumes `w_s`
///   front-to-back, i.e. exactly a root-to-`s` trie walk. Reaching the
///   constant's covariant node witnesses `κ ⊑ base.w_s`.
///
/// Both sweeps run once per entry variance `V`; a state's bounds are
/// recorded only by the sweep matching its full-word variance (the entry
/// node of its per-state query). The result is bit-identical to the former
/// per-constant `accepts` walks (see the `bounds_match_accepts_oracle`
/// test) at the cost of four product traversals total.
fn solve_bounds(
    g: &ConstraintGraph,
    base: BaseVar,
    lattice: &Lattice,
    consts: &[BaseVar],
    tree_children: &[Vec<(Label, SketchState)>],
    state_variance: &[Variance],
) -> Vec<(LatticeElem, LatticeElem)> {
    let n_states = state_variance.len();
    let mut lowers = vec![lattice.bottom(); n_states];
    let mut uppers = vec![lattice.top(); n_states];
    // Covariant entry nodes of the lattice-resolvable constants the caller
    // asked about (constants outside Λ contribute no bounds, as before).
    let allowed: FxHashSet<Symbol> = consts.iter().map(|b| b.name()).collect();
    let mut const_elem: FxHashMap<u32, LatticeElem> = FxHashMap::default();
    for n in g.nodes() {
        if n.variance() != Variance::Covariant {
            continue;
        }
        let d = g.dtv(n);
        if d.is_empty() && d.base().is_const() && allowed.contains(&d.base().name()) {
            if let Some(e) = lattice.element_sym(d.base().name()) {
                const_elem.insert(n.0, e);
            }
        }
    }
    if const_elem.is_empty() {
        return lowers.into_iter().zip(uppers).collect();
    }
    // Reversed ε / push adjacency for the lower-bound sweeps.
    let nc = g.node_count();
    let mut rev_eps: Vec<Vec<NodeId>> = vec![Vec::new(); nc];
    let mut rev_push: Vec<Vec<(Label, NodeId)>> = vec![Vec::new(); nc];
    for n in g.nodes() {
        for to in g.eps_out(n) {
            rev_eps[to.0 as usize].push(n);
        }
        for &(l, to) in g.push_out(n) {
            rev_push[to.0 as usize].push((l, n));
        }
    }
    let enc = |n: NodeId, s: SketchState| n.0 as usize * n_states + s as usize;
    let child_of = |s: SketchState, l: Label| {
        tree_children[s as usize]
            .iter()
            .find(|&&(cl, _)| cl == l)
            .map(|&(_, c)| c)
    };
    for v in [Variance::Covariant, Variance::Contravariant] {
        let entry = match g.node(&DerivedVar::new(base), v) {
            Some(n) => n,
            None => continue,
        };
        // Upper bounds: forward product sweep popping representative words.
        let mut seen = BitSet::new(nc * n_states);
        let mut stack: Vec<(NodeId, SketchState)> = vec![(entry, 0)];
        seen.insert(enc(entry, 0));
        while let Some((n, s)) = stack.pop() {
            if state_variance[s as usize] == v {
                if let Some(&e) = const_elem.get(&n.0) {
                    uppers[s as usize] = lattice.meet(uppers[s as usize], e);
                }
            }
            for to in g.eps_out(n) {
                if seen.insert(enc(to, s)) {
                    stack.push((to, s));
                }
            }
            for &(l, to) in g.pop_out(n) {
                if let Some(c) = child_of(s, l) {
                    if seen.insert(enc(to, c)) {
                        stack.push((to, c));
                    }
                }
            }
        }
        // Lower bounds: the same sweep over the reversed graph.
        let mut seen = BitSet::new(nc * n_states);
        let mut stack: Vec<(NodeId, SketchState)> = vec![(entry, 0)];
        seen.insert(enc(entry, 0));
        while let Some((n, s)) = stack.pop() {
            if state_variance[s as usize] == v {
                if let Some(&e) = const_elem.get(&n.0) {
                    lowers[s as usize] = lattice.join(lowers[s as usize], e);
                }
            }
            for &m in &rev_eps[n.0 as usize] {
                if seen.insert(enc(m, s)) {
                    stack.push((m, s));
                }
            }
            for &(l, m) in &rev_push[n.0 as usize] {
                if let Some(c) = child_of(s, l) {
                    if seen.insert(enc(m, c)) {
                        stack.push((m, c));
                    }
                }
            }
        }
    }
    lowers.into_iter().zip(uppers).collect()
}

impl fmt::Display for Sketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            write!(f, "%{i}:")?;
            for (l, t) in &n.edges {
                write!(f, " .{l}→%{t}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_constraint_set;
    use crate::saturation::saturate;

    fn infer(src: &str, base: &str) -> (Sketch, Lattice) {
        let cs = parse_constraint_set(src).unwrap();
        let lattice = Lattice::c_types();
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(&cs);
        let consts: Vec<BaseVar> = cs
            .base_vars()
            .into_iter()
            .filter(|b| b.is_const())
            .collect();
        let sk = Sketch::infer(BaseVar::var(base), &g, &quotient, &lattice, &consts)
            .expect("base has a class");
        (sk, lattice)
    }

    fn word(s: &str) -> Vec<Label> {
        crate::parse::parse_derived_var(&format!("x.{s}"))
            .unwrap()
            .path()
            .to_vec()
    }

    #[test]
    fn figure2_like_sketch() {
        // A linked-list handle reader (Figure 2 / Figure 16 shape).
        let src = "
            f.in_stack0 <= t
            t.load.σ32@0 <= t
            t.load.σ32@4 <= #FileDescriptor
        ";
        let (sk, lat) = infer(src, "f");
        assert!(sk.contains_word(&word("in_stack0.load.σ32@0")));
        assert!(sk.contains_word(&word("in_stack0.load.σ32@0.load.σ32@4")));
        // The recursive state folds back: deep words stay in the language.
        assert!(sk.contains_word(&word(
            "in_stack0.load.σ32@0.load.σ32@0.load.σ32@4"
        )));
        // The handle field is marked #FileDescriptor (an upper bound at a
        // contravariant-path... here ⟨in.load.σ⟩ = ⊖, so the mark joins the
        // lower bounds: the field type must be *at most* #FileDescriptor).
        let s = sk.walk(&word("in_stack0.load.σ32@4")).unwrap();
        let mark = sk.mark(s);
        assert_eq!(lat.name(mark), "#FileDescriptor");
    }

    #[test]
    fn no_store_capability_for_const_param() {
        let src = "f.in_stack0 <= p; p.load.σ32@0 <= int";
        let (sk, _) = infer(src, "f");
        assert!(sk.contains_word(&word("in_stack0.load")));
        assert!(!sk.contains_word(&word("in_stack0.store")));
    }

    #[test]
    fn meet_unions_languages() {
        let (a, lat) = infer("f.in_stack0 <= x; x.load <= int", "f");
        let (b, _) = infer("f.out_eax <= y; int <= f.out_eax", "f");
        let m = a.meet(&b, &lat);
        assert!(m.contains_word(&word("in_stack0.load")));
        assert!(m.contains_word(&word("out_eax")));
        // Meet is the lattice glb: m ⊑ a and m ⊑ b.
        assert!(m.leq(&a, &lat));
        assert!(m.leq(&b, &lat));
    }

    #[test]
    fn join_intersects_languages() {
        let (a, lat) = infer("f.in_stack0 <= x; f.out_eax <= y", "f");
        let (b, _) = infer("f.in_stack0 <= z", "f");
        let j = a.join(&b, &lat);
        assert!(j.contains_word(&word("in_stack0")));
        assert!(!j.contains_word(&word("out_eax")));
        assert!(a.leq(&j, &lat));
        assert!(b.leq(&j, &lat));
    }

    #[test]
    fn lattice_laws_on_sketches() {
        let (a, lat) = infer("f.in_stack0 <= x; x.load <= int", "f");
        let (b, _) = infer("f.in_stack0 <= z; int <= z.store", "f");
        let (c, _) = infer("f.out_eax <= w", "f");
        // Idempotence, commutativity, absorption (up to bisimulation).
        assert!(a.meet(&a, &lat).equivalent(&a, &lat));
        assert!(a.join(&a, &lat).equivalent(&a, &lat));
        assert!(a.meet(&b, &lat).equivalent(&b.meet(&a, &lat), &lat));
        assert!(a.join(&b, &lat).equivalent(&b.join(&a, &lat), &lat));
        assert!(a.meet(&a.join(&c, &lat), &lat).equivalent(&a, &lat));
        assert!(a.join(&a.meet(&c, &lat), &lat).equivalent(&a, &lat));
    }

    #[test]
    fn bounds_match_accepts_oracle() {
        // Replicates the pre-batching bound computation — two `accepts`
        // pushdown walks per (state, constant) over the BFS representative
        // words — and checks the swept intervals are bit-identical.
        use crate::transducer::accepts;
        let sources = [
            "f.in_stack0 <= t; t.load.σ32@0 <= t; t.load.σ32@4 <= #FileDescriptor; int <= f.out_eax",
            "f.in_stack0 <= p; p.load.σ32@0 <= int; int32 <= p.store.σ32@0",
            "f.in_stack0 <= x; x <= int32; x <= #FileDescriptor; #SuccessZ <= x",
            "f.out_eax <= y; int32 <= y; y <= float32",
            "a <= f.in_stack0; f.in_stack0.store.σ32@0 <= b; int <= a; b <= uint",
            "int <= p.store.σ32@0; p.load.σ32@0 <= f.out_eax; f.in_stack0 <= p",
        ];
        let lattice = Lattice::c_types();
        for src in sources {
            let cs = parse_constraint_set(src).unwrap();
            let mut g = ConstraintGraph::build(&cs);
            saturate(&mut g);
            let quotient = ShapeQuotient::build(&cs);
            let consts: Vec<BaseVar> = cs
                .base_vars()
                .into_iter()
                .filter(|b| b.is_const())
                .collect();
            let base = BaseVar::var("f");
            let sk =
                Sketch::infer(base, &g, &quotient, &lattice, &consts).expect("f has a class");
            // Re-run the state BFS to recover the representative words.
            let root_class = quotient.walk(base, &[]).unwrap();
            let mut index: FxHashMap<(ClassId, Variance), u32> = FxHashMap::default();
            let mut reps: Vec<Vec<Label>> = vec![Vec::new()];
            let mut queue: VecDeque<(ClassId, Variance)> = VecDeque::new();
            index.insert((root_class, Variance::Covariant), 0);
            queue.push_back((root_class, Variance::Covariant));
            while let Some((c, v)) = queue.pop_front() {
                let sid = index[&(c, v)];
                let rep = reps[sid as usize].clone();
                for (l, tc) in quotient.successors(c) {
                    let tv = v * l.variance();
                    if !index.contains_key(&(tc, tv)) {
                        index.insert((tc, tv), reps.len() as u32);
                        let mut w = rep.clone();
                        w.push(l);
                        reps.push(w);
                        queue.push_back((tc, tv));
                    }
                }
            }
            assert_eq!(reps.len(), sk.len(), "state count, src={src}");
            for word in &reps {
                let dv = DerivedVar::with_path(base, word.clone());
                let mut lower = lattice.bottom();
                let mut upper = lattice.top();
                for &k in &consts {
                    let kd = DerivedVar::new(k);
                    let ke = match lattice.element_sym(k.name()) {
                        Some(e) => e,
                        None => continue,
                    };
                    if accepts(&g, &kd, &dv) {
                        lower = lattice.join(lower, ke);
                    }
                    if accepts(&g, &dv, &kd) {
                        upper = lattice.meet(upper, ke);
                    }
                }
                let sid = sk.walk(word).expect("rep word in language");
                assert_eq!(
                    sk.interval(sid),
                    (lower, upper),
                    "src = {src}, word = {word:?}"
                );
            }
        }
    }

    #[test]
    fn top_is_greatest() {
        let (a, lat) = infer("f.in_stack0 <= x; x.load <= int", "f");
        let top = Sketch::top(&lat);
        assert!(a.leq(&top, &lat));
        assert!(!top.leq(&a, &lat));
    }
}
