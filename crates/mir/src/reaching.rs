//! Reaching definitions for registers and entry-relative stack slots.
//!
//! This is the flow-sensitive backbone of constraint generation
//! (Appendix A, Example A.2): a register use at a program point maps to
//! type variables tagged with the *definitions* that reach it, which is
//! what protects the analysis from the stack-slot-reuse and
//! fortuitous-value-reuse idioms of §2.1.

use std::collections::{BTreeSet, HashMap};

use crate::cfg::Cfg;
use crate::isa::{Inst, Operand, Reg};
use crate::program::Function;
use crate::stack::{FrameInfo, Loc32};

/// A dataflow location: a register or an entry-relative stack slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Location {
    /// A register.
    Reg(Reg),
    /// An entry-relative stack slot.
    Slot(Loc32),
}

/// A definition site.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DefSite {
    /// The location holds its function-entry value (formal parameters).
    Entry,
    /// Defined by the instruction at this index.
    Inst(usize),
}

type Defs = HashMap<Location, BTreeSet<DefSite>>;

/// Reaching-definition sets before every instruction.
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    ins: Vec<Defs>,
}

/// The registers clobbered by a cdecl call (caller-saved).
pub const CALL_CLOBBERED: [Reg; 3] = [Reg::Eax, Reg::Ecx, Reg::Edx];

impl ReachingDefs {
    /// Computes reaching definitions for a function.
    pub fn compute(f: &Function, cfg: &Cfg, frame: &FrameInfo) -> ReachingDefs {
        let n = f.insts.len();
        let mut ins: Vec<Defs> = vec![Defs::new(); n];
        if n == 0 {
            return ReachingDefs { ins };
        }
        // Entry state: every register and every referenced non-negative
        // slot holds its entry value.
        let mut entry = Defs::new();
        for r in Reg::ALL {
            entry.insert(Location::Reg(r), BTreeSet::from([DefSite::Entry]));
        }
        for i in 0..n {
            for loc in referenced_slots(f, frame, i) {
                entry
                    .entry(Location::Slot(loc))
                    .or_insert_with(|| BTreeSet::from([DefSite::Entry]));
            }
        }

        let nb = cfg.len();
        let mut bin: Vec<Option<Defs>> = vec![None; nb];
        bin[0] = Some(entry);
        let order = cfg.reverse_postorder();
        loop {
            let mut changed = false;
            for &b in &order {
                let Some(state) = bin[b.0].clone() else {
                    continue;
                };
                let blk = &cfg.blocks()[b.0];
                let mut cur = state;
                for i in blk.start..blk.end {
                    if ins[i] != cur {
                        // Merge (monotone union).
                        let mut merged = ins[i].clone();
                        for (k, v) in &cur {
                            merged.entry(*k).or_default().extend(v.iter().copied());
                        }
                        if merged != ins[i] {
                            ins[i] = merged;
                            changed = true;
                        }
                    }
                    cur = ins[i].clone();
                    apply(f, frame, i, &mut cur);
                }
                for s in &blk.succs {
                    let nv = match &bin[s.0] {
                        None => cur.clone(),
                        Some(old) => {
                            let mut m = old.clone();
                            for (k, v) in &cur {
                                m.entry(*k).or_default().extend(v.iter().copied());
                            }
                            m
                        }
                    };
                    if bin[s.0].as_ref() != Some(&nv) {
                        bin[s.0] = Some(nv);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        ReachingDefs { ins }
    }

    /// Definitions of `loc` reaching instruction `i`.
    pub fn reaching(&self, i: usize, loc: Location) -> Vec<DefSite> {
        self.ins[i]
            .get(&loc)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// True if the entry value of `loc` can reach instruction `i`.
    pub fn entry_reaches(&self, i: usize, loc: Location) -> bool {
        self.reaching(i, loc).contains(&DefSite::Entry)
    }
}

fn referenced_slots(f: &Function, frame: &FrameInfo, i: usize) -> Vec<Loc32> {
    let mut out = Vec::new();
    match &f.insts[i] {
        Inst::Load { addr, .. } | Inst::Store { addr, .. } | Inst::Lea { addr, .. } => {
            if let Some(s) = frame.resolve(i, addr) {
                out.push(s);
            }
        }
        Inst::Push(_) => {
            if let Some(s) = frame.push_slot(i) {
                out.push(s);
            }
        }
        Inst::Pop(_) => {
            if let Some(s) = frame.pop_slot(i) {
                out.push(s);
            }
        }
        _ => {}
    }
    out
}

/// The locations written by instruction `i` (used to kill + gen defs).
pub fn defs_of(f: &Function, frame: &FrameInfo, i: usize) -> Vec<Location> {
    match &f.insts[i] {
        Inst::Mov { dst, .. } | Inst::Load { dst, .. } | Inst::Lea { dst, .. } => {
            vec![Location::Reg(*dst)]
        }
        Inst::Store { addr, .. } => frame
            .resolve(i, addr)
            .map(|s| vec![Location::Slot(s)])
            .unwrap_or_default(),
        Inst::Push(_) => {
            let mut v = vec![Location::Reg(Reg::Esp)];
            if let Some(s) = frame.push_slot(i) {
                v.push(Location::Slot(s));
            }
            v
        }
        Inst::Pop(dst) => vec![Location::Reg(*dst), Location::Reg(Reg::Esp)],
        Inst::Bin { dst, .. } => vec![Location::Reg(*dst)],
        Inst::Call(_) => CALL_CLOBBERED.iter().map(|&r| Location::Reg(r)).collect(),
        _ => Vec::new(),
    }
}

/// The locations read by instruction `i`.
pub fn uses_of(f: &Function, frame: &FrameInfo, i: usize) -> Vec<Location> {
    let mut out = Vec::new();
    let use_op = |o: &Operand, out: &mut Vec<Location>| {
        if let Operand::Reg(r) = o {
            out.push(Location::Reg(*r));
        }
    };
    match &f.insts[i] {
        Inst::Mov { src, .. } => use_op(src, &mut out),
        Inst::Load { addr, .. } => {
            out.push(Location::Reg(addr.base));
            if let Some(s) = frame.resolve(i, addr) {
                out.push(Location::Slot(s));
            }
        }
        Inst::Store { addr, src, .. } => {
            out.push(Location::Reg(addr.base));
            use_op(src, &mut out);
        }
        Inst::Lea { addr, .. } => out.push(Location::Reg(addr.base)),
        Inst::Push(src) => use_op(src, &mut out),
        Inst::Pop(_) => {
            if let Some(s) = frame.pop_slot(i) {
                out.push(Location::Slot(s));
            }
        }
        Inst::Bin { op, dst, src } => {
            // `xor r, r` defines a constant; it does not read r (§A.5.2).
            let self_clear =
                *op == crate::isa::BinOp::Xor && *src == Operand::Reg(*dst);
            if !self_clear {
                out.push(Location::Reg(*dst));
                use_op(src, &mut out);
            }
        }
        Inst::Cmp { a, b } => {
            out.push(Location::Reg(*a));
            use_op(b, &mut out);
        }
        Inst::Test { a, b } => {
            out.push(Location::Reg(*a));
            out.push(Location::Reg(*b));
        }
        Inst::Ret => out.push(Location::Reg(Reg::Eax)),
        _ => {}
    }
    out
}

fn apply(f: &Function, frame: &FrameInfo, i: usize, state: &mut Defs) {
    for d in defs_of(f, frame, i) {
        state.insert(d, BTreeSet::from([DefSite::Inst(i)]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BinOp, Cond, Mem};

    fn analyze(f: &Function) -> (Cfg, FrameInfo, ReachingDefs) {
        let cfg = Cfg::build(f);
        let frame = FrameInfo::compute(f, &cfg);
        let rd = ReachingDefs::compute(f, &cfg, &frame);
        (cfg, frame, rd)
    }

    #[test]
    fn straight_line_defs() {
        let f = Function::new(
            "f",
            vec![
                Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(1),
                }, // 0
                Inst::Mov {
                    dst: Reg::Ebx,
                    src: Operand::Reg(Reg::Eax),
                }, // 1
                Inst::Ret, // 2
            ],
        );
        let (_, _, rd) = analyze(&f);
        assert_eq!(
            rd.reaching(1, Location::Reg(Reg::Eax)),
            vec![DefSite::Inst(0)]
        );
        assert!(rd.entry_reaches(0, Location::Reg(Reg::Eax)));
        assert!(!rd.entry_reaches(2, Location::Reg(Reg::Eax)));
    }

    #[test]
    fn joins_merge_defs() {
        // Fortuitous-reuse shape (§2.1): eax defined on two paths.
        let f = Function::new(
            "g",
            vec![
                Inst::Cmp {
                    a: Reg::Ecx,
                    b: Operand::Imm(0),
                }, // 0
                Inst::Jcc {
                    cond: Cond::Eq,
                    target: 3,
                }, // 1
                Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(1),
                }, // 2
                Inst::Nop, // 3 (join)
                Inst::Ret, // 4
            ],
        );
        let (_, _, rd) = analyze(&f);
        let defs = rd.reaching(4, Location::Reg(Reg::Eax));
        assert!(defs.contains(&DefSite::Inst(2)));
        assert!(defs.contains(&DefSite::Entry));
    }

    #[test]
    fn stack_slot_reuse_keeps_defs_apart() {
        // Write arg slot late (§2.1 stack-slot reuse): the read at 1 sees
        // Entry, the read at 3 sees the new def.
        let f = Function::new(
            "h",
            vec![
                Inst::Nop, // 0
                Inst::Load {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Esp, 4),
                    size: 4,
                }, // 1: read arg0
                Inst::Store {
                    addr: Mem::new(Reg::Esp, 4),
                    src: Operand::Imm(7),
                    size: 4,
                }, // 2: overwrite arg0 slot
                Inst::Load {
                    dst: Reg::Ebx,
                    addr: Mem::new(Reg::Esp, 4),
                    size: 4,
                }, // 3: read the reused slot
                Inst::Ret,
            ],
        );
        let (_, _, rd) = analyze(&f);
        let slot = Location::Slot(Loc32(4));
        assert_eq!(rd.reaching(1, slot), vec![DefSite::Entry]);
        assert_eq!(rd.reaching(3, slot), vec![DefSite::Inst(2)]);
    }

    #[test]
    fn xor_self_is_not_a_use() {
        let f = Function::new(
            "k",
            vec![
                Inst::Bin {
                    op: BinOp::Xor,
                    dst: Reg::Eax,
                    src: Operand::Reg(Reg::Eax),
                }, // 0
                Inst::Ret,
            ],
        );
        let cfg = Cfg::build(&f);
        let frame = FrameInfo::compute(&f, &cfg);
        assert!(uses_of(&f, &frame, 0).is_empty());
        assert_eq!(defs_of(&f, &frame, 0), vec![Location::Reg(Reg::Eax)]);
    }

    #[test]
    fn calls_clobber_caller_saved() {
        let f = Function::new(
            "m",
            vec![
                Inst::Mov {
                    dst: Reg::Eax,
                    src: Operand::Imm(5),
                }, // 0
                Inst::Call(crate::program::CallKind::External("ext".into())), // 1
                Inst::Ret, // 2
            ],
        );
        let (_, _, rd) = analyze(&f);
        assert_eq!(
            rd.reaching(2, Location::Reg(Reg::Eax)),
            vec![DefSite::Inst(1)]
        );
    }
}
