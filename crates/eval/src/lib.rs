//! # retypd-eval
//!
//! The evaluation harness: everything needed to regenerate the tables and
//! figures of the paper's §6 on the synthetic corpus.
//!
//! * [`front`] — runs the full Retypd pipeline and converts its sketches
//!   into the shared [`retypd_baselines::InfTy`] representation.
//! * [`metrics`] — the TIE evaluation metrics (distance, interval size,
//!   conservativeness), SecondWrite's multi-level pointer accuracy, and
//!   the §6.4 const-recall metric.
//! * [`harness`] — compiles mini-C modules, runs all three tools, and
//!   scores them against ground truth.
//! * [`fit`] — the `T = α·N^β` power-law regression of Figures 11–12
//!   (numerically fitted in linear space, as the paper's note specifies).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fit;
pub mod front;
pub mod harness;
pub mod metrics;

pub use fit::{fit_power_law, PowerLawFit};
pub use front::infer_retypd;
pub use harness::{evaluate_module, BenchResult, ToolScores};
pub use metrics::{score, ToolMetrics};
