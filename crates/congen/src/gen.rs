//! The per-procedure constraint generator (Appendix A).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use retypd_core::fxhash::FxHashMap;
use retypd_core::{
    AddSubConstraint, AddSubKind, BaseVar, CallTarget, Callsite, ConstraintSet, DerivedVar,
    Label, Loc, Procedure, Symbol,
};
use retypd_mir::cfg::Cfg;
use retypd_mir::isa::{BinOp, Inst, Operand, Reg};
use retypd_mir::program::{CallKind, Function, Program as MirProgram};
use retypd_mir::reaching::{uses_of, DefSite, Location, ReachingDefs};
use retypd_mir::stack::{FrameInfo, Loc32};

use crate::stdlib::{standard_externals, ExternalModel};

/// Recovered interface of a procedure: the "locators" of Appendix A.4.
#[derive(Clone, Debug, Default)]
pub struct FuncSummary {
    /// Formal-in locations.
    pub ins: Vec<Loc>,
    /// True if the procedure returns a value in `eax`.
    pub has_out: bool,
}

/// Generates a whole-program constraint system with the standard external
/// models.
pub fn generate(mir: &MirProgram) -> retypd_core::Program {
    generate_with_externals(mir, &standard_externals())
}

/// Generates a whole-program constraint system with the given external
/// models.
pub fn generate_with_externals(
    mir: &MirProgram,
    externals: &BTreeMap<Symbol, ExternalModel>,
) -> retypd_core::Program {
    // Phase 1: analyses and interface recovery for every function.
    let mut analyses = Vec::with_capacity(mir.funcs.len());
    let mut summaries = Vec::with_capacity(mir.funcs.len());
    for f in &mir.funcs {
        let cfg = Cfg::build(f);
        let frame = FrameInfo::compute(f, &cfg);
        let rd = ReachingDefs::compute(f, &cfg, &frame);
        let summary = recover_interface(f, &frame, &rd);
        analyses.push((cfg, frame, rd));
        summaries.push(summary);
    }
    // Phase 2: constraint emission. The register-name table is interned
    // once for the whole generation (each `FuncGen` used to rescan
    // `Reg::ALL` per formal and per call argument), and procedures go
    // through `add_proc` so the program's name → index map is populated for
    // downstream by-name lookups.
    let regs: FxHashMap<Symbol, Reg> = Reg::ALL
        .iter()
        .map(|&r| (Symbol::intern(r.name()), r))
        .collect();
    let mut program = retypd_core::Program::new();
    for (idx, f) in mir.funcs.iter().enumerate() {
        let (_, frame, rd) = &analyses[idx];
        let gen = FuncGen::new(f, frame, rd, &summaries, externals, mir, &regs);
        program.add_proc(gen.run(&summaries[idx]));
    }
    for (name, model) in externals {
        program.externals.insert(*name, model.scheme.clone());
    }
    program
}

/// Recovers formal-in locations and output presence from the analyses.
pub fn recover_interface(f: &Function, frame: &FrameInfo, rd: &ReachingDefs) -> FuncSummary {
    let mut stack_ins: BTreeSet<u32> = BTreeSet::new();
    let mut reg_ins: BTreeSet<Reg> = BTreeSet::new();
    let mut has_out = false;
    for (i, inst) in f.insts.iter().enumerate() {
        for u in uses_of(f, frame, i) {
            match u {
                Location::Slot(Loc32(s)) if s >= 4 => {
                    if rd.entry_reaches(i, u) {
                        stack_ins.insert((s - 4) as u32);
                    }
                }
                Location::Reg(r) if r != Reg::Esp && r != Reg::Ebp => {
                    if !rd.entry_reaches(i, u) {
                        continue;
                    }
                    // The save/restore prologue pattern for callee-saved
                    // registers is not a parameter; a bare `push ecx` (slot
                    // reservation, §2.5) deliberately remains one.
                    let is_push = matches!(inst, Inst::Push(_));
                    let callee_saved = matches!(r, Reg::Ebx | Reg::Esi | Reg::Edi);
                    if is_push && callee_saved {
                        continue;
                    }
                    if matches!(inst, Inst::Ret) {
                        continue; // eax-at-ret is the output, not an input
                    }
                    reg_ins.insert(r);
                }
                _ => {}
            }
        }
        if matches!(inst, Inst::Ret) {
            let defs = rd.reaching(i, Location::Reg(Reg::Eax));
            if defs.iter().any(|d| matches!(d, DefSite::Inst(_))) {
                has_out = true;
            }
        }
    }
    let mut ins: Vec<Loc> = stack_ins.into_iter().map(Loc::Stack).collect();
    ins.extend(reg_ins.into_iter().map(|r| Loc::reg(r.name())));
    FuncSummary { ins, has_out }
}

struct FuncGen<'a> {
    f: &'a Function,
    frame: &'a FrameInfo,
    rd: &'a ReachingDefs,
    summaries: &'a [FuncSummary],
    externals: &'a BTreeMap<Symbol, ExternalModel>,
    mir: &'a MirProgram,
    /// Interned register-name table (built once per generation).
    regs: &'a FxHashMap<Symbol, Reg>,
    cs: ConstraintSet,
    callsites: Vec<Callsite>,
    /// Slots whose address is taken: typed flow-insensitively.
    escaped: BTreeSet<i32>,
    /// Formal locations, for naming entry definitions.
    formal_slots: BTreeMap<i32, Loc>,
    formal_regs: BTreeMap<Reg, Loc>,
    /// Constant-offset aliases: `var ↦ (root, byte offset)` from pointer
    /// arithmetic with statically known offsets (the `.+n` tracking of
    /// Appendix A.2, folded into the abstract domain).
    alias: HashMap<BaseVar, (DerivedVar, i32)>,
    fresh: usize,
}

impl<'a> FuncGen<'a> {
    fn new(
        f: &'a Function,
        frame: &'a FrameInfo,
        rd: &'a ReachingDefs,
        summaries: &'a [FuncSummary],
        externals: &'a BTreeMap<Symbol, ExternalModel>,
        mir: &'a MirProgram,
        regs: &'a FxHashMap<Symbol, Reg>,
    ) -> FuncGen<'a> {
        FuncGen {
            f,
            frame,
            rd,
            summaries,
            externals,
            mir,
            regs,
            cs: ConstraintSet::new(),
            callsites: Vec::new(),
            escaped: BTreeSet::new(),
            formal_slots: BTreeMap::new(),
            formal_regs: BTreeMap::new(),
            alias: HashMap::new(),
            fresh: 0,
        }
    }

    fn run(mut self, summary: &FuncSummary) -> Procedure {
        for loc in &summary.ins {
            match loc {
                Loc::Stack(k) => {
                    self.formal_slots.insert(*k as i32 + 4, *loc);
                }
                Loc::Reg(r) => {
                    if let Some(&reg) = self.regs.get(r) {
                        self.formal_regs.insert(reg, *loc);
                    }
                }
            }
        }
        // Escaped-slot discovery.
        for (i, inst) in self.f.insts.iter().enumerate() {
            if let Inst::Lea { addr, .. } = inst {
                if let Some(Loc32(s)) = self.frame.resolve(i, addr) {
                    self.escaped.insert(s);
                }
            }
        }
        for i in 0..self.f.insts.len() {
            self.emit(i, summary);
        }
        Procedure {
            name: Symbol::intern(&self.f.name),
            constraints: self.cs,
            callsites: self.callsites,
        }
    }

    fn fresh_var(&mut self, hint: &str) -> BaseVar {
        self.fresh += 1;
        BaseVar::var(&format!("{}::{hint}_{}", self.f.name, self.fresh))
    }

    fn proc_var(&self) -> BaseVar {
        BaseVar::var(&self.f.name)
    }

    fn loc_name(loc: Location) -> String {
        match loc {
            Location::Reg(r) => r.name().to_owned(),
            Location::Slot(Loc32(s)) if s >= 0 => format!("sp{s}"),
            Location::Slot(Loc32(s)) => format!("sm{}", -s),
        }
    }

    /// The variable holding `loc` as defined at `site`.
    fn def_var(&self, loc: Location, site: DefSite) -> DerivedVar {
        // Escaped slots are flow-insensitive.
        if let Location::Slot(Loc32(s)) = loc {
            if self.escaped.contains(&s) {
                if let Some(formal) = self.formal_slots.get(&s) {
                    return DerivedVar::new(self.proc_var()).push(Label::In(*formal));
                }
                return DerivedVar::var(&format!(
                    "{}::stack{}",
                    self.f.name,
                    Self::loc_name(loc)
                ));
            }
        }
        match site {
            DefSite::Entry => {
                match loc {
                    Location::Slot(Loc32(s)) => {
                        if let Some(formal) = self.formal_slots.get(&s) {
                            return DerivedVar::new(self.proc_var()).push(Label::In(*formal));
                        }
                    }
                    Location::Reg(r) => {
                        if let Some(formal) = self.formal_regs.get(&r) {
                            return DerivedVar::new(self.proc_var()).push(Label::In(*formal));
                        }
                    }
                }
                DerivedVar::var(&format!("{}::{}_in", self.f.name, Self::loc_name(loc)))
            }
            DefSite::Inst(i) => {
                DerivedVar::var(&format!("{}::{}_{}", self.f.name, Self::loc_name(loc), i))
            }
        }
    }

    /// The variable for a *use* of `loc` at instruction `i`; joins multiple
    /// reaching definitions through a fresh variable (Example A.2).
    fn read(&mut self, i: usize, loc: Location) -> DerivedVar {
        if let Location::Slot(Loc32(s)) = loc {
            if self.escaped.contains(&s) {
                return self.def_var(loc, DefSite::Entry);
            }
        }
        let defs = self.rd.reaching(i, loc);
        match defs.len() {
            0 => DerivedVar::new(self.fresh_var(&format!("u{}", Self::loc_name(loc)))),
            1 => self.def_var(loc, defs[0]),
            _ => {
                let t = DerivedVar::new(
                    self.fresh_var(&format!("j{}_{}", Self::loc_name(loc), i)),
                );
                for d in defs {
                    let dv = self.def_var(loc, d);
                    self.cs.add_sub(dv, t.clone());
                }
                t
            }
        }
    }

    /// Resolves pointer-arithmetic aliases: the root variable and folded
    /// byte offset of `v`.
    fn resolve_alias(&self, v: &DerivedVar) -> (DerivedVar, i32) {
        if v.is_empty() {
            if let Some((root, off)) = self.alias.get(&v.base()) {
                return (root.clone(), *off);
            }
        }
        (v.clone(), 0)
    }

    fn read_operand(&mut self, i: usize, op: &Operand) -> Option<DerivedVar> {
        match op {
            Operand::Reg(r) => Some(self.read(i, Location::Reg(*r))),
            Operand::Imm(_) => None, // semi-syntactic constants stay untyped
        }
    }

    fn emit(&mut self, i: usize, summary: &FuncSummary) {
        let inst = self.f.insts[i].clone();
        match inst {
            Inst::Mov { dst, src } => {
                if let Some(rv) = self.read_operand(i, &src) {
                    let dv = self.def_var(Location::Reg(dst), DefSite::Inst(i));
                    // Propagate pointer-offset aliases through copies.
                    let (root, off) = self.resolve_alias(&rv);
                    self.alias.insert(dv.base(), (root, off));
                    self.cs.add_sub(rv, dv);
                }
            }
            Inst::Load { dst, addr, size } => {
                let dv = self.def_var(Location::Reg(dst), DefSite::Inst(i));
                match self.frame.resolve(i, &addr) {
                    Some(Loc32(s)) => {
                        let rv = self.read(i, Location::Slot(Loc32(s)));
                        self.cs.add_sub(rv, dv);
                    }
                    None => {
                        if addr.base == Reg::Esp || addr.base == Reg::Ebp {
                            return; // unknown frame offset: no constraint
                        }
                        let p = self.read(i, Location::Reg(addr.base));
                        let (root, off) = self.resolve_alias(&p);
                        let field = root
                            .push(Label::Load)
                            .push(Label::sigma(8 * size as u16, off + addr.disp));
                        self.cs.add_sub(field, dv);
                    }
                }
            }
            Inst::Store { addr, src, size } => {
                let rv = self.read_operand(i, &src);
                match self.frame.resolve(i, &addr) {
                    Some(Loc32(s)) => {
                        if let Some(rv) = rv {
                            let dv =
                                self.def_var(Location::Slot(Loc32(s)), DefSite::Inst(i));
                            self.cs.add_sub(rv, dv);
                        }
                    }
                    None => {
                        if addr.base == Reg::Esp || addr.base == Reg::Ebp {
                            return;
                        }
                        let p = self.read(i, Location::Reg(addr.base));
                        let (root, off) = self.resolve_alias(&p);
                        let field = root
                            .push(Label::Store)
                            .push(Label::sigma(8 * size as u16, off + addr.disp));
                        if let Some(rv) = rv {
                            self.cs.add_sub(rv, field);
                        } else {
                            // Storing a constant still writes the field.
                            self.cs.add_var_decl(field);
                        }
                    }
                }
            }
            Inst::Lea { dst, addr } => {
                let dv = self.def_var(Location::Reg(dst), DefSite::Inst(i));
                match self.frame.resolve(i, &addr) {
                    Some(Loc32(s)) => {
                        // Address of a local: dst is a pointer to the
                        // (flow-insensitive) slot variable.
                        let slot = self.def_var(Location::Slot(Loc32(s)), DefSite::Entry);
                        self.cs.add_sub(
                            slot.clone(),
                            dv.clone().push(Label::Load).push(Label::sigma(32, 0)),
                        );
                        self.cs
                            .add_sub(dv.push(Label::Store).push(Label::sigma(32, 0)), slot);
                    }
                    None => {
                        // Address of a field: offset alias of the base.
                        let p = self.read(i, Location::Reg(addr.base));
                        let (root, off) = self.resolve_alias(&p);
                        self.alias.insert(dv.base(), (root, off + addr.disp));
                    }
                }
            }
            Inst::Push(src) => {
                if let Some(Loc32(s)) = self.frame.push_slot(i) {
                    if let Some(rv) = self.read_operand(i, &src) {
                        let dv = self.def_var(Location::Slot(Loc32(s)), DefSite::Inst(i));
                        let (root, off) = self.resolve_alias(&rv);
                        self.alias.insert(dv.base(), (root, off));
                        self.cs.add_sub(rv, dv);
                    }
                }
            }
            Inst::Pop(dst) => {
                if dst == Reg::Esp || dst == Reg::Ebp {
                    return;
                }
                if let Some(slot) = self.frame.pop_slot(i) {
                    let rv = self.read(i, Location::Slot(slot));
                    let dv = self.def_var(Location::Reg(dst), DefSite::Inst(i));
                    self.cs.add_sub(rv, dv);
                }
            }
            Inst::Bin { op, dst, src } => {
                if dst == Reg::Esp || dst == Reg::Ebp {
                    return; // stack adjustment, handled by FrameInfo
                }
                self.emit_bin(i, op, dst, &src);
            }
            Inst::Cmp { .. } | Inst::Test { .. } => {
                // Flag-only: constraints discarded (§A.5.2).
            }
            Inst::Call(kind) => self.emit_call(i, &kind),
            Inst::Ret => {
                if summary.has_out {
                    let rv = self.read(i, Location::Reg(Reg::Eax));
                    let out = DerivedVar::new(self.proc_var())
                        .push(Label::Out(Loc::reg("eax")));
                    self.cs.add_sub(rv, out);
                }
            }
            Inst::Jmp(_) | Inst::Jcc { .. } | Inst::Nop => {}
        }
    }

    fn emit_bin(&mut self, i: usize, op: BinOp, dst: Reg, src: &Operand) {
        let dv = self.def_var(Location::Reg(dst), DefSite::Inst(i));
        match (op, src) {
            // xor r, r: a semi-syntactic zero (§2.1) — no constraints.
            (BinOp::Xor, Operand::Reg(s)) if *s == dst => {}
            // Alignment masks and tag bits preserve the value's type
            // (bit-stealing, §2.6 / A.5.2).
            (BinOp::And, Operand::Imm(k)) if is_alignment_mask(*k) => {
                let rv = self.read(i, Location::Reg(dst));
                let (root, off) = self.resolve_alias(&rv);
                self.alias.insert(dv.base(), (root, off));
                self.cs.add_sub(rv, dv);
            }
            (BinOp::Or, Operand::Imm(k)) if (1..=3).contains(k) => {
                let rv = self.read(i, Location::Reg(dst));
                let (root, off) = self.resolve_alias(&rv);
                self.alias.insert(dv.base(), (root, off));
                self.cs.add_sub(rv, dv);
            }
            // Constant add/sub: fold the offset (the `.+n` tracking of
            // A.2) and classify via an additive constraint whose second
            // operand is a known integer.
            (BinOp::Add | BinOp::Sub, Operand::Imm(k)) => {
                let rv = self.read(i, Location::Reg(dst));
                let (root, off) = self.resolve_alias(&rv);
                let delta = if op == BinOp::Add { *k as i32 } else { -(*k as i32) };
                self.alias.insert(dv.base(), (root, off + delta));
                let int_const = DerivedVar::constant("int32");
                self.cs.add_addsub(AddSubConstraint {
                    kind: if op == BinOp::Add {
                        AddSubKind::Add
                    } else {
                        AddSubKind::Sub
                    },
                    x: rv,
                    y: int_const,
                    z: dv,
                });
            }
            (BinOp::Add | BinOp::Sub, Operand::Reg(s)) => {
                let rx = self.read(i, Location::Reg(dst));
                let ry = self.read(i, Location::Reg(*s));
                self.cs.add_addsub(AddSubConstraint {
                    kind: if op == BinOp::Add {
                        AddSubKind::Add
                    } else {
                        AddSubKind::Sub
                    },
                    x: rx,
                    y: ry,
                    z: dv,
                });
            }
            // Remaining bit manipulation: integral results (A.5.2).
            _ => {
                self.cs.add_sub(dv, DerivedVar::constant("int32"));
            }
        }
    }

    fn emit_call(&mut self, i: usize, kind: &CallKind) {
        let (callee_name, model_ins, has_out, target) = match kind {
            CallKind::Direct(id) => {
                let callee = &self.mir.funcs[id.0];
                let s = &self.summaries[id.0];
                (
                    callee.name.clone(),
                    s.ins.clone(),
                    s.has_out,
                    CallTarget::Internal(id.0),
                )
            }
            CallKind::External(name) => {
                let sym = Symbol::intern(name);
                match self.externals.get(&sym) {
                    Some(m) => (name.clone(), m.ins.clone(), m.has_out, CallTarget::External(sym)),
                    None => return, // unknown external: no constraints
                }
            }
        };
        let tag = format!("{}_{i}", self.f.name);
        let callee_var = BaseVar::var(&format!("{callee_name}@{tag}"));
        let esp = self.frame.esp_delta[i];
        for loc in &model_ins {
            let formal = DerivedVar::new(callee_var).push(Label::In(*loc));
            match loc {
                Loc::Stack(k) => {
                    let Some(d) = esp else { continue };
                    let slot = Loc32(d + *k as i32);
                    let rv = self.read(i, Location::Slot(slot));
                    self.cs.add_sub(rv, formal);
                }
                Loc::Reg(r) => {
                    if let Some(&reg) = self.regs.get(r) {
                        let rv = self.read(i, Location::Reg(reg));
                        self.cs.add_sub(rv, formal);
                    }
                }
            }
        }
        if has_out {
            let out = DerivedVar::new(callee_var).push(Label::Out(Loc::reg("eax")));
            let dv = self.def_var(Location::Reg(Reg::Eax), DefSite::Inst(i));
            self.cs.add_sub(out, dv);
        }
        self.callsites.push(Callsite { callee: target, tag });
    }
}

/// True for `and` masks that clear a few low bits (pointer alignment).
fn is_alignment_mask(k: i64) -> bool {
    let k = k as i32;
    matches!(k, -2 | -4 | -8 | -16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use retypd_core::{Lattice, Solver};
    use retypd_mir::isa::{Cond, Mem};

    /// Builds the Figure 2 `close_last` listing.
    ///
    /// ```text
    /// close_last:
    ///   mov edx, [esp+4]        ; list
    /// loc_8048402 (3):
    ///   mov eax, [edx]          ; list->next
    ///   test eax, eax
    ///   jnz loc_8048400 (2)     ; edx := eax; loop
    ///   mov eax, [edx+4]        ; list->handle
    ///   mov [esp+4], eax        ; stack-slot reuse!
    ///   call close              ; tail call (modeled as call+ret)
    ///   ret
    /// ```
    fn close_last() -> MirProgram {
        let mut p = MirProgram::new();
        p.add(Function::new(
            "close_last",
            vec![
                // 0: mov edx, [esp+4]
                Inst::Load {
                    dst: Reg::Edx,
                    addr: Mem::new(Reg::Esp, 4),
                    size: 4,
                },
                // 1: jmp 3
                Inst::Jmp(3),
                // 2: mov edx, eax
                Inst::Mov {
                    dst: Reg::Edx,
                    src: Operand::Reg(Reg::Eax),
                },
                // 3: mov eax, [edx]
                Inst::Load {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Edx, 0),
                    size: 4,
                },
                // 4: test eax, eax
                Inst::Test {
                    a: Reg::Eax,
                    b: Reg::Eax,
                },
                // 5: jnz 2
                Inst::Jcc {
                    cond: Cond::Ne,
                    target: 2,
                },
                // 6: mov eax, [edx+4]
                Inst::Load {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Edx, 4),
                    size: 4,
                },
                // 7: mov [esp+4], eax  (reuses the argument slot)
                Inst::Store {
                    addr: Mem::new(Reg::Esp, 4),
                    src: Operand::Reg(Reg::Eax),
                    size: 4,
                },
                // 8: push eax (argument to close)
                Inst::Push(Operand::Reg(Reg::Eax)),
                // 9: call close
                Inst::Call(CallKind::External("close".into())),
                // 10: add esp, 4
                Inst::Bin {
                    op: BinOp::Add,
                    dst: Reg::Esp,
                    src: Operand::Imm(4),
                },
                // 11: ret
                Inst::Ret,
            ],
        ));
        p
    }

    #[test]
    fn close_last_interface() {
        let mir = close_last();
        let prog = generate(&mir);
        let proc = &prog.procs[0];
        assert_eq!(proc.name.as_str(), "close_last");
        assert_eq!(proc.callsites.len(), 1);
        let printed = proc.constraints.to_string();
        // The argument is read through in_stack0 and dereferenced.
        assert!(printed.contains("close_last.in_stack0"), "{printed}");
        assert!(printed.contains("load.σ32@0"), "{printed}");
        assert!(printed.contains("load.σ32@4"), "{printed}");
        // The handle flows to close's first argument.
        assert!(printed.contains("close@close_last_9.in_stack0"), "{printed}");
    }

    #[test]
    fn close_last_end_to_end_types() {
        let mir = close_last();
        let prog = generate(&mir);
        let lattice = Lattice::c_types();
        let result = Solver::new(&lattice).infer(&prog);
        let r = &result.procs[&Symbol::intern("close_last")];
        let sk = r.sketch.as_ref().expect("sketch");
        let w = |s: &str| {
            retypd_core::parse::parse_derived_var(&format!("x.{s}"))
                .unwrap()
                .path()
                .to_vec()
        };
        // Recursive list structure: next pointer at offset 0.
        assert!(
            sk.contains_word(&w("in_stack0.load.σ32@0.load.σ32@0")),
            "sketch:\n{}",
            sk.render(&lattice)
        );
        // The handle field reaches #FileDescriptor.
        let handle = sk
            .walk(&w("in_stack0.load.σ32@4"))
            .expect("handle field");
        let (_, upper) = sk.interval(handle);
        assert_eq!(lattice.name(upper), "#FileDescriptor");
        // Return type is tagged #SuccessZ.
        let out = sk.walk(&w("out_eax")).expect("output");
        let (low, _) = sk.interval(out);
        assert!(
            lattice.leq(lattice.element("#SuccessZ").unwrap(), low)
                || low == lattice.element("#SuccessZ").unwrap(),
            "lower bound {}",
            lattice.name(low)
        );
    }

    #[test]
    fn malloc_callsites_stay_polymorphic() {
        // f() { int* p = malloc(4); *p int-used; char** q = malloc(4); }
        let mut mir = MirProgram::new();
        mir.add(Function::new(
            "f",
            vec![
                // 0: push 4; 1: call malloc; 2: add esp,4
                Inst::Push(Operand::Imm(4)),
                Inst::Call(CallKind::External("malloc".into())),
                Inst::Bin {
                    op: BinOp::Add,
                    dst: Reg::Esp,
                    src: Operand::Imm(4),
                },
                // 3: mov [eax], 7 (int store)
                Inst::Store {
                    addr: Mem::new(Reg::Eax, 0),
                    src: Operand::Imm(7),
                    size: 4,
                },
                // 4: mov ebx, eax (keep first pointer)
                Inst::Mov {
                    dst: Reg::Ebx,
                    src: Operand::Reg(Reg::Eax),
                },
                // 5: push 4; 6: call malloc; 7: add esp,4
                Inst::Push(Operand::Imm(4)),
                Inst::Call(CallKind::External("malloc".into())),
                Inst::Bin {
                    op: BinOp::Add,
                    dst: Reg::Esp,
                    src: Operand::Imm(4),
                },
                // 8: mov ecx, [eax] ; load through second pointer
                Inst::Load {
                    dst: Reg::Ecx,
                    addr: Mem::new(Reg::Eax, 0),
                    size: 4,
                },
                // 9: mov edx, [ecx+8] ; second pointee is itself a pointer
                Inst::Load {
                    dst: Reg::Edx,
                    addr: Mem::new(Reg::Ecx, 8),
                    size: 4,
                },
                Inst::Ret,
            ],
        ));
        let prog = generate(&mir);
        let proc = &prog.procs[0];
        assert_eq!(proc.callsites.len(), 2);
        assert_ne!(proc.callsites[0].tag, proc.callsites[1].tag);
        // Solve: the two malloc returns must not share a pointee shape.
        let lattice = Lattice::c_types();
        let result = Solver::new(&lattice).infer(&prog);
        assert!(result.procs.contains_key(&Symbol::intern("f")));
    }

    #[test]
    fn stack_slot_reuse_no_cross_talk() {
        // Slot [esp-4] first holds an int-ish value, later a pointer; the
        // reaching-defs naming must keep the two lives apart.
        let mut mir = MirProgram::new();
        mir.add(Function::new(
            "g",
            vec![
                // 0: sub esp, 4
                Inst::Bin {
                    op: BinOp::Sub,
                    dst: Reg::Esp,
                    src: Operand::Imm(4),
                },
                // 1: mov [esp], eax   (first life)
                Inst::Store {
                    addr: Mem::new(Reg::Esp, 0),
                    src: Operand::Reg(Reg::Eax),
                    size: 4,
                },
                // 2: mov ebx, [esp]
                Inst::Load {
                    dst: Reg::Ebx,
                    addr: Mem::new(Reg::Esp, 0),
                    size: 4,
                },
                // 3: mov [esp], ecx   (second life, unrelated)
                Inst::Store {
                    addr: Mem::new(Reg::Esp, 0),
                    src: Operand::Reg(Reg::Ecx),
                    size: 4,
                },
                // 4: mov edx, [esp]
                Inst::Load {
                    dst: Reg::Edx,
                    addr: Mem::new(Reg::Esp, 0),
                    size: 4,
                },
                // 5: add esp,4 ; 6: ret
                Inst::Bin {
                    op: BinOp::Add,
                    dst: Reg::Esp,
                    src: Operand::Imm(4),
                },
                Inst::Ret,
            ],
        ));
        let prog = generate(&mir);
        let printed = prog.procs[0].constraints.to_string();
        // Two distinct slot variables appear (suffix _1 and _3 defs).
        assert!(printed.contains("sm4_1"), "{printed}");
        assert!(printed.contains("sm4_3"), "{printed}");
    }

    #[test]
    fn push_ecx_false_positive_param_is_tolerated() {
        // §2.5: `push ecx` reserves a slot; ecx is (deliberately) seen as a
        // register parameter, which a subtyping system tolerates.
        let mut mir = MirProgram::new();
        mir.add(Function::new(
            "h",
            vec![
                Inst::Push(Operand::Reg(Reg::Ecx)),
                Inst::Bin {
                    op: BinOp::Add,
                    dst: Reg::Esp,
                    src: Operand::Imm(4),
                },
                Inst::Ret,
            ],
        ));
        let f = &mir.funcs[0];
        let cfg = Cfg::build(f);
        let frame = FrameInfo::compute(f, &cfg);
        let rd = ReachingDefs::compute(f, &cfg, &frame);
        let s = recover_interface(f, &frame, &rd);
        assert!(s.ins.iter().any(|l| matches!(l, Loc::Reg(r) if r.as_str() == "ecx")));
    }

    #[test]
    fn callee_saved_prologue_is_not_a_param() {
        let mut mir = MirProgram::new();
        mir.add(Function::new(
            "k",
            vec![
                Inst::Push(Operand::Reg(Reg::Ebx)),
                Inst::Mov {
                    dst: Reg::Ebx,
                    src: Operand::Imm(1),
                },
                Inst::Pop(Reg::Ebx),
                Inst::Ret,
            ],
        ));
        let f = &mir.funcs[0];
        let cfg = Cfg::build(f);
        let frame = FrameInfo::compute(f, &cfg);
        let rd = ReachingDefs::compute(f, &cfg, &frame);
        let s = recover_interface(f, &frame, &rd);
        assert!(s.ins.is_empty(), "{:?}", s.ins);
    }

    #[test]
    fn field_offsets_fold_through_lea() {
        // lea ebx, [eax+8]; mov ecx, [ebx+4] ⇒ eax.load.σ32@12.
        let mut mir = MirProgram::new();
        mir.add(Function::new(
            "m",
            vec![
                Inst::Lea {
                    dst: Reg::Ebx,
                    addr: Mem::new(Reg::Eax, 8),
                },
                Inst::Load {
                    dst: Reg::Ecx,
                    addr: Mem::new(Reg::Ebx, 4),
                    size: 4,
                },
                Inst::Ret,
            ],
        ));
        let prog = generate(&mir);
        let printed = prog.procs[0].constraints.to_string();
        assert!(printed.contains("load.σ32@12"), "{printed}");
    }
}
