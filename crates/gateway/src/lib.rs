//! # retypd-gateway — a cross-process shard router for `retypd-serve`
//!
//! One `serve` process shards work across threads; this crate shards
//! work across *processes*. The gateway speaks the same length-prefixed
//! JSON wire protocol as `serve` on its front side, and on its back
//! side spawns, supervises, and routes to a fleet of `serve` backends,
//! each with its own persistent scheme store:
//!
//! ```text
//!                          ┌── health checker: probe / evict / restart / re-add
//!   client ──▶ gateway ────┤
//!              (consistent ├──▶ serve backend 0  ── store/slot-0/
//!               hash ring) ├──▶ serve backend 1  ── store/slot-1/
//!                          └──▶ serve backend 2  ── store/slot-2/
//! ```
//!
//! * [`ring`] — the consistent-hash ring: `(lattice_fp, module_fp)` →
//!   slot, stable under membership churn so re-submissions keep hitting
//!   their warm store.
//! * [`backend`] — one routed backend: spawned child (supervised,
//!   restartable, warm-starting from its persist dir) or an external
//!   address.
//! * [`health`] — the pure stats-reply classifier the supervisor (and
//!   the fuzzer) drive: malformed backend replies degrade the backend
//!   to unhealthy, never panic the router.
//! * [`forward`] — single-frame exchanges plus the hedged variant that
//!   races two backends and suppresses the duplicate reply.
//! * [`server`] — the front-end: routing, batch decomposition and
//!   reassembly, stats/metrics aggregation, drain.
//!
//! Because every backend runs the same deterministic solver, routing
//! topology is invisible in results: a batch solved through 1, 2, or 4
//! backends — even with a backend killed and restarted mid-run — is
//! byte-identical to the sequential solver's output. The gateway only
//! decides *which warm cache* answers, never *what* the answer is.

#![warn(missing_docs)]

pub mod backend;
pub mod forward;
pub mod health;
pub mod ring;
pub mod server;

pub use backend::{Backend, BackendSpec};
pub use health::{classify_stats_reply, ProbeReport};
pub use ring::{route_key, Ring, VNODES};
pub use server::{start, GatewayConfig, GatewayHandle};
