//! Durability suite for the persistent scheme store: restart warmness,
//! kill-at-any-byte replay, content-fingerprint rejection, and compaction
//! equivalence. Everything here runs against real files in a per-test
//! temp directory — the store's contract is about surviving process
//! boundaries, so the tests cross them (by dropping and rebuilding
//! drivers on the same path, which is exactly what a restart does).

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use retypd_core::sync::atomic::{AtomicU64, Ordering};

use retypd_core::{Lattice, LatticeDescriptor, SolverResult};
use retypd_driver::store::{frame_record, MAGIC};
use retypd_driver::{AnalysisDriver, DriverConfig, LatticeSelector, ModuleJob, SolveRequest};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{GenConfig, ProgramGenerator};

/// A unique temp file path per call (no tempfile crate in the vendored
/// workspace; pid + counter keeps parallel test binaries apart).
fn temp_store_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "retypd-store-test-{}-{tag}-{n}.store",
        std::process::id()
    ))
}

/// RAII cleanup so failed assertions don't leave files behind forever.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> TempFile {
        TempFile(temp_store_path(tag))
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn generated_job(seed: u64, functions: usize) -> ModuleJob {
    let module = ProgramGenerator::new(GenConfig {
        seed,
        functions,
        structs: 3,
        ..GenConfig::default()
    })
    .generate();
    let (mir, _) = compile(&module).expect("generated module compiles");
    ModuleJob {
        name: format!("m{seed}"),
        program: retypd_congen::generate(&mir),
    }
}

fn render(result: &SolverResult) -> String {
    let mut out = String::new();
    for (name, pr) in &result.procs {
        let _ = writeln!(out, "{name}: {}", pr.scheme);
        let _ = writeln!(out, "  sketch: {:?}", pr.sketch);
        let _ = writeln!(out, "  general: {:?}", pr.general_sketch);
    }
    let _ = writeln!(out, "{:?}", result.inconsistencies);
    out
}

fn persistent_config(path: &Path) -> DriverConfig {
    DriverConfig {
        workers: 1,
        cache_capacity: None,
        persist_path: Some(path.to_path_buf()),
    }
}

/// The headline contract: a restarted driver replaying its store answers a
/// previously-seen corpus with 100% cache hits and bit-identical results.
#[test]
fn restart_replays_to_all_hits() {
    let lattice = Lattice::c_types();
    let store = TempFile::new("restart");
    let jobs: Vec<ModuleJob> = [(61u64, 8usize), (62, 10)]
        .iter()
        .map(|&(s, f)| generated_job(s, f))
        .collect();

    let (reference, cold_misses) = {
        let driver = AnalysisDriver::with_config(&lattice, persistent_config(store.path()));
        let results: Vec<String> = jobs.iter().map(|j| render(&driver.solve(&j.program))).collect();
        // Generated modules may share the odd SCC (hence hits > 0 is
        // possible even cold); every *miss* becomes a persisted record.
        let stats = driver.cache_stats();
        assert!(stats.misses > 0);
        (results, stats.misses)
        // Drop joins the writer thread: everything is on disk now.
    };

    let restarted = AnalysisDriver::with_config(&lattice, persistent_config(store.path()));
    let persist = restarted.persist_stats().expect("store configured");
    assert_eq!(
        persist.replayed_entries, cold_misses,
        "every miss became a persisted, replayed entry"
    );
    assert_eq!(persist.dropped_records, 0);
    assert!(persist.replay_ns > 0);

    for (j, want) in jobs.iter().zip(&reference) {
        let got = restarted.solve(&j.program);
        assert_eq!(
            got.stats.cache_misses, 0,
            "restart must answer {} entirely from the replayed store",
            j.name
        );
        assert!(got.stats.cache_hits > 0);
        assert_eq!(render(&got), *want, "{}: replayed result differs", j.name);
    }
}

/// Pass-2 entries solved against a non-default lattice round-trip too:
/// the store records the lattice descriptor and replays against a
/// rebuilt, fingerprint-verified lattice.
#[test]
fn restart_replays_non_default_lattice_entries() {
    let c_types = Lattice::c_types();
    let store = TempFile::new("lattice");
    let descriptor: LatticeDescriptor = {
        let mut b = Lattice::c_types_builder();
        b.add_under("#StoreTestTag", "int").expect("fresh tag");
        b.le("⊥", "#StoreTestTag").expect("known");
        b.set_name("c_types_store_test");
        b.build().expect("extended c_types is a lattice").descriptor().clone()
    };
    let job = generated_job(63, 6);

    let reference = {
        let driver = AnalysisDriver::with_config(&c_types, persistent_config(store.path()));
        let session = driver
            .session(
                SolveRequest::batch(std::slice::from_ref(&job))
                    .with_lattice(LatticeSelector::Descriptor(descriptor.clone())),
            )
            .expect("descriptor is valid");
        render(&session.run()[0].result)
    };

    let restarted = AnalysisDriver::with_config(&c_types, persistent_config(store.path()));
    assert!(restarted.persist_stats().expect("store").replayed_entries > 0);
    let session = restarted
        .session(
            SolveRequest::batch(std::slice::from_ref(&job))
                .with_lattice(LatticeSelector::Descriptor(descriptor)),
        )
        .expect("descriptor is valid");
    let report = &session.run()[0];
    assert_eq!(report.result.stats.cache_misses, 0);
    assert_eq!(render(&report.result), reference);
}

/// Kill-at-any-byte: for *every* prefix of a valid log, replay must not
/// panic, must yield a usable (possibly empty) cache, and the repaired
/// file must accept and persist new appends.
#[test]
fn kill_at_any_byte_yields_usable_prefix() {
    let lattice = Lattice::c_types();
    let full = TempFile::new("kill-src");
    let job = generated_job(64, 3);
    let reference = {
        let driver = AnalysisDriver::with_config(&lattice, persistent_config(full.path()));
        render(&driver.solve(&job.program))
    };
    let bytes = std::fs::read(full.path()).expect("store file exists");
    assert!(bytes.len() > MAGIC.len(), "corpus must persist something");

    let truncated = TempFile::new("kill-dst");
    let mut max_replayed = 0u64;
    for cut in 0..=bytes.len() {
        std::fs::write(truncated.path(), &bytes[..cut]).expect("write truncated copy");
        let driver = AnalysisDriver::with_config(&lattice, persistent_config(truncated.path()));
        let persist = driver.persist_stats().expect("store configured");
        max_replayed = max_replayed.max(persist.replayed_entries);
        // Whatever survived, the solve is bit-identical to the reference.
        let got = driver.solve(&job.program);
        assert_eq!(render(&got), reference, "cut at byte {cut}");
    }
    assert!(
        max_replayed > 0,
        "full-length replay must recover the corpus"
    );

    // A torn tail is *repaired*: after replaying a mid-record cut, new
    // appends land after the valid prefix and a further restart sees them.
    let cut = bytes.len() - 1;
    std::fs::write(truncated.path(), &bytes[..cut]).expect("write torn copy");
    {
        let driver = AnalysisDriver::with_config(&lattice, persistent_config(truncated.path()));
        driver.solve(&job.program);
    }
    let repaired = AnalysisDriver::with_config(&lattice, persistent_config(truncated.path()));
    let warm = repaired.solve(&job.program);
    assert_eq!(warm.stats.cache_misses, 0, "repaired log replays fully");
    assert_eq!(render(&warm), reference);
}

/// A record whose frame checksum is valid but whose *content* fingerprint
/// does not match its decoded value is dropped on replay (content
/// addressing, not just frame integrity).
#[test]
fn fingerprint_mismatch_drops_the_record() {
    let lattice = Lattice::c_types();
    let store = TempFile::new("tamper");
    let job = generated_job(65, 4);
    let (reference, clean_replayed) = {
        let driver = AnalysisDriver::with_config(&lattice, persistent_config(store.path()));
        let reference = render(&driver.solve(&job.program));
        drop(driver);
        let replayed = AnalysisDriver::with_config(&lattice, persistent_config(store.path()))
            .persist_stats()
            .expect("store")
            .replayed_entries;
        (reference, replayed)
    };

    // Re-frame the log with one payload's trailing fingerprint byte
    // flipped: pass-1 payloads end in the last scheme's fingerprint,
    // pass-2 payloads carry per-sketch fingerprints — either way the
    // frame checksum is recomputed so only content validation can object.
    let bytes = std::fs::read(store.path()).expect("store file exists");
    let mut rewritten = MAGIC.to_vec();
    let mut tampered = false;
    let mut pos = MAGIC.len();
    while pos + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let mut payload = bytes[pos + 12..pos + 12 + len].to_vec();
        if !tampered && payload.first() == Some(&2) {
            *payload.last_mut().unwrap() ^= 0xff;
            tampered = true;
        }
        rewritten.extend_from_slice(&frame_record(&payload));
        pos += 12 + len;
    }
    assert!(tampered, "log must contain a pass-1 record");
    std::fs::write(store.path(), &rewritten).expect("rewrite tampered log");

    let driver = AnalysisDriver::with_config(&lattice, persistent_config(store.path()));
    let persist = driver.persist_stats().expect("store configured");
    assert_eq!(
        persist.replayed_entries,
        clean_replayed - 1,
        "exactly the tampered record is rejected"
    );
    assert!(persist.dropped_records >= 1);
    let got = driver.solve(&job.program);
    assert!(
        got.stats.cache_misses > 0,
        "the dropped entry re-solves as a miss"
    );
    assert_eq!(render(&got), reference, "rejection never corrupts results");
}

/// Compaction equivalence: replaying the compacted log reproduces the
/// live cache bit-identically (100% hits, identical results, same entry
/// count), and the log shrinks under eviction churn instead of growing
/// without bound.
#[test]
fn compaction_preserves_cache_contents() {
    let lattice = Lattice::c_types();
    let store = TempFile::new("compact");
    let jobs: Vec<ModuleJob> = [(66u64, 6usize), (67, 8), (68, 7)]
        .iter()
        .map(|&(s, f)| generated_job(s, f))
        .collect();

    let driver = AnalysisDriver::with_config(&lattice, persistent_config(store.path()));
    let reference: Vec<String> = jobs.iter().map(|j| render(&driver.solve(&j.program))).collect();
    driver.flush_store();
    let appended_len = std::fs::metadata(store.path()).expect("store file").len();
    let live_entries = {
        let s = driver.cache_stats();
        (s.scheme_entries + s.refine_entries) as u64
    };

    driver.compact_store();
    let compacted_len = std::fs::metadata(store.path()).expect("store file").len();
    assert!(compacted_len <= appended_len);
    assert_eq!(driver.persist_stats().expect("store").compactions, 1);
    drop(driver);

    let restarted = AnalysisDriver::with_config(&lattice, persistent_config(store.path()));
    let persist = restarted.persist_stats().expect("store configured");
    assert_eq!(
        persist.replayed_entries, live_entries,
        "compacted log holds exactly the live entries"
    );
    for (j, want) in jobs.iter().zip(&reference) {
        let got = restarted.solve(&j.program);
        assert_eq!(got.stats.cache_misses, 0, "{}: compaction lost entries", j.name);
        assert_eq!(render(&got), *want, "{}: compaction changed results", j.name);
    }

    // Under eviction churn with a tiny capacity, dead records pile up in
    // the log; the auto-compaction threshold must eventually fire and keep
    // the file within a constant factor of the live set.
    let churn_store = TempFile::new("churn");
    let churn = AnalysisDriver::with_config(
        &lattice,
        DriverConfig {
            workers: 1,
            cache_capacity: Some(4),
            persist_path: Some(churn_store.path().to_path_buf()),
        },
    );
    for round in 0..30 {
        for j in &jobs {
            let _ = churn.solve(&j.program);
        }
        let _ = round;
    }
    let stats = churn.persist_stats().expect("store configured");
    assert!(stats.compactions > 0, "churn must trigger auto-compaction");
    assert!(
        stats.persisted_entries <= 8,
        "mirror tracks the bounded cache: {stats:?}"
    );
}
