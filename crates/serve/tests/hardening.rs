//! Connection-hardening tests over real sockets: the per-connection frame
//! and byte budgets, the server's refusal of oversized announcements, and
//! the client's refusal of a malicious server's length prefix.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use retypd_serve::wire::{read_frame, write_frame, MAX_FRAME_BYTES};
use retypd_serve::{start, Client, ClientError, Request, Response, ServeConfig};

fn config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    }
}

#[test]
fn frame_budget_breach_gets_an_error_then_close() {
    let handle = start(ServeConfig {
        max_frames_per_conn: Some(3),
        ..config()
    })
    .expect("bind");
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    // Frames within the budget are served normally...
    for _ in 0..3 {
        write_frame(&mut s, &Request::Stats.encode()).unwrap();
        let p = read_frame(&mut s).unwrap().expect("reply within budget");
        assert!(matches!(Response::decode(&p).unwrap(), Response::Stats(_)));
    }
    // ...the frame that crosses it gets an error naming the limit, then EOF.
    write_frame(&mut s, &Request::Stats.encode()).unwrap();
    let p = read_frame(&mut s).unwrap().expect("refusal frame");
    match Response::decode(&p).unwrap() {
        Response::Error(m) => assert!(m.contains("frame budget"), "{m}"),
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed after refusal");
    // The budget is per connection, not per server: a fresh connection
    // starts with a fresh budget.
    let mut fresh = Client::connect(handle.addr()).expect("connect");
    fresh.stats().expect("new connection serves normally");
    handle.shutdown();
}

#[test]
fn byte_budget_breach_gets_an_error_then_close() {
    let frame_cost = 4 + Request::Stats.encode().len() as u64;
    // Exactly two stats frames fit; the third crosses the budget.
    let handle = start(ServeConfig {
        max_bytes_per_conn: Some(2 * frame_cost),
        ..config()
    })
    .expect("bind");
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    for _ in 0..2 {
        write_frame(&mut s, &Request::Stats.encode()).unwrap();
        let p = read_frame(&mut s).unwrap().expect("reply within budget");
        assert!(matches!(Response::decode(&p).unwrap(), Response::Stats(_)));
    }
    write_frame(&mut s, &Request::Stats.encode()).unwrap();
    let p = read_frame(&mut s).unwrap().expect("refusal frame");
    match Response::decode(&p).unwrap() {
        Response::Error(m) => assert!(m.contains("byte budget"), "{m}"),
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert_eq!(read_frame(&mut s).unwrap(), None, "connection closed after refusal");
    handle.shutdown();
}

#[test]
fn server_refuses_an_oversized_announcement_politely() {
    let handle = start(config()).expect("bind");
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    // Announce a frame over MAX_FRAME_BYTES; the server must say why
    // before closing instead of a bare reset, and must not allocate it.
    s.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let p = read_frame(&mut s).unwrap().expect("error frame");
    match Response::decode(&p).unwrap() {
        Response::Error(m) => assert!(m.contains("over cap"), "{m}"),
        other => panic!("expected an error frame, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn a_trickled_giant_frame_is_dropped_without_a_reply() {
    // Announce the largest legal frame but deliver almost none of it: the
    // polled reader grows its buffer with *delivered* bytes (not the
    // announcement — the fuzz harness's counting allocator pins that), so
    // the half-close below is a truncated frame and the server just closes.
    let handle = start(config()).expect("bind");
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.write_all(&(MAX_FRAME_BYTES as u32).to_be_bytes()).unwrap();
    s.write_all(b"12345678").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(
        read_frame(&mut s).unwrap(),
        None,
        "truncated frame closes without a reply"
    );
    handle.shutdown();
}

#[test]
fn client_refuses_a_malicious_length_prefix() {
    // A hostile "server" that answers any request by announcing a 4 GiB
    // frame. The client must refuse the announcement up front — not
    // attempt a multi-GiB allocation.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let attacker = retypd_core::sync::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        let _ = read_frame(&mut s);
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        s.flush().unwrap();
        // Hold the socket open until the client hangs up, so the client
        // fails on the prefix rather than on EOF.
        let mut sink = [0u8; 64];
        while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
    });
    let mut client = Client::connect(addr).expect("connect");
    match client.stats() {
        Err(ClientError::Wire(e)) => assert!(e.to_string().contains("over cap"), "{e}"),
        other => panic!("expected a wire error, got {other:?}"),
    }
    drop(client);
    attacker.join().unwrap();
}
