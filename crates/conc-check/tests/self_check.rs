//! Checker self-tests: the suite's guarantees about itself.
//!
//! These run in EVERY build (no `--cfg retypd_model_check` needed):
//! the abstract models use `loom::modelled` explicitly, so a plain
//! `cargo test` already proves the checker finds real races, that a
//! reported schedule replays deterministically, and that exploration
//! is bit-identical for a fixed seed.

use retypd_conc_check::{mutations, registry, DEFAULT_MAX_ITERATIONS, DEFAULT_SEED};

#[test]
fn correct_protocols_pass_and_exhaust_their_space() {
    for def in registry() {
        let report = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
        assert!(
            report.failure.is_none(),
            "model {} failed: {:?}",
            def.name,
            report.failure
        );
        assert!(
            report.complete || report.iterations >= def.cap,
            "model {} neither exhausted its bounded space nor reached its \
             declared cap of {} ({} iterations)",
            def.name,
            def.cap,
            report.iterations
        );
        assert!(
            report.iterations >= 1000,
            "model {} explored only {} distinct interleavings (< 1000); \
             raise its preemption bound or enrich the model",
            def.name,
            report.iterations
        );
    }
}

#[test]
fn every_mutation_is_caught() {
    for def in mutations() {
        let report = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
        assert!(
            report.failure.is_some(),
            "mutation {} was NOT caught in {} interleavings — the checker has lost its teeth",
            def.name,
            report.iterations
        );
    }
}

#[test]
fn a_failure_schedule_replays_to_the_same_failure() {
    for def in mutations() {
        let report = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
        let failure = report.failure.expect("mutation must fail");
        let replayed = def.replay(&failure.schedule);
        let refailure = replayed
            .failure
            .unwrap_or_else(|| panic!("schedule {:?} did not replay for {}", failure.schedule, def.name));
        assert_eq!(
            refailure.message, failure.message,
            "replay of {} reproduced a different failure",
            def.name
        );
        assert_eq!(replayed.iterations, 1, "replay runs exactly one schedule");
    }
}

#[test]
fn exploration_is_deterministic_for_a_fixed_seed() {
    // Same seed ⇒ bit-identical exploration: identical iteration counts
    // for passing models, identical failure schedules for mutations.
    for def in registry() {
        let a = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
        let b = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
        assert_eq!(a.iterations, b.iterations, "model {} is not deterministic", def.name);
        assert_eq!(a.complete, b.complete);
    }
    for def in mutations() {
        let a = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
        let b = def.check(DEFAULT_SEED, DEFAULT_MAX_ITERATIONS);
        let (fa, fb) = (a.failure.unwrap(), b.failure.unwrap());
        assert_eq!(fa.schedule, fb.schedule, "mutation {} schedule drifted", def.name);
        assert_eq!(a.iterations, b.iterations);
    }
}

#[test]
fn different_seeds_still_agree_on_the_verdict() {
    // The seed permutes exploration ORDER, never the verdict: a passing
    // model passes under any seed, a mutation is caught under any seed
    // (possibly after a different number of iterations, with a
    // different schedule).
    for seed in [7, 0xC0FFEE] {
        for def in registry() {
            let report = def.check(seed, DEFAULT_MAX_ITERATIONS);
            assert!(
                report.failure.is_none(),
                "model {} failed under seed {seed}: {:?}",
                def.name,
                report.failure
            );
        }
        for def in mutations() {
            let report = def.check(seed, DEFAULT_MAX_ITERATIONS);
            assert!(
                report.failure.is_some(),
                "mutation {} escaped under seed {seed}",
                def.name
            );
        }
    }
}
