use retypd_core::{Lattice, Solver, Symbol};
use retypd_minic::codegen::compile;
use retypd_minic::parse_module;

fn main() {
    let src = "
        struct S1 { struct S1* next; };
        struct S1* make_S1() {
            struct S1* p = (struct S1*) malloc(4);
            p->next = 0;
            return p;
        }
    ";
    let module = parse_module(src).unwrap();
    let (mir, _) = compile(&module).unwrap();
    println!("{mir}");
    let program = retypd_congen::generate(&mir);
    println!("constraints:\n{}", program.procs[0].constraints);
    let lattice = Lattice::c_types();
    let result = Solver::new(&lattice).infer(&program);
    let p = &result.procs[&Symbol::intern("make_S1")];
    println!("\nscheme: {}", p.scheme);
    if let Some(sk) = &p.sketch {
        println!("sketch:\n{}", sk.render(&lattice));
    }
}
