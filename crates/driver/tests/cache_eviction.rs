//! Bounded-cache behavior: a driver with a small `cache_capacity` must
//! evict least-recently-hit entries instead of growing without bound (the
//! resident-service requirement), and modules whose entries were evicted
//! must re-solve to bit-identical results on their next submission.

use std::fmt::Write as _;

use retypd_core::{Lattice, SolverResult};
use retypd_driver::{AnalysisDriver, DriverConfig, ModuleJob};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{GenConfig, ProgramGenerator};

fn generated_job(seed: u64, functions: usize) -> ModuleJob {
    let module = ProgramGenerator::new(GenConfig {
        seed,
        functions,
        structs: 3,
        ..GenConfig::default()
    })
    .generate();
    let (mir, _) = compile(&module).expect("generated module compiles");
    ModuleJob {
        name: format!("m{seed}"),
        program: retypd_congen::generate(&mir),
    }
}

fn render(result: &SolverResult) -> String {
    let mut out = String::new();
    for (name, pr) in &result.procs {
        let _ = writeln!(out, "{name}: {}", pr.scheme);
        let _ = writeln!(out, "  sketch: {:?}", pr.sketch);
        let _ = writeln!(out, "  general: {:?}", pr.general_sketch);
    }
    let _ = writeln!(out, "{:?}", result.inconsistencies);
    out
}

#[test]
fn bounded_cache_evicts_and_stays_correct() {
    let lattice = Lattice::c_types();
    let jobs: Vec<ModuleJob> = [(31u64, 10usize), (32, 12), (33, 14)]
        .iter()
        .map(|&(seed, fns)| generated_job(seed, fns))
        .collect();

    // Reference results from an unbounded driver.
    let unbounded = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1));
    let reference: Vec<String> = jobs
        .iter()
        .map(|j| render(&unbounded.solve(&j.program)))
        .collect();

    // A capacity far below one module's SCC count forces eviction churn on
    // every solve.
    let bounded = AnalysisDriver::with_config(
        &lattice,
        DriverConfig {
            workers: 1,
            cache_capacity: Some(4),
            persist_path: None,
        },
    );
    for round in 0..3 {
        for (j, want) in jobs.iter().zip(&reference) {
            let got = bounded.solve(&j.program);
            assert_eq!(
                render(&got),
                *want,
                "round {round}, module {}: bounded cache changed the result",
                j.name
            );
        }
    }
    let stats = bounded.cache_stats();
    assert!(
        stats.evictions > 0,
        "capacity 4 over three large modules must evict"
    );
    assert!(
        stats.scheme_entries <= 4 && stats.refine_entries <= 4,
        "cache exceeded its capacity: {stats:?}"
    );
}

#[test]
fn eviction_costs_misses_not_correctness() {
    // One module whose SCC count exceeds the capacity: a re-submission can
    // not be a 100% hit (entries were evicted), but must still be correct.
    let lattice = Lattice::c_types();
    let job = generated_job(37, 16);
    let sccs = retypd_core::Condensation::compute(&job.program).sccs.len();
    assert!(sccs > 3, "fixture must have more SCCs than the capacity");

    let driver = AnalysisDriver::with_config(
        &lattice,
        DriverConfig {
            workers: 1,
            cache_capacity: Some(3),
            persist_path: None,
        },
    );
    let first = driver.solve(&job.program);
    let second = driver.solve(&job.program);
    assert_eq!(render(&first), render(&second));
    assert!(
        second.stats.cache_misses > 0,
        "with evictions the re-submission must re-solve something"
    );
    assert!(driver.cache_stats().evictions > 0);

    // Control: the same module under an unbounded cache is a pure hit.
    let unbounded = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1));
    unbounded.solve(&job.program);
    let warm = unbounded.solve(&job.program);
    assert_eq!(warm.stats.cache_misses, 0);
    assert_eq!(render(&warm), render(&first));
}

#[test]
fn hot_entries_survive_cold_churn() {
    // Re-submitting module A between B/C solves keeps A's entries hot; with
    // a capacity that can hold A plus churn, A stays a near-pure hit.
    let lattice = Lattice::c_types();
    let hot = generated_job(41, 6);
    let cold: Vec<ModuleJob> = [(42u64, 6usize), (43, 6)]
        .iter()
        .map(|&(s, f)| generated_job(s, f))
        .collect();
    let hot_sccs = retypd_core::Condensation::compute(&hot.program).sccs.len();

    let driver = AnalysisDriver::with_config(
        &lattice,
        DriverConfig {
            workers: 1,
            cache_capacity: Some(2 * hot_sccs),
            persist_path: None,
        },
    );
    driver.solve(&hot.program);
    for c in &cold {
        driver.solve(&c.program);
        let warm = driver.solve(&hot.program);
        assert_eq!(
            warm.stats.cache_misses, 0,
            "hot module evicted despite being most recently hit"
        );
    }
}
