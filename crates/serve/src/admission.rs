//! Bounded admission control.
//!
//! A server resident behind a socket sees an unbounded stream of work; the
//! [`Admission`] gate is what turns overload into an immediate, honest
//! `overloaded` refusal instead of stacking latency. It is a single
//! compare-and-swap counter with a drain flag:
//!
//! * **All-or-nothing batches.** [`Admission::admit`] reserves `n` slots
//!   atomically or none at all — a partially admitted batch would strand
//!   its admitted prefix behind a refusal.
//! * **Exact release.** Every admitted slot is released exactly once:
//!   normally by the shard thread after the job finishes (panic included —
//!   the shard catches solver panics), or by the dispatcher itself when a
//!   drain races it between `admit` and the shard send. [`SlotGuard`]
//!   makes the shard-side release panic-proof by tying it to a drop.
//! * **Drain is sticky.** [`Admission::begin_drain`] flips a flag that
//!   every admit observes; exactly one caller wins the flip and performs
//!   the one-time teardown (hanging up shard queues, nudging the
//!   acceptor).
//!
//! Ordering: the counter and flag carry no payload — every cross-thread
//! handoff in the server travels through channels and mutexes, which
//! already synchronize — so all accesses are `Relaxed` except the
//! drain-claim RMW (see the policy in `retypd_core::sync`). The
//! model-checked regressions for this protocol (slot release on solver
//! panic, drain racing dispatch) live in `crates/conc-check`.

use retypd_core::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// The admission gate: a bounded in-flight counter, accept/reject
/// accounting, and the sticky drain flag.
#[derive(Debug)]
pub struct Admission {
    /// Maximum jobs admitted but not yet finished (≥ 1).
    limit: usize,
    /// Jobs admitted and not yet released.
    queued: AtomicUsize,
    /// Batches admitted over the gate's life.
    accepted: AtomicU64,
    /// Batches refused for overload (drain refusals are not counted —
    /// they are not overload pressure).
    rejected: AtomicU64,
    draining: AtomicBool,
}

impl Admission {
    /// A gate admitting at most `limit` concurrent jobs. Clamped to at
    /// least 1: a limit of 0 would permanently reject all work.
    pub fn new(limit: usize) -> Admission {
        Admission {
            limit: limit.max(1),
            queued: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// The admission limit (clamped).
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Jobs currently admitted and not yet released.
    pub fn queued(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// Batches admitted over the gate's life.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Batches refused for overload over the gate's life.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Whether a drain has begun (sticky).
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Admits `n` jobs atomically (all or none), or reports the queue
    /// depth observed at refusal. Draining gates refuse everything.
    ///
    /// # Errors
    ///
    /// `Err(queued)` when the gate is draining or `n` slots do not fit.
    pub fn admit(&self, n: usize) -> Result<(), usize> {
        let mut cur = self.queued.load(Ordering::Relaxed);
        loop {
            if self.is_draining() {
                return Err(cur);
            }
            if cur + n > self.limit {
                return Err(cur);
            }
            match self
                .queued
                .compare_exchange(cur, cur + n, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `n` previously admitted slots.
    pub fn release(&self, n: usize) {
        self.queued.fetch_sub(n, Ordering::Relaxed);
    }

    /// A guard releasing exactly one slot on drop — the shard thread holds
    /// one per job so the slot frees on every exit path.
    pub fn slot_guard(&self) -> SlotGuard<'_> {
        SlotGuard { gate: self }
    }

    /// Counts an admitted batch.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an overload refusal.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Flips the sticky drain flag; returns `true` for exactly one caller
    /// — the winner performs the one-time teardown (hanging up queues,
    /// nudging the acceptor).
    pub fn begin_drain(&self) -> bool {
        // AcqRel, not SeqCst: the RMW's atomicity alone elects the single
        // winner, and the teardown the winner performs synchronizes
        // through mutexes; there is no second location whose total order
        // matters.
        !self.draining.swap(true, Ordering::AcqRel)
    }
}

/// Releases one admission slot on drop (see [`Admission::slot_guard`]).
#[derive(Debug)]
pub struct SlotGuard<'a> {
    gate: &'a Admission,
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.gate.release(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_all_or_nothing() {
        let gate = Admission::new(4);
        assert!(gate.admit(3).is_ok());
        assert_eq!(gate.admit(2), Err(3), "2 more would exceed the limit of 4");
        assert!(gate.admit(1).is_ok());
        assert_eq!(gate.queued(), 4);
        gate.release(4);
        assert_eq!(gate.queued(), 0);
    }

    #[test]
    fn zero_limit_is_clamped_to_one() {
        let gate = Admission::new(0);
        assert_eq!(gate.limit(), 1);
        assert!(gate.admit(1).is_ok());
    }

    #[test]
    fn drain_is_sticky_and_elects_one_winner() {
        let gate = Admission::new(8);
        assert!(gate.begin_drain(), "first caller wins");
        assert!(!gate.begin_drain(), "second caller loses");
        assert!(gate.is_draining());
        assert_eq!(gate.admit(1), Err(0), "draining refuses everything");
    }

    #[test]
    fn slot_guard_releases_on_drop_even_through_a_panic() {
        let gate = Admission::new(2);
        assert!(gate.admit(1).is_ok());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _slot = gate.slot_guard();
            panic!("solver exploded");
        }));
        assert!(caught.is_err());
        assert_eq!(gate.queued(), 0, "the guard released through the unwind");
    }
}
