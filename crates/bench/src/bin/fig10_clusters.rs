//! Figure 10: per-cluster metric table, plus the clustered-vs-raw overall
//! averages.

use retypd_bench::{clusters, generate_single, pct, SINGLES};
use retypd_core::Lattice;
use retypd_eval::harness::evaluate_module;
use retypd_eval::metrics::{average, ToolMetrics};
use retypd_minic::genprog::ProgramGenerator;

fn main() {
    let lattice = Lattice::c_types();
    println!("Figure 10: clusters in the benchmark suite (Retypd metrics)");
    println!(
        "{:<16} {:>6} {:>8} {:>9} {:>9} {:>9} {:>7}",
        "Cluster", "Count", "Distance", "Interval", "Conserv.", "PtrAcc", "Const"
    );
    println!("{}", "-".repeat(70));
    let mut folded: Vec<ToolMetrics> = Vec::new();
    let mut raw: Vec<ToolMetrics> = Vec::new();
    for spec in clusters() {
        let mut members = Vec::new();
        for (name, module) in ProgramGenerator::generate_cluster(&spec) {
            let r = evaluate_module(&name, &module, &lattice);
            members.push(r.scores.retypd);
        }
        raw.extend(members.iter().copied());
        let avg = average(&members);
        folded.push(avg);
        println!(
            "{:<16} {:>6} {:>8.2} {:>9.2} {:>9} {:>9} {:>7}",
            spec.name,
            members.len(),
            avg.distance,
            avg.interval,
            pct(avg.conservativeness),
            pct(avg.pointer_accuracy),
            pct(avg.const_recall)
        );
    }
    for spec in SINGLES {
        let module = generate_single(spec);
        let r = evaluate_module(spec.name, &module, &lattice);
        folded.push(r.scores.retypd);
        raw.push(r.scores.retypd);
    }
    let with_clustering = average(&folded);
    let without = average(&raw);
    println!("{}", "-".repeat(70));
    println!(
        "{:<16} {:>6} {:>8.2} {:>9.2} {:>9} {:>9} {:>7}",
        "as reported", "", with_clustering.distance, with_clustering.interval,
        pct(with_clustering.conservativeness), pct(with_clustering.pointer_accuracy),
        pct(with_clustering.const_recall)
    );
    println!(
        "{:<16} {:>6} {:>8.2} {:>9.2} {:>9} {:>9} {:>7}",
        "no clustering", "", without.distance, without.interval,
        pct(without.conservativeness), pct(without.pointer_accuracy),
        pct(without.const_recall)
    );
    println!("\n(paper: reported 0.54/1.20/95%/88%/98%; unclustered 0.53/1.22/97%/84%/97%)");
}
