//! The persistent scheme cache.
//!
//! Entries are keyed by the content fingerprints of [`crate::fingerprint`]
//! and persist for the lifetime of an [`crate::AnalysisDriver`], across
//! `solve`/`solve_batch` calls — that is the incremental-re-analysis story:
//! a batch whose modules share procedures (real corpora are full of
//! near-duplicates) re-solves only the dirtied SCCs, and a re-submitted
//! identical module is a 100% fingerprint hit that touches the solver not
//! at all.
//!
//! The cache stores *exact* solver outputs (schemes with their fingerprints
//! for pass 1, full [`SccRefinement`]s for pass 2), so hits are
//! bit-identical to a fresh solve and cannot perturb determinism. Values
//! are held behind `Arc` so concurrent wave workers share them without
//! copying under the lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use retypd_core::fxhash::FxHashMap;
use retypd_core::{SccRefinement, Symbol, TypeScheme};

/// Cached pass-1 output of one SCC.
#[derive(Clone, Debug)]
pub struct CachedSchemes {
    /// `(procedure, scheme, scheme fingerprint)` per SCC member, in member
    /// order. The fingerprint rides along so dependent SCCs can extend
    /// their own keys without re-rendering the scheme.
    pub schemes: Vec<(Symbol, TypeScheme, u64)>,
    /// Combined-constraint count (for [`retypd_core::SolverStats`] parity
    /// with the sequential solver).
    pub constraints: usize,
}

/// Aggregate cache counters (cumulative over the cache's lifetime).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a solve.
    pub misses: u64,
    /// Pass-1 entries currently stored.
    pub scheme_entries: usize,
    /// Pass-2 entries currently stored.
    pub refine_entries: usize,
}

/// A concurrent, persistent scheme + refinement cache.
#[derive(Debug, Default)]
pub struct SchemeCache {
    schemes: Mutex<FxHashMap<u64, Arc<CachedSchemes>>>,
    refines: Mutex<FxHashMap<u64, Arc<SccRefinement>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SchemeCache {
    /// An empty cache.
    pub fn new() -> SchemeCache {
        SchemeCache::default()
    }

    /// Looks up a pass-1 entry, counting the hit or miss.
    pub fn lookup_schemes(&self, fp: u64) -> Option<Arc<CachedSchemes>> {
        let got = self.schemes.lock().expect("cache lock").get(&fp).cloned();
        self.count(got.is_some());
        got
    }

    /// Stores a pass-1 entry.
    pub fn insert_schemes(&self, fp: u64, entry: Arc<CachedSchemes>) {
        self.schemes.lock().expect("cache lock").insert(fp, entry);
    }

    /// Looks up a pass-2 entry, counting the hit or miss.
    pub fn lookup_refine(&self, fp: u64) -> Option<Arc<SccRefinement>> {
        let got = self.refines.lock().expect("cache lock").get(&fp).cloned();
        self.count(got.is_some());
        got
    }

    /// Stores a pass-2 entry.
    pub fn insert_refine(&self, fp: u64, entry: Arc<SccRefinement>) {
        self.refines.lock().expect("cache lock").insert(fp, entry);
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative counters and current sizes.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            scheme_entries: self.schemes.lock().expect("cache lock").len(),
            refine_entries: self.refines.lock().expect("cache lock").len(),
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        self.schemes.lock().expect("cache lock").clear();
        self.refines.lock().expect("cache lock").clear();
    }
}
