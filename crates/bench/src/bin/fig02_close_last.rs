//! Figure 2, end to end: the `close_last` machine code, its inferred type
//! scheme, the sketch, and the reconstructed C type.

use retypd_core::{CTypeBuilder, Lattice, Solver, Symbol};
use retypd_minic::codegen::compile;
use retypd_minic::parse_module;

fn main() {
    let src = "
        struct LL { struct LL* next; int handle; };
        int close_last(const struct LL* list) {
            while (list->next != 0) { list = list->next; }
            return close(list->handle);
        }
    ";
    let module = parse_module(src).expect("parses");
    let (mir, _) = compile(&module).expect("compiles");
    println!("— disassembly —\n{mir}");
    let program = retypd_congen::generate(&mir);
    let lattice = Lattice::c_types();
    let result = Solver::new(&lattice).infer(&program);
    let proc = &result.procs[&Symbol::intern("close_last")];
    println!("— inferred type scheme —\n{}\n", proc.scheme);
    let sketch = proc.sketch.as_ref().expect("sketch");
    println!("— sketch —\n{}", sketch.render(&lattice));
    let mut builder = CTypeBuilder::new(&lattice);
    let sig = builder.function_type(sketch);
    let table = builder.into_table();
    println!("— reconstructed C —");
    print!("{}", table.render());
    println!("{};", retypd_core::ctype::render_signature("close_last", &sig, &table));
}
