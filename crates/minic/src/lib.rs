//! # retypd-minic
//!
//! A mini-C compiler targeting the [`retypd_mir`] ISA, used to manufacture
//! the benchmark corpus that substitutes for the paper's
//! coreutils/SPEC2006 binaries (§6.2).
//!
//! The pipeline is deliberately *type-erasing*: source types drive layout
//! and nothing else, and the code generator reproduces the §2.1 idioms
//! that motivated Retypd's design:
//!
//! * `xor eax,eax` + `push eax` semi-syntactic constants,
//! * stack-slot reuse across disjoint scopes,
//! * early-return value merging (fortuitous re-use),
//! * parameters in registers for "fastcall"-marked functions.
//!
//! Because the source is typechecked first, every compiled program carries
//! its *ground truth* ([`truth::GroundTruth`]) — the role DWARF/PDB debug
//! info plays in the paper's evaluation.
//!
//! [`genprog`] generates seeded random programs and coreutils-like
//! clusters of programs sharing a statically-linked utility library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod codegen;
pub mod genprog;
pub mod parser;
pub mod truth;

pub use ast::{Expr, FuncDef, Module, SrcType, Stmt, StructDef};
pub use codegen::compile;
pub use genprog::{ClusterSpec, GenConfig, ProgramGenerator};
pub use parser::parse_module;
pub use truth::GroundTruth;
