//! The 32-bit x86-like instruction set.
//!
//! The ISA covers the idioms the paper's §2 catalog exercises: register
//! moves, loads/stores with displacement addressing, `push`/`pop`,
//! arithmetic (including `xor reg,reg` as a semi-syntactic constant and
//! `test` as a flag-only operation), conditional branches, direct and
//! external calls, and returns.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::program::CallKind;

/// General-purpose 32-bit registers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    Eax,
    Ebx,
    Ecx,
    Edx,
    Esi,
    Edi,
    Ebp,
    Esp,
}

impl Reg {
    /// All registers, for dataflow bit-vectors.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ebx,
        Reg::Ecx,
        Reg::Edx,
        Reg::Esi,
        Reg::Edi,
        Reg::Ebp,
        Reg::Esp,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The conventional name, lowercase.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ebx => "ebx",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
            Reg::Ebp => "ebp",
            Reg::Esp => "esp",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A register or immediate operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate constant.
    Imm(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i:#x}"),
        }
    }
}

/// A `[base + disp]` memory operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Mem {
    /// Base register.
    pub base: Reg,
    /// Byte displacement.
    pub disp: i32,
}

impl Mem {
    /// Convenience constructor.
    pub fn new(base: Reg, disp: i32) -> Mem {
        Mem { base, disp }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disp == 0 {
            write!(f, "[{}]", self.base)
        } else if self.disp > 0 {
            write!(f, "[{}+{:#x}]", self.base, self.disp)
        } else {
            write!(f, "[{}-{:#x}]", self.base, -self.disp)
        }
    }
}

/// Two-operand ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Imul,
    Shl,
    Shr,
}

impl BinOp {
    /// Mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Imul => "imul",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

/// Branch conditions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Mnemonic suffix (`jz`, `jnz`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "jz",
            Cond::Ne => "jnz",
            Cond::Lt => "jl",
            Cond::Le => "jle",
            Cond::Gt => "jg",
            Cond::Ge => "jge",
        }
    }
}

/// One instruction. Branch targets are instruction indices within the
/// owning function.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Inst {
    /// `mov dst, src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `mov dst, size [addr]` — load from memory.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address.
        addr: Mem,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
    },
    /// `mov size [addr], src` — store to memory.
    Store {
        /// Address.
        addr: Mem,
        /// Value stored.
        src: Operand,
        /// Access size in bytes.
        size: u8,
    },
    /// `lea dst, [addr]`.
    Lea {
        /// Destination register.
        dst: Reg,
        /// Address computed (not dereferenced).
        addr: Mem,
    },
    /// `push src`.
    Push(Operand),
    /// `pop dst`.
    Pop(Reg),
    /// ALU operation `op dst, src`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination (and first operand).
        dst: Reg,
        /// Second operand.
        src: Operand,
    },
    /// `cmp a, b` — flags only.
    Cmp {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Operand,
    },
    /// `test a, b` — flags only (bitwise AND, result discarded; §A.5.2).
    Test {
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// Unconditional jump to an instruction index.
    Jmp(usize),
    /// Conditional jump.
    Jcc {
        /// Condition.
        cond: Cond,
        /// Target instruction index.
        target: usize,
    },
    /// Call.
    Call(CallKind),
    /// Return.
    Ret,
    /// No operation.
    Nop,
}

impl Inst {
    /// True for instructions ending a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jmp(_) | Inst::Jcc { .. } | Inst::Ret)
    }

    /// The branch target, if any.
    pub fn branch_target(&self) -> Option<usize> {
        match self {
            Inst::Jmp(t) | Inst::Jcc { target: t, .. } => Some(*t),
            _ => None,
        }
    }

    /// True if control can fall through to the next instruction.
    pub fn falls_through(&self) -> bool {
        !matches!(self, Inst::Jmp(_) | Inst::Ret)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Mov { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::Load { dst, addr, size } => write!(f, "mov {dst}, {}{addr}", size_prefix(*size)),
            Inst::Store { addr, src, size } => {
                write!(f, "mov {}{addr}, {src}", size_prefix(*size))
            }
            Inst::Lea { dst, addr } => write!(f, "lea {dst}, {addr}"),
            Inst::Push(s) => write!(f, "push {s}"),
            Inst::Pop(d) => write!(f, "pop {d}"),
            Inst::Bin { op, dst, src } => write!(f, "{} {dst}, {src}", op.mnemonic()),
            Inst::Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            Inst::Test { a, b } => write!(f, "test {a}, {b}"),
            Inst::Jmp(t) => write!(f, "jmp L{t}"),
            Inst::Jcc { cond, target } => write!(f, "{} L{target}", cond.mnemonic()),
            Inst::Call(k) => write!(f, "call {k}"),
            Inst::Ret => f.write_str("ret"),
            Inst::Nop => f.write_str("nop"),
        }
    }
}

fn size_prefix(size: u8) -> &'static str {
    match size {
        1 => "byte ",
        2 => "word ",
        _ => "dword ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_asm_like() {
        let i = Inst::Load {
            dst: Reg::Eax,
            addr: Mem::new(Reg::Edx, 4),
            size: 4,
        };
        assert_eq!(i.to_string(), "mov eax, dword [edx+0x4]");
        let s = Inst::Store {
            addr: Mem::new(Reg::Ebp, -8),
            src: Operand::Imm(0),
            size: 4,
        };
        assert_eq!(s.to_string(), "mov dword [ebp-0x8], 0x0");
    }

    #[test]
    fn terminators() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Jmp(3).is_terminator());
        assert!(!Inst::Nop.is_terminator());
        assert!(Inst::Jcc {
            cond: Cond::Eq,
            target: 0
        }
        .falls_through());
        assert!(!Inst::Jmp(0).falls_through());
    }

    #[test]
    fn reg_indexing_is_dense() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
