//! Parallel-determinism and cache-correctness tests on the benchmark
//! generators: `AnalysisDriver` must produce bit-identical schemes and
//! sketches at any worker count — equal to the sequential
//! `Solver::infer` — and a re-submitted module must be answered entirely
//! from the fingerprint cache.

use std::fmt::Write as _;

use retypd_core::{Lattice, Solver, SolverResult};
use retypd_driver::{AnalysisDriver, DriverConfig, ModuleJob};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, GenConfig, ProgramGenerator};

fn generated_program(seed: u64, functions: usize) -> retypd_core::Program {
    let module = ProgramGenerator::new(GenConfig {
        seed,
        functions,
        structs: 3,
        ..GenConfig::default()
    })
    .generate();
    let (mir, _) = compile(&module).expect("generated module compiles");
    retypd_congen::generate(&mir)
}

/// Canonical rendering of everything inference produced: schemes, refined
/// and general sketches (structure, marks, and intervals via `Debug`), and
/// inconsistencies. Excludes timing/cache counters by construction.
fn render(result: &SolverResult) -> String {
    let mut out = String::new();
    for (name, pr) in &result.procs {
        let _ = writeln!(out, "{name}: {}", pr.scheme);
        let _ = writeln!(out, "  sketch: {:?}", pr.sketch);
        let _ = writeln!(out, "  general: {:?}", pr.general_sketch);
    }
    let _ = writeln!(out, "{:?}", result.inconsistencies);
    out
}

fn sketch_count(result: &SolverResult) -> usize {
    result.stats.sketch_states
}

#[test]
fn workers_do_not_change_results_on_bench_generators() {
    let lattice = Lattice::c_types();
    for (seed, functions) in [(3, 10), (7, 18), (11, 26)] {
        let program = generated_program(seed, functions);
        let seq = Solver::new(&lattice).infer(&program);
        let seq_render = render(&seq);
        for workers in [1usize, 2, 4, 8] {
            let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(workers));
            let got = driver.solve(&program);
            assert_eq!(
                render(&got),
                seq_render,
                "seed {seed}, {functions} fns, {workers} workers: schemes/sketches diverged"
            );
            assert_eq!(
                sketch_count(&got),
                sketch_count(&seq),
                "seed {seed}, {functions} fns, {workers} workers: sketch counts diverged"
            );
            // The wave-scheduled solve does exactly one pass-1 and one
            // pass-2 unit of work per SCC on a cold cache.
            let sccs = retypd_core::Condensation::compute(&program).sccs.len();
            assert_eq!(got.stats.cache_misses, 2 * sccs as u64);
        }
    }
}

#[test]
fn resubmitted_module_is_pure_fingerprint_hit() {
    let lattice = Lattice::c_types();
    let program = generated_program(5, 16);
    let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(2));
    let first = driver.solve(&program);
    assert_eq!(first.stats.cache_hits, 0, "cold cache cannot hit");
    assert!(first.stats.cache_misses > 0);
    let second = driver.solve(&program);
    assert_eq!(
        second.stats.cache_misses, 0,
        "identical module must be answered 100% from the cache"
    );
    assert_eq!(second.stats.cache_hits, first.stats.cache_misses);
    assert_eq!(render(&first), render(&second));
    // Exact stats parity too: cached entries carry their stats deltas.
    assert_eq!(first.stats.sketch_states, second.stats.sketch_states);
    assert_eq!(first.stats.graph_nodes, second.stats.graph_nodes);
    assert_eq!(first.stats.constraints, second.stats.constraints);
}

#[test]
fn batch_shares_scheme_work_across_cluster_members() {
    // Cluster members share a library module; the driver must recognize the
    // shared SCCs by fingerprint and re-solve only member-specific code.
    let lattice = Lattice::c_types();
    let spec = ClusterSpec {
        name: "t".into(),
        members: 3,
        shared_functions: 6,
        member_functions: 3,
        seed: 99,
        call_depth: 0,
    };
    let jobs: Vec<ModuleJob> = ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect();
    // Sequential batch: deterministic hit accounting.
    let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1));
    let reports = driver.solve_batch(&jobs);
    assert_eq!(reports[0].result.stats.cache_hits, 0);
    for r in &reports[1..] {
        assert!(
            r.result.stats.cache_hits > 0,
            "member {} shares library SCCs but hit nothing",
            r.name
        );
    }
    // A parallel batch produces the same per-module results.
    let par = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(4));
    let preports = par.solve_batch(&jobs);
    for (a, b) in reports.iter().zip(&preports) {
        assert_eq!(a.name, b.name);
        assert_eq!(render(&a.result), render(&b.result), "module {}", a.name);
    }
}

#[test]
fn solve_batch_reports_in_job_order() {
    let lattice = Lattice::c_types();
    let jobs: Vec<ModuleJob> = [(21u64, 6usize), (22, 8), (23, 10), (24, 12)]
        .iter()
        .map(|&(seed, fns)| ModuleJob {
            name: format!("m{seed}"),
            program: generated_program(seed, fns),
        })
        .collect();
    let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(3));
    let reports = driver.solve_batch(&jobs);
    let names: Vec<&str> = reports.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["m21", "m22", "m23", "m24"]);
}
