//! Criterion benchmark: sketch lattice operations (Figure 18).

use criterion::{criterion_group, criterion_main, Criterion};
use retypd_bench::sketch_for;
use retypd_core::Lattice;

fn bench(c: &mut Criterion) {
    let lattice = Lattice::c_types();
    let a = sketch_for(
        "f.in_stack0 <= t; t.load.σ32@0 <= t; t.load.σ32@4 <= int; int <= f.out_eax",
        &lattice,
    );
    let b2 = sketch_for(
        "f.in_stack0 <= u; int <= u.store.σ32@0; u.load.σ32@8 <= #FileDescriptor",
        &lattice,
    );
    c.bench_function("sketch_meet", |b| b.iter(|| a.meet(&b2, &lattice)));
    c.bench_function("sketch_join", |b| b.iter(|| a.join(&b2, &lattice)));
    c.bench_function("sketch_leq", |b| b.iter(|| a.leq(&b2, &lattice)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
