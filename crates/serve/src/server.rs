//! The sharded analysis server.
//!
//! ## Architecture
//!
//! ```text
//!            accept()              bounded admission            shard threads
//!  client ──▶ acceptor ──▶ conn handler ──▶ [queued < limit?] ──▶ shard 0: AnalysisDriver + cache
//!  client ──▶            ──▶ conn handler ──▶        │         ──▶ shard 1: AnalysisDriver + cache
//!                                            reject: Overloaded    …  (route: fingerprint % shards)
//! ```
//!
//! * **One driver per shard.** Each shard thread owns a long-lived
//!   [`AnalysisDriver`] (owned lattice, bounded cache) for its whole life.
//!   Modules are routed by [`ModuleJob::fingerprint`]` % shards`, so a
//!   re-submitted module always lands on the shard whose cache already
//!   holds its SCCs — the warm path is a pure fingerprint hit.
//! * **Admission control.** A global in-flight job counter guards the
//!   queues: a request whose batch would push the count past
//!   [`ServeConfig::queue_depth`] is refused with `overloaded` *before*
//!   anything is enqueued (no partial admission), so an overloaded server
//!   answers immediately instead of stacking work. A batch larger than the
//!   whole budget could never be admitted, so it gets a permanent `error`
//!   naming the limit instead of an `overloaded` a retrying client would
//!   chase forever.
//! * **Panic isolation.** A solver panic is caught on the shard thread:
//!   the job's admission slot is released, the client gets an `error`
//!   response naming the module, and the shard rebuilds its driver (cold
//!   cache) and keeps serving — one hostile module cannot kill a shard.
//! * **Graceful drain.** `shutdown` (wire message or
//!   [`ServerHandle::shutdown`]) stops admissions, lets every queued job
//!   finish, and joins the shard threads; in-flight responses are
//!   delivered.
//!
//! Determinism: shard routing is content-addressed and each module solves
//! on exactly one driver, so results are bit-identical to in-process
//! [`AnalysisDriver::solve_batch`] — pinned by `tests/serve_determinism.rs`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use retypd_core::{Lattice, SolverResult};
use retypd_driver::{AnalysisDriver, CacheStats, DriverConfig, ModuleJob, ModuleReport};

use crate::wire::{
    self, Request, Response, WireModule, WireReport, WireShardStats, WireStats,
};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Number of shards (each owns one driver and one cache).
    pub shards: usize,
    /// Worker threads inside each shard's wave scheduler.
    pub workers_per_shard: usize,
    /// Admission limit: maximum modules admitted but not yet finished.
    /// Clamped to at least 1 (a depth of 0 would permanently reject all
    /// work).
    pub queue_depth: usize,
    /// Per-shard driver cache capacity (see
    /// [`DriverConfig::cache_capacity`]); a resident service must bound its
    /// caches, so unlike the driver default this is `Some` out of the box.
    pub cache_capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            workers_per_shard: 1,
            queue_depth: 256,
            cache_capacity: Some(4096),
        }
    }
}

/// A solve job routed to a shard.
struct ShardJob {
    /// Position in the originating batch (responses preserve order).
    index: usize,
    job: ModuleJob,
    fingerprint: u64,
    /// `Err` carries a description of a solver panic on this module.
    reply: mpsc::Sender<(usize, Result<WireReport, String>)>,
}

/// One shard's handle: its queue sender and published statistics.
struct Shard {
    /// `None` once draining has begun (new sends fail fast).
    tx: Mutex<Option<mpsc::Sender<ShardJob>>>,
    /// Snapshot refreshed by the shard thread after every job.
    stats: Mutex<WireShardStats>,
}

struct Shared {
    shards: Vec<Shard>,
    queue_depth: usize,
    /// Modules admitted and not yet finished (shards decrement).
    queued: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    draining: AtomicBool,
    local_addr: SocketAddr,
}

impl Shared {
    /// Admits `n` jobs atomically, or reports the current queue depth.
    fn admit(&self, n: usize) -> Result<(), usize> {
        let mut cur = self.queued.load(Ordering::Relaxed);
        loop {
            if self.draining.load(Ordering::Relaxed) {
                return Err(cur);
            }
            if cur + n > self.queue_depth {
                return Err(cur);
            }
            match self.queued.compare_exchange(
                cur,
                cur + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        // Hang up the shard queues: shards finish what is buffered, then
        // their `for` loops end.
        for shard in &self.shards {
            shard.tx.lock().expect("shard tx lock").take();
        }
        // Nudge the acceptor out of `accept()`. A bind to 0.0.0.0/[::] is
        // not a connectable destination everywhere, so aim the nudge at
        // loopback on the same port; residual failure (e.g. ephemeral-port
        // exhaustion) leaves the acceptor parked until the next real
        // connection, which also observes `draining` and lets it exit.
        let mut nudge = self.local_addr;
        if nudge.ip().is_unspecified() {
            nudge.set_ip(match nudge.ip() {
                std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&nudge, std::time::Duration::from_secs(1));
    }

    fn stats(&self) -> WireStats {
        WireStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            queue_limit: self.queue_depth,
            shards: self
                .shards
                .iter()
                .map(|s| *s.stats.lock().expect("shard stats lock"))
                .collect(),
        }
    }
}

/// A running server: its bound address and lifecycle control.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Begins a graceful drain and waits for queued work and every server
    /// thread to finish.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.join_threads();
    }

    /// Blocks until the server drains (a `shutdown` wire message, or
    /// [`ServerHandle::shutdown`] from another handle-owning thread).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// How a shard runs one job. Production is always
/// [`AnalysisDriver::solve`]; tests inject a panicking hook to pin the
/// shard's panic isolation end to end over a real socket.
type SolveHook =
    Arc<dyn Fn(&AnalysisDriver<'static>, &ModuleJob) -> SolverResult + Send + Sync>;

/// Starts a server.
///
/// # Errors
///
/// Fails if the listen address cannot be bound.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    start_with_hook(config, Arc::new(|driver, job| driver.solve(&job.program)))
}

fn start_with_hook(config: ServeConfig, hook: SolveHook) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shards = config.shards.max(1);

    let mut shard_handles = Vec::new();
    let mut shard_threads = Vec::new();
    let mut receivers = Vec::new();
    for shard_id in 0..shards {
        let (tx, rx) = mpsc::channel::<ShardJob>();
        shard_handles.push(Shard {
            tx: Mutex::new(Some(tx)),
            stats: Mutex::new(WireShardStats {
                shard: shard_id,
                jobs: 0,
                cache: CacheStats::default(),
            }),
        });
        receivers.push(rx);
    }

    let shared = Arc::new(Shared {
        shards: shard_handles,
        queue_depth: config.queue_depth.max(1),
        queued: AtomicUsize::new(0),
        accepted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        local_addr,
    });

    for (shard_id, rx) in receivers.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let hook = Arc::clone(&hook);
        let driver_config = DriverConfig {
            workers: config.workers_per_shard.max(1),
            cache_capacity: config.cache_capacity,
        };
        shard_threads.push(
            std::thread::Builder::new()
                .name(format!("retypd-shard-{shard_id}"))
                .spawn(move || shard_main(shard_id, rx, driver_config, shared, hook))
                .expect("spawn shard thread"),
        );
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("retypd-acceptor".into())
            .spawn(move || acceptor_main(listener, shared))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        shard_threads,
    })
}

fn shard_main(
    shard_id: usize,
    rx: mpsc::Receiver<ShardJob>,
    driver_config: DriverConfig,
    shared: Arc<Shared>,
    hook: SolveHook,
) {
    // The driver outlives every request: its cache *is* the shard's state.
    let mut driver = AnalysisDriver::owned(Lattice::c_types(), driver_config);
    let mut jobs_done = 0u64;
    for msg in rx {
        let start = Instant::now();
        // A solver panic on one hostile/unusual module must not kill the
        // shard: an unwinding shard thread would leak the job's admission
        // slot and turn 1/N of the fingerprint space into a dead letter.
        // Catch the panic, answer with an error, and rebuild the driver —
        // its caches may hold state from the half-finished solve.
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            hook(&driver, &msg.job)
        }));
        let reply = match solved {
            Ok(result) => {
                let report = ModuleReport {
                    name: msg.job.name.clone(),
                    result,
                    wall: start.elapsed(),
                };
                jobs_done += 1;
                Ok(WireReport::from_report(&report, msg.fingerprint, shard_id))
            }
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                driver = AnalysisDriver::owned(Lattice::c_types(), driver_config);
                Err(format!("solver panicked on module {:?}: {what}", msg.job.name))
            }
        };
        // After a panic the rebuilt driver reports a cold cache — accurate,
        // since the old cache was discarded with it.
        *shared.shards[shard_id].stats.lock().expect("shard stats lock") = WireShardStats {
            shard: shard_id,
            jobs: jobs_done,
            cache: driver.cache_stats(),
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        // A dropped reply receiver just means the client went away.
        let _ = msg.reply.send((msg.index, reply));
    }
}

fn acceptor_main(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => {
                // Persistent accept errors (e.g. EMFILE under fd
                // exhaustion) would otherwise spin this loop at 100% CPU;
                // back off briefly before retrying.
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        // Frames are small request/response pairs; Nagle + delayed ACK
        // would add ~40ms to every warm hit.
        stream.set_nodelay(true).ok();
        let shared = Arc::clone(&shared);
        // Connection handlers are detached: they exit on client disconnect,
        // and during a drain every new request is refused, so none of them
        // can hold work back.
        let _ = std::thread::Builder::new()
            .name("retypd-conn".into())
            .spawn(move || handle_conn(stream, shared));
    }
}

fn handle_conn(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF between frames
            Err(wire::WireError::Protocol(m)) => {
                // A refused frame (e.g. announced length over the cap)
                // leaves the stream in a known state — only the 4-byte
                // prefix was consumed — so say why before hanging up
                // instead of a bare connection reset.
                let _ = wire::write_frame(&mut stream, &Response::Error(m).encode());
                // The peer's refused payload is typically still arriving;
                // closing with unread received data sends an RST that
                // would destroy the reply in flight. Briefly shed the
                // incoming bytes (bounded, so a firehosing peer cannot
                // pin the thread) to let the error frame flush first.
                let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
                let deadline = Instant::now() + Duration::from_millis(250);
                let mut sink = [0u8; 8192];
                while Instant::now() < deadline {
                    match std::io::Read::read(&mut stream, &mut sink) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                }
                return;
            }
            Err(_) => return, // broken socket
        };
        let response = match Request::decode(&payload) {
            Ok(req) => respond(req, &shared),
            Err(e) => Response::Error(e.to_string()),
        };
        if wire::write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

fn respond(req: Request, shared: &Shared) -> Response {
    match req {
        Request::SolveModule(m) => solve(std::slice::from_ref(&m), shared),
        Request::SolveBatch(ms) => solve(&ms, shared),
        Request::Stats => Response::Stats(shared.stats()),
        Request::Shutdown => {
            shared.begin_drain();
            Response::ShuttingDown
        }
    }
}

fn solve(modules: &[WireModule], shared: &Shared) -> Response {
    if shared.draining.load(Ordering::Relaxed) {
        return Response::ShuttingDown;
    }
    if modules.is_empty() {
        return Response::Solved(Vec::new());
    }
    // Reconstruct jobs *before* admission so a malformed request costs no
    // queue budget.
    let jobs = match modules
        .iter()
        .map(WireModule::to_job)
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(jobs) => jobs,
        Err(e) => return Response::Error(e.to_string()),
    };
    // A batch bigger than the whole admission budget could never be
    // admitted, even idle — that is a permanent error (retrying on
    // `overloaded` would spin forever), so name the limit instead.
    if jobs.len() > shared.queue_depth {
        return Response::Error(format!(
            "batch of {} modules can never fit the admission limit of {}; \
             split it into smaller batches",
            jobs.len(),
            shared.queue_depth
        ));
    }
    // All-or-nothing admission.
    if let Err(queued) = shared.admit(jobs.len()) {
        if shared.draining.load(Ordering::Relaxed) {
            // A drain refusal is not overload pressure: report the drain
            // and leave the `rejected` counter (documented as overload
            // rejections) alone.
            return Response::ShuttingDown;
        }
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::Overloaded {
            queued,
            limit: shared.queue_depth,
        };
    }
    shared.accepted.fetch_add(1, Ordering::Relaxed);

    let n = jobs.len();
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut dispatched = 0usize;
    for (index, job) in jobs.into_iter().enumerate() {
        let fingerprint = job.fingerprint();
        let shard = (fingerprint % shared.shards.len() as u64) as usize;
        let sent = {
            let guard = shared.shards[shard].tx.lock().expect("shard tx lock");
            match guard.as_ref() {
                Some(tx) => tx
                    .send(ShardJob {
                        index,
                        job,
                        fingerprint,
                        reply: reply_tx.clone(),
                    })
                    .is_ok(),
                None => false,
            }
        };
        if sent {
            dispatched += 1;
        } else {
            // Drain raced us between `admit` and dispatch: release the
            // budget for this job ourselves.
            shared.queued.fetch_sub(1, Ordering::Relaxed);
        }
    }
    drop(reply_tx);

    let mut reports: Vec<Option<WireReport>> = (0..n).map(|_| None).collect();
    let mut failures: Vec<String> = Vec::new();
    for (index, report) in reply_rx {
        match report {
            Ok(r) => reports[index] = Some(r),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        // One or more modules crashed the solver; the shard survived and
        // the budget was released, so report the failure rather than a
        // bogus drain.
        return Response::Error(failures.join("; "));
    }
    if dispatched < n || reports.iter().any(Option::is_none) {
        return Response::ShuttingDown;
    }
    Response::Solved(reports.into_iter().map(Option::unwrap).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientError};
    use retypd_core::Program;

    fn job(name: &str) -> ModuleJob {
        ModuleJob {
            name: name.into(),
            program: Program::new(),
        }
    }

    #[test]
    fn solver_panic_is_isolated_to_an_error_response() {
        // Inject a solver that panics on one module name: the real
        // catch_unwind / slot-release / driver-rebuild path runs over a
        // real socket.
        let hook: SolveHook = Arc::new(|driver, job| {
            assert!(!job.name.contains("boom"), "injected solver bug");
            driver.solve(&job.program)
        });
        let handle = start_with_hook(ServeConfig::default(), hook).expect("bind");
        let mut client = Client::connect(handle.addr()).expect("connect");
        // The panicking module answers with an error naming it, not a
        // dropped connection or a bogus shutting_down.
        match client.solve_batch(&[job("ok_a"), job("boom"), job("ok_b")]) {
            Err(ClientError::Server(m)) => {
                assert!(m.contains("boom") && m.contains("panicked"), "{m}");
            }
            other => panic!("expected a server error, got {other:?}"),
        }
        // The admission budget is fully released (no leaked slots)...
        let stats = client.stats().expect("stats");
        assert_eq!(stats.queued, 0, "panic leaked an admission slot");
        // ...and the shard that panicked keeps serving: routing is by
        // program fingerprint and every test job shares the same (empty)
        // program, so this lands on exactly the shard that just panicked.
        let report = client.solve_module(&job("after")).expect("shard still serves");
        assert_eq!(report.name, "after");
        handle.shutdown();
    }
}
