//! The consistent-hash ring: which backend owns a `(lattice_fp,
//! module_fp)` key.
//!
//! ## Why consistent hashing (and not `fp % n`)
//!
//! Inside one `serve` process, `fingerprint % shards` is perfect: the
//! shard count is fixed for the process's life. A gateway's membership is
//! *not* fixed — backends are evicted when unhealthy and re-added when
//! they recover — and under `% n` a single membership change remaps
//! almost every key, stranding every warm per-process persistent store.
//! On a consistent-hash ring, removing one of `n` backends moves only
//! ~`1/n` of the keyspace, and **re-adding it restores exactly the
//! original map**: a recycled process comes back to the same keys its
//! replayed store already holds.
//!
//! ## Determinism
//!
//! The ring is a pure function of the *healthy slot set*: [`Ring::build`]
//! hashes each slot index into [`VNODES`] points (stable FNV-64, no
//! randomness), sorts them, and routes a key to the first point at or
//! clockwise after it. Two gateways (or one gateway before and after a
//! restart) with the same healthy set route identically — and since every
//! backend solves with the same deterministic solver, *results* are
//! bit-identical regardless of topology; routing only decides which warm
//! store answers.
//!
//! The hedge target for a key is the next point owned by a *different*
//! slot — deterministic too, so a hedged request always duplicates onto
//! the same second opinion.

use retypd_driver::fingerprint::Fnv64;

/// Virtual nodes per backend slot. 64 keeps the per-slot keyspace share
/// within a few percent of fair at single-digit backend counts while the
/// whole ring for 16 backends still fits in ~16 KiB.
pub const VNODES: usize = 64;

/// One routing point on the ring: a hash position owned by a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Point {
    hash: u64,
    slot: usize,
}

/// An immutable consistent-hash ring over a set of backend slots.
///
/// Slots are *stable indices* (position in the gateway's configured
/// backend list), not addresses: a backend restarted on a new ephemeral
/// port keeps its slot, so it reclaims exactly the keyspace its persistent
/// store is warm for.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Points sorted by hash; empty when no slot is healthy.
    points: Vec<Point>,
}

/// The routing key: a stable hash of `(lattice_fp, module_fp)`. Mixing the
/// lattice in gives same-lattice tenants affinity — the same module under
/// two lattices may land on different backends, and each backend's store
/// keys already segregate by lattice fingerprint.
pub fn route_key(lattice_fp: u64, module_fp: u64) -> u64 {
    let mut h = Fnv64::new("gateway.route");
    h.write_u64(lattice_fp);
    h.write_u64(module_fp);
    h.finish()
}

impl Ring {
    /// Builds the ring for a set of healthy slots. Order does not matter;
    /// duplicates are debug-rejected. An empty set yields an empty ring
    /// (every route is `None` — the gateway reports unavailability rather
    /// than guessing).
    pub fn build(slots: &[usize]) -> Ring {
        debug_assert!(
            {
                let mut sorted: Vec<usize> = slots.to_vec();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate slots in ring"
        );
        let mut points = Vec::with_capacity(slots.len() * VNODES);
        for &slot in slots {
            for vnode in 0..VNODES {
                let mut h = Fnv64::new("gateway.ring");
                h.write_u64(slot as u64);
                h.write_u64(vnode as u64);
                points.push(Point {
                    hash: h.finish(),
                    slot,
                });
            }
        }
        // Sort by hash; break (astronomically unlikely) hash ties by slot
        // so the ring is a pure function of the set, not the build order.
        points.sort_unstable_by(|a, b| (a.hash, a.slot).cmp(&(b.hash, b.slot)));
        Ring { points }
    }

    /// Number of distinct healthy slots on the ring.
    pub fn len(&self) -> usize {
        let mut slots: Vec<usize> = self.points.iter().map(|p| p.slot).collect();
        slots.sort_unstable();
        slots.dedup();
        slots.len()
    }

    /// True when no slot is healthy.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The slot owning `key`: the first point at or clockwise after it.
    pub fn route(&self, key: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|p| p.hash < key);
        let p = self.points.get(i).unwrap_or(&self.points[0]);
        Some(p.slot)
    }

    /// The hedge target for `key`: the owner of the next point belonging
    /// to a *different* slot than `primary`, walking clockwise. `None`
    /// when no second distinct healthy slot exists.
    pub fn hedge_target(&self, key: u64, primary: usize) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|p| p.hash < key);
        for off in 0..self.points.len() {
            let p = self.points[(start + off) % self.points.len()];
            if p.slot != primary {
                return Some(p.slot);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = u64> {
        (0..n).map(|i| route_key(7, i.wrapping_mul(0x9e3779b97f4a7c15)))
    }

    #[test]
    fn ring_is_a_pure_function_of_the_slot_set() {
        let a = Ring::build(&[0, 1, 2, 3]);
        let b = Ring::build(&[3, 1, 0, 2]);
        for k in keys(1000) {
            assert_eq!(a.route(k), b.route(k), "order must not matter");
        }
    }

    #[test]
    fn single_slot_takes_everything_and_empty_takes_nothing() {
        let one = Ring::build(&[5]);
        let none = Ring::build(&[]);
        for k in keys(100) {
            assert_eq!(one.route(k), Some(5));
            assert_eq!(one.hedge_target(k, 5), None, "no second opinion exists");
            assert_eq!(none.route(k), None);
        }
    }

    #[test]
    fn removal_only_moves_the_removed_slots_keys() {
        let full = Ring::build(&[0, 1, 2, 3]);
        let without_2 = Ring::build(&[0, 1, 3]);
        let mut moved = 0u64;
        let mut total = 0u64;
        for k in keys(4000) {
            total += 1;
            let before = full.route(k).unwrap();
            let after = without_2.route(k).unwrap();
            if before == 2 {
                assert_ne!(after, 2);
                moved += 1;
            } else {
                assert_eq!(before, after, "a surviving slot's keys must not move");
            }
        }
        // ~1/4 of the keyspace belonged to slot 2 (vnode balance is
        // approximate; allow a generous band).
        assert!(
            (total / 10..=total / 2).contains(&moved),
            "slot 2 owned {moved}/{total} keys — ring badly unbalanced"
        );
    }

    #[test]
    fn readding_restores_the_original_map() {
        let full = Ring::build(&[0, 1, 2, 3]);
        let readded = Ring::build(&[2, 0, 3, 1]);
        for k in keys(2000) {
            assert_eq!(full.route(k), readded.route(k));
        }
    }

    #[test]
    fn hedge_target_is_deterministic_and_distinct() {
        let ring = Ring::build(&[0, 1, 2]);
        for k in keys(500) {
            let primary = ring.route(k).unwrap();
            let hedge = ring.hedge_target(k, primary).unwrap();
            assert_ne!(hedge, primary);
            assert_eq!(hedge, ring.hedge_target(k, primary).unwrap());
        }
    }

    #[test]
    fn all_slots_get_some_keyspace() {
        let ring = Ring::build(&[0, 1, 2, 3]);
        let mut counts = [0u64; 4];
        for k in keys(4000) {
            counts[ring.route(k).unwrap()] += 1;
        }
        for (slot, &c) in counts.iter().enumerate() {
            assert!(c > 0, "slot {slot} owns no keys");
        }
    }
}
