//! Ad-hoc subtyping via a user-extended lattice (§2.8): Windows-style
//! handle hierarchies (`HBRUSH ⊑ HGDI`) and a custom `#signal-number`
//! semantic class, added at run time.
//!
//! ```text
//! cargo run --example custom_lattice
//! ```

use retypd::core::parse::parse_constraint_set;
use retypd::core::{Lattice, Program, Solver, Symbol};

fn main() {
    // Extend the stock C lattice with an ad-hoc handle hierarchy: a GDI
    // handle is a generic handle over brushes and pens (§2.8), and tag a
    // semantic class for signal numbers.
    let mut builder = Lattice::c_types_builder();
    builder.add_under("HGDI", "HANDLE").expect("fresh element");
    builder.add_under("HBRUSH", "HGDI").expect("fresh element");
    builder.add_under("HPEN", "HGDI").expect("fresh element");
    builder.le("⊥", "HBRUSH").expect("known");
    builder.le("⊥", "HPEN").expect("known");
    builder
        .add_under("#signal-number", "int")
        .expect("fresh element");
    builder.le("⊥", "#signal-number").expect("known");
    let lattice = builder.build().expect("still a lattice");

    // A paint routine that accepts any GDI handle; callers pass a brush
    // and a pen. The handle types are all void* in the headers — only the
    // lattice knows the hierarchy.
    let constraints = parse_constraint_set(
        "
        paint.in_stack0 <= h
        h <= $HGDI
        $HBRUSH <= paint.in_stack0
        $HPEN <= paint.in_stack0
        ",
    )
    .expect("parses");
    let mut program = Program::new();
    program.procs.push(retypd::core::Procedure {
        name: Symbol::intern("paint"),
        constraints,
        callsites: vec![],
    });
    let result = Solver::new(&lattice).infer(&program);
    let proc = &result.procs[&Symbol::intern("paint")];
    let sk = proc.sketch.as_ref().expect("sketch");
    let s = sk
        .walk(&[retypd::core::Label::in_stack(0)])
        .expect("param");
    let (low, high) = sk.interval(s);
    println!("paint's handle parameter:");
    println!("  lower bound: {}", lattice.name(low)); // HGDI = HBRUSH ∨ HPEN
    println!("  upper bound: {}", lattice.name(high)); // HGDI
    println!("  (the ad-hoc hierarchy resolved both bounds to HGDI)");
    assert_eq!(lattice.name(low), "HGDI");
    assert_eq!(lattice.name(high), "HGDI");

    // No scalar inconsistencies: HBRUSH and HPEN really are HGDIs.
    assert!(result.inconsistencies.is_empty());
    println!("\nconsistency check: no scalar violations");
}
