//! Figure 4's pointer-aliasing programs, through the public API: both
//! programs copy `x` to `y` through aliased pointers, and both must entail
//! `X ⊑ Y` — the property that forced the split of `Ptr(T)` into separate
//! `.load`/`.store` capabilities (§3.3).

use retypd::core::graph::ConstraintGraph;
use retypd::core::parse::{parse_constraint_set, parse_derived_var};
use retypd::core::saturation::saturate;
use retypd::core::transducer::accepts;

fn entails(cs: &str, lhs: &str, rhs: &str) -> bool {
    let cs = parse_constraint_set(cs).unwrap();
    let mut g = ConstraintGraph::build(&cs);
    saturate(&mut g);
    accepts(
        &g,
        &parse_derived_var(lhs).unwrap(),
        &parse_derived_var(rhs).unwrap(),
    )
}

#[test]
fn program_f_copies_through_aliases() {
    // f() { p = q; *p = x; y = *q; }  —  C′1 of §3.3.
    let c1 = "q <= p; x <= p.store; q.load <= y";
    assert!(entails(c1, "x", "y"));
    assert!(!entails(c1, "y", "x"));
}

#[test]
fn program_g_copies_through_aliases() {
    // g() { p = q; *q = x; y = *p; }  —  C′2 of §3.3.
    let c2 = "q <= p; x <= q.store; p.load <= y";
    assert!(entails(c2, "x", "y"));
    assert!(!entails(c2, "y", "x"));
}

#[test]
fn unified_ptr_constructor_would_fail_one_direction() {
    // The degenerate outcomes the paper warns about: with a covariant
    // Ptr(T), C′1 would fail; with a contravariant one, C′2 would fail.
    // Retypd's split capabilities handle both; check that the *converse*
    // flows are still correctly rejected (no accidental equivalence).
    let c1 = "q <= p; x <= p.store; q.load <= y";
    let c2 = "q <= p; x <= q.store; p.load <= y";
    assert!(!entails(c1, "p.load", "x"));
    assert!(!entails(c2, "y", "q.store"));
}

#[test]
fn figure14_lazy_pointer_saturation() {
    // {y ⊑ p, p ⊑ x, A ⊑ x.store, y.load ⊑ B} ⊢ A ⊑ B via the lazily
    // instantiated S-POINTER rule (the dashed edge of Figure 14).
    let cs = "y <= p; p <= x; A <= x.store; y.load <= B";
    assert!(entails(cs, "A", "B"));
    assert!(!entails(cs, "B", "A"));
}
