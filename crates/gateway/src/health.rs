//! Backend health classification.
//!
//! The health checker periodically sends each backend the ordinary
//! `stats` wire request and feeds the raw reply bytes through
//! [`classify_stats_reply`] — a **pure, panic-free** function, separated
//! out precisely so the fuzzer can drive it with mutated backend replies:
//! a backend that answers with garbage must *degrade to unhealthy*, never
//! take the router down with it. (`retypd-fuzz`'s grammar tier mutates
//! real stats replies against this function, and the `gwstats_*` corpus
//! entries replay the survivors.)

use retypd_serve::wire::{Response, WireStats};

/// What a health probe learned about a backend.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// The decoded stats reply (pid, start time, admission counters,
    /// per-shard cache/persistence gauges).
    pub stats: WireStats,
}

/// Classifies one backend `stats` reply. `Ok` means the backend is
/// healthy and the report carries its vitals; `Err` names why the reply
/// disqualifies it (the supervisor marks the backend unhealthy and evicts
/// it from the ring).
///
/// Every failure mode a peer can express — non-JSON bytes, JSON of the
/// wrong shape, a non-`stats` response kind, missing or type-confused
/// required fields, a structurally valid reply describing an impossible
/// server — lands in `Err`, not a panic: this function is the router's
/// blast door against a compromised or confused backend.
pub fn classify_stats_reply(payload: &[u8]) -> Result<ProbeReport, String> {
    let stats = match Response::decode(payload) {
        Ok(Response::Stats(s)) => s,
        Ok(other) => {
            return Err(format!(
                "stats probe answered with {:?} instead of stats",
                response_kind(&other)
            ))
        }
        Err(e) => return Err(format!("unreadable stats reply: {e}")),
    };
    // Shape sanity: `serve` clamps its queue depth to ≥ 1 and always runs
    // ≥ 1 shard, so a reply violating either describes something that is
    // not a healthy retypd-serve — treat it as such even though it parsed.
    if stats.queue_limit == 0 {
        return Err("stats reply claims a zero admission limit".into());
    }
    if stats.shards.is_empty() {
        return Err("stats reply lists no shards".into());
    }
    if stats.queued > stats.queue_limit {
        return Err(format!(
            "stats reply claims {} queued over a limit of {}",
            stats.queued, stats.queue_limit
        ));
    }
    Ok(ProbeReport { stats })
}

/// The response discriminator, for error messages (avoids dragging a full
/// `Debug` of a potentially huge mutated reply into logs).
fn response_kind(r: &Response) -> &'static str {
    match r {
        Response::Solved(_) => "solved",
        Response::Report { .. } => "report",
        Response::BatchDone(_) => "batch_done",
        Response::Stats(_) => "stats",
        Response::Overloaded { .. } => "overloaded",
        Response::Metrics(_) => "metrics",
        Response::MetricsText(_) => "metrics_text",
        Response::ShuttingDown => "shutting_down",
        Response::Error(_) => "error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retypd_serve::wire::{WireShardStats, WireStats};
    use retypd_driver::CacheStats;

    fn healthy_reply() -> Vec<u8> {
        Response::Stats(WireStats {
            accepted: 10,
            rejected: 0,
            queued: 1,
            queue_limit: 256,
            pid: 4242,
            start_ns: 1_700_000_000_000_000_000,
            shards: vec![WireShardStats {
                shard: 0,
                jobs: 10,
                rebuilds: 0,
                cache: CacheStats::default(),
                persisted_entries: 3,
                replayed_entries: 3,
                replay_ns: 1000,
            }],
        })
        .encode()
    }

    #[test]
    fn healthy_reply_classifies_healthy() {
        let report = classify_stats_reply(&healthy_reply()).expect("healthy");
        assert_eq!(report.stats.pid, 4242);
        assert_eq!(report.stats.shards.len(), 1);
    }

    #[test]
    fn garbage_and_wrong_kinds_degrade_not_panic() {
        // Raw garbage, truncated JSON, wrong kind, shape violations: all
        // Err, none panic.
        for bad in [
            &b"\xff\xfe\x00garbage"[..],
            br#"{"kind": "stats""#,
            br#"{"kind": "shutting_down"}"#,
            br#"{"kind": "stats"}"#,
            br#"{"kind": "stats", "accepted": "many", "rejected": 0, "queued": 0, "queue_limit": 1, "shards": []}"#,
            br#"{"kind": "stats", "accepted": 1, "rejected": 0, "queued": 0, "queue_limit": 1, "shards": []}"#,
            br#"{"kind": "stats", "accepted": 1, "rejected": 0, "queued": 9, "queue_limit": 1, "shards": [{"shard": 0, "jobs": 1, "hits": 0, "misses": 1, "evictions": 0, "scheme_entries": 1, "refine_entries": 1}]}"#,
            br#"{"kind": "stats", "accepted": 1, "rejected": 0, "queued": 0, "queue_limit": 0, "shards": [{"shard": 0, "jobs": 1, "hits": 0, "misses": 1, "evictions": 0, "scheme_entries": 1, "refine_entries": 1}]}"#,
        ] {
            assert!(
                classify_stats_reply(bad).is_err(),
                "should degrade: {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn missing_optional_liveness_fields_stay_healthy() {
        // A pre-gateway server omits pid/start_ns; that is version skew,
        // not ill health.
        let old = br#"{"kind": "stats", "accepted": 1, "rejected": 0, "queued": 0, "queue_limit": 8, "shards": [{"shard": 0, "jobs": 1, "hits": 1, "misses": 0, "evictions": 0, "scheme_entries": 1, "refine_entries": 1}]}"#;
        let report = classify_stats_reply(old).expect("version skew is healthy");
        assert_eq!(report.stats.pid, 0);
    }
}
