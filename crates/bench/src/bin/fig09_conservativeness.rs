//! Figure 9: conservativeness rate and multi-level pointer accuracy.

use retypd_bench::{clusters, generate_single, pct, SINGLES};
use retypd_core::Lattice;
use retypd_eval::harness::evaluate_module;
use retypd_eval::metrics::{average, ToolMetrics};
use retypd_minic::genprog::ProgramGenerator;

fn main() {
    let lattice = Lattice::c_types();
    let mut rows: Vec<[ToolMetrics; 3]> = Vec::new();
    for spec in clusters() {
        let mut member_scores = Vec::new();
        for (name, module) in ProgramGenerator::generate_cluster(&spec) {
            let r = evaluate_module(&name, &module, &lattice);
            member_scores.push([r.scores.retypd, r.scores.tie, r.scores.unification]);
        }
        rows.push([
            average(&member_scores.iter().map(|r| r[0]).collect::<Vec<_>>()),
            average(&member_scores.iter().map(|r| r[1]).collect::<Vec<_>>()),
            average(&member_scores.iter().map(|r| r[2]).collect::<Vec<_>>()),
        ]);
    }
    for spec in SINGLES {
        let module = generate_single(spec);
        let r = evaluate_module(spec.name, &module, &lattice);
        rows.push([r.scores.retypd, r.scores.tie, r.scores.unification]);
    }
    println!("Figure 9: conservativeness / multi-level pointer accuracy");
    println!("{:<14} {:>16} {:>16}", "Tool", "Conservative", "Ptr accuracy");
    println!("{}", "-".repeat(48));
    for (i, tool) in ["Retypd", "TIE-like", "Unification"].iter().enumerate() {
        let m = average(&rows.iter().map(|r| r[i]).collect::<Vec<_>>());
        println!("{:<14} {:>16} {:>16}", tool, pct(m.conservativeness), pct(m.pointer_accuracy));
    }
    println!("\n(paper: Retypd 95% / 88%, SecondWrite 96% / 73%, TIE 94% / —)");
}
