//! Quickstart: infer a polymorphic type scheme from hand-written type
//! constraints, solve it into a sketch, and print the reconstructed C type.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This reproduces the Figure 2 workflow of the paper at the constraint
//! level: the constraints below describe a procedure that walks a linked
//! list (`τ.load.σ32@0 ⊑ τ`) and passes the second field of the final node
//! to `close`.

use retypd::core::parse::parse_constraint_set;
use retypd::core::{CTypeBuilder, Lattice, Program, Solver, Symbol};

fn main() {
    // 1. A constraint set, written in the paper's notation. In the real
    //    pipeline these come from abstract interpretation of machine code
    //    (see the `decompile_binary` example).
    let constraints = parse_constraint_set(
        "
        close_last.in_stack0 <= t
        t.load.σ32@0 <= t
        t.load.σ32@4 <= #FileDescriptor
        t.load.σ32@4 <= int
        int <= close_last.out_eax
        #SuccessZ <= close_last.out_eax
        ",
    )
    .expect("constraints parse");

    // 2. Build a one-procedure program and run the solver.
    let lattice = Lattice::c_types();
    let mut program = Program::new();
    program.procs.push(retypd::core::Procedure {
        name: Symbol::intern("close_last"),
        constraints,
        callsites: vec![],
    });
    let result = Solver::new(&lattice).infer(&program);
    let proc = &result.procs[&Symbol::intern("close_last")];

    // 3. The most-general type scheme (∀-quantified, recursively
    //    constrained — Definition 3.4).
    println!("type scheme:\n  {}\n", proc.scheme);

    // 4. The sketch: a regular tree of capabilities with lattice marks
    //    (§3.5). The recursive struct appears as a cycle.
    let sketch = proc.sketch.as_ref().expect("sketch inferred");
    println!("sketch:\n{}", sketch.render(&lattice));

    // 5. Downgrade to C for display (§4.3): const parameter, recursive
    //    struct, tagged fields.
    let mut builder = CTypeBuilder::new(&lattice);
    let sig = builder.function_type(sketch);
    let table = builder.into_table();
    println!("reconstructed C:");
    print!("{}", table.render());
    println!(
        "{};",
        retypd::core::ctype::render_signature("close_last", &sig, &table)
    );
}
