//! The persistent, content-addressed scheme store.
//!
//! An [`crate::AnalysisDriver`] configured with
//! [`crate::DriverConfig::persist_path`] mirrors every cache insert into an
//! append-only on-disk log, and on construction replays that log to
//! pre-populate both cache passes — so a process restart (or a shard's
//! panic rebuild in `retypd-serve`) starts *warm*: previously-seen modules
//! are answered entirely from fingerprint hits instead of paying the full
//! cold solve again.
//!
//! ## Log format
//!
//! The file opens with [`MAGIC`], followed by length-prefixed records:
//!
//! ```text
//! [u32 LE payload length][u64 LE FNV-1a checksum of payload][payload]
//! ```
//!
//! Payloads are tagged by their first byte:
//!
//! * `1` — a lattice descriptor: `(lattice fingerprint, canonical
//!   descriptor text)`. Written once per lattice, *before* the first
//!   refinement record that references it, so sequential replay always
//!   sees the descriptor first.
//! * `2` — a pass-1 entry: the SCC fingerprint plus each member's scheme
//!   in canonical text form with its per-scheme fingerprint.
//! * `3` — a pass-2 entry: the refinement fingerprint, the lattice
//!   fingerprint it was solved against, and the full
//!   [`SccRefinement`] — sketches decomposed state-by-state with lattice
//!   elements stored *by name* (indices are rebuilt against the replayer's
//!   lattice) and a per-sketch fingerprint.
//!
//! Everything inside a payload is little-endian with length-prefixed UTF-8
//! strings; the canonical text forms are the same ones the fingerprints of
//! [`crate::fingerprint`] hash, which is what makes the store
//! content-addressed: a record is valid exactly when re-fingerprinting its
//! decoded value reproduces the stored key.
//!
//! ## Replay semantics
//!
//! Replay is torn-tail tolerant: the log is scanned record by record and
//! *truncated at the first corrupt frame* (short header, oversized length,
//! checksum mismatch) — a crash mid-append never prevents a restart, it
//! only costs the torn record. Within a valid frame, every decoded entry is
//! re-validated against its stored fingerprints (scheme text → scheme
//! fingerprint, sketch structure → sketch fingerprint, descriptor text →
//! lattice fingerprint); mismatches drop that record and are counted in
//! [`PersistStats::dropped_records`]. Replay never panics and never
//! refuses to start.
//!
//! ## Compaction
//!
//! The store keeps an in-memory mirror of the serialized payload for every
//! *live* cache entry (evictions remove their mirror entry). When the log
//! grows past `max(64 KiB, 4 × live bytes)` — checked after each solve and
//! forceable via [`crate::AnalysisDriver::compact_store`] — the mirror is
//! snapshotted in deterministic order (lattices, then pass-1 entries, then
//! pass-2 entries, each sorted by fingerprint), written to a sibling
//! temporary file, and atomically renamed over the log. Replaying a
//! compacted log reproduces the live cache contents bit-identically.
//!
//! ## The writer thread
//!
//! Appends never block the solve hot path on disk — or on serialization:
//! the solve path sends the cache entry itself (an `Arc` clone plus a
//! pointer-copy snapshot of the lattice's element names) over a channel,
//! and a dedicated writer thread renders the canonical text, maintains the
//! live mirror, and appends. The writer batches whatever has queued up and
//! flushes once per batch.
//! [`SchemeStore::flush`] is the synchronization barrier (used by tests,
//! benches, and the serve crate's panic-rebuild path). Any I/O error
//! disables the writer with a warning — persistence is an accelerator, so
//! it degrades to the in-memory-only behavior rather than failing solves.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use retypd_core::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use retypd_core::sync::thread::JoinHandle;
use retypd_core::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use retypd_core::fxhash::FxHashMap;
use retypd_core::parse::{parse_constraint_set, parse_derived_var};
use retypd_core::sketch::{Sketch, SketchStateSpec};
use retypd_core::{
    Label, Lattice, LatticeDescriptor, SccRefinement, SolverStats, Symbol, TypeScheme,
};

use crate::cache::{CachedSchemes, SchemeCache};
use crate::fingerprint::{self, Fnv64};
use crate::LatticeMemo;

/// The file magic every store log begins with. A file that does not start
/// with it is treated as wholly corrupt and rewritten fresh.
pub const MAGIC: &[u8] = b"retypd-scheme-store-v1\n";

/// Frame header size: `u32` payload length + `u64` payload checksum.
const FRAME_HEADER: usize = 12;

/// Upper bound on a single record payload; a corrupt length field larger
/// than this is treated as a torn tail rather than an allocation request.
const MAX_PAYLOAD: usize = 64 << 20;

/// The log-growth factor (relative to live mirror bytes) that triggers
/// compaction, and the size floor below which compaction never runs.
const COMPACT_FACTOR: u64 = 4;
const COMPACT_MIN_BYTES: u64 = 64 * 1024;

/// How many records the solve side buffers before waking the writer; see
/// [`SchemeStore::pending`]. Flush, compaction, solve end, and drop hand
/// over partial batches immediately.
const SEND_BATCH: usize = 64;

/// Payload kind tags.
const KIND_LATTICE: u8 = 1;
const KIND_SCHEMES: u8 = 2;
const KIND_REFINE: u8 = 3;

/// Checksum of a record payload: word-at-a-time FNV-1a over the raw
/// bytes, domain-tagged like every other fingerprint in
/// [`crate::fingerprint`]. This guards frames against torn or corrupted
/// bytes; content-level validity is the fingerprints *inside* the
/// payloads.
fn payload_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::new("store-record");
    h.write_wide(payload);
    h.finish()
}

/// Frames a payload as it appears in the log: header (length + checksum)
/// followed by the payload bytes. Exposed for the durability tests, which
/// tamper with payload bytes and must re-frame them with a *valid*
/// checksum to exercise the content-level fingerprint validation rather
/// than the frame-level checksum.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload_checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

// ---------------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader; every accessor returns `None`
/// past the end, so a corrupt payload decodes to `None` instead of
/// panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4).map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8).map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<&'a str> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.bytes(n)?).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_lattice(fp: u64, descriptor_text: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.push(KIND_LATTICE);
    put_u64(&mut buf, fp);
    put_str(&mut buf, descriptor_text);
    buf
}

fn decode_lattice(payload: &[u8]) -> Option<(u64, String)> {
    let mut c = Cursor::new(payload);
    if c.u8()? != KIND_LATTICE {
        return None;
    }
    let fp = c.u64()?;
    let text = c.str()?.to_owned();
    c.done().then_some((fp, text))
}

fn encode_schemes(fp: u64, entry: &CachedSchemes, texts: &[SchemeText]) -> Vec<u8> {
    debug_assert_eq!(entry.schemes.len(), texts.len());
    let text_bytes: usize = texts
        .iter()
        .map(|t| t.subject.len() + t.constraints.len())
        .sum();
    let mut buf = Vec::with_capacity(text_bytes + 64 * entry.schemes.len() + 64);
    buf.push(KIND_SCHEMES);
    put_u64(&mut buf, fp);
    put_u64(&mut buf, entry.constraints as u64);
    put_u32(&mut buf, entry.schemes.len() as u32);
    for ((name, scheme, sfp), text) in entry.schemes.iter().zip(texts) {
        put_str(&mut buf, name.as_str());
        put_str(&mut buf, &text.subject);
        put_u32(&mut buf, scheme.existentials().len() as u32);
        for x in scheme.existentials() {
            put_str(&mut buf, x.as_str());
        }
        put_str(&mut buf, &text.constraints);
        put_u64(&mut buf, *sfp);
    }
    buf
}

/// Decodes and *validates* a pass-1 payload: every scheme's stored
/// canonical text must reproduce its stored fingerprint — the same parts
/// [`fingerprint::scheme_fp_parts`] hashed when the record was written,
/// so validation is a hash over the text, not a parse → re-render round
/// trip (display → reparse is a fixpoint, property-tested in `core`; the
/// parse must still succeed for the record to be accepted at all).
fn decode_schemes(payload: &[u8]) -> Option<(u64, CachedSchemes)> {
    let mut c = Cursor::new(payload);
    if c.u8()? != KIND_SCHEMES {
        return None;
    }
    let fp = c.u64()?;
    let constraints = c.u64()? as usize;
    let n = c.u32()? as usize;
    let mut schemes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = Symbol::intern(c.str()?);
        let subject_text = c.str()?;
        let subject = parse_derived_var(subject_text).ok()?;
        if !subject.path().is_empty() {
            return None;
        }
        let n_exist = c.u32()? as usize;
        let mut existentials = std::collections::BTreeSet::new();
        for _ in 0..n_exist {
            existentials.insert(Symbol::intern(c.str()?));
        }
        let constraints_text = c.str()?;
        let constraints = parse_constraint_set(constraints_text).ok()?;
        let sfp = c.u64()?;
        if fingerprint::scheme_fp_parts(subject_text, &existentials, constraints_text) != sfp {
            return None;
        }
        let scheme = TypeScheme::new(subject.base(), existentials, constraints);
        schemes.push((name, scheme, sfp));
    }
    c.done().then_some((fp, CachedSchemes { schemes, constraints }))
}

/// Renders a `Display` value into `scratch` (clearing it first) and
/// appends it length-prefixed — the writer thread reuses one scratch
/// buffer across every record it encodes.
fn put_display(buf: &mut Vec<u8>, scratch: &mut String, value: impl std::fmt::Display) {
    use std::fmt::Write as _;
    scratch.clear();
    let _ = write!(scratch, "{value}");
    put_str(buf, scratch);
}

/// Rendered label texts, memoized per writer thread — the label
/// vocabulary is tiny and repeats on nearly every sketch edge, so one
/// `Display` render per distinct label replaces one per edge.
type LabelCache = FxHashMap<Label, Box<str>>;

fn put_sketch(buf: &mut Vec<u8>, sketch: &Sketch, names: &NameTable, labels: &mut LabelCache) {
    let name = |e: retypd_core::LatticeElem| names.get(e.index()).copied().unwrap_or("");
    put_u64(buf, fingerprint::sketch_fp(sketch));
    put_u32(buf, sketch.len() as u32);
    put_u32(buf, sketch.root());
    for s in 0..sketch.len() as u32 {
        let (lower, upper) = sketch.interval(s);
        put_str(buf, name(sketch.mark(s)));
        put_str(buf, name(lower));
        put_str(buf, name(upper));
        put_u32(buf, sketch.edges(s).count() as u32);
        for (label, target) in sketch.edges(s) {
            let text = labels
                .entry(label)
                .or_insert_with(|| label.to_string().into_boxed_str());
            put_str(buf, text);
            put_u32(buf, target);
        }
    }
}

/// Parsed labels by display text, memoized across one replay — the
/// decode-side twin of [`LabelCache`]. Replay without it runs a full
/// derived-variable parse per sketch *edge*; with it, one per distinct
/// label in the log.
type LabelMemo = FxHashMap<Box<str>, Label>;

/// Re-reads a label from its display form via the derived-variable parser
/// (labels have no standalone parser; `x.<label>` does), consulting
/// `memo` first. A failed parse is not memoized — corrupt text returns
/// `None` and the record is dropped anyway.
fn parse_label(text: &str, memo: &mut LabelMemo) -> Option<Label> {
    if let Some(l) = memo.get(text) {
        return Some(*l);
    }
    let dv = parse_derived_var(&format!("x.{text}")).ok()?;
    match dv.path() {
        [l] => {
            memo.insert(text.into(), *l);
            Some(*l)
        }
        _ => None,
    }
}

/// Decodes and *validates* one sketch blob against `lattice`: element
/// names must resolve, the automaton must reconstruct, and the
/// reconstruction must reproduce the stored sketch fingerprint.
fn take_sketch(c: &mut Cursor<'_>, lattice: &Lattice, memo: &mut LabelMemo) -> Option<Sketch> {
    let sfp = c.u64()?;
    let n = c.u32()? as usize;
    let root = c.u32()?;
    let mut states = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let mark = lattice.element(c.str()?)?;
        let lower = lattice.element(c.str()?)?;
        let upper = lattice.element(c.str()?)?;
        let n_edges = c.u32()? as usize;
        let mut edges = Vec::with_capacity(n_edges.min(1024));
        for _ in 0..n_edges {
            let label = parse_label(c.str()?, memo)?;
            let target = c.u32()?;
            edges.push((label, target));
        }
        states.push(SketchStateSpec { mark, lower, upper, edges });
    }
    let sketch = Sketch::from_states(states, root)?;
    (fingerprint::sketch_fp(&sketch) == sfp).then_some(sketch)
}

fn encode_refine(
    fp: u64,
    lattice_fp: u64,
    r: &SccRefinement,
    names: &NameTable,
    labels: &mut LabelCache,
    scratch: &mut String,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(512 * (r.sketches.len() + r.general.len()).max(1));
    buf.push(KIND_REFINE);
    put_u64(&mut buf, fp);
    put_u64(&mut buf, lattice_fp);
    put_u32(&mut buf, r.sketches.len() as u32);
    for (var, sketch) in &r.sketches {
        put_display(&mut buf, scratch, var);
        put_sketch(&mut buf, sketch, names, labels);
    }
    put_u32(&mut buf, r.general.len() as u32);
    for (name, sketch) in &r.general {
        put_str(&mut buf, name.as_str());
        put_sketch(&mut buf, sketch, names, labels);
    }
    put_u32(&mut buf, r.inconsistencies.len() as u32);
    for (a, b) in &r.inconsistencies {
        put_str(&mut buf, a.as_str());
        put_str(&mut buf, b.as_str());
    }
    for x in [
        r.stats.graph_nodes as u64,
        r.stats.graph_edges as u64,
        r.stats.quotient_nodes as u64,
        r.stats.sketch_states as u64,
        r.stats.constraints as u64,
        r.stats.solve_ns,
        r.stats.cache_hits,
        r.stats.cache_misses,
    ] {
        put_u64(&mut buf, x);
    }
    buf
}

/// Peeks the lattice fingerprint of a pass-2 payload without decoding the
/// body — used to resolve the lattice before the full decode, and by
/// compaction to keep only referenced lattice records.
fn refine_lattice_fp(payload: &[u8]) -> Option<u64> {
    let mut c = Cursor::new(payload);
    if c.u8()? != KIND_REFINE {
        return None;
    }
    c.u64()?; // entry fingerprint
    c.u64()
}

fn decode_refine(
    payload: &[u8],
    lattice: &Lattice,
    memo: &mut LabelMemo,
) -> Option<(u64, SccRefinement)> {
    let mut c = Cursor::new(payload);
    if c.u8()? != KIND_REFINE {
        return None;
    }
    let fp = c.u64()?;
    c.u64()?; // lattice fingerprint (already resolved by the caller)
    let n_sketches = c.u32()? as usize;
    let mut sketches = BTreeMap::new();
    for _ in 0..n_sketches {
        let dv = parse_derived_var(c.str()?).ok()?;
        if !dv.path().is_empty() {
            return None;
        }
        let sketch = take_sketch(&mut c, lattice, memo)?;
        sketches.insert(dv.base(), sketch);
    }
    let n_general = c.u32()? as usize;
    let mut general = Vec::with_capacity(n_general.min(1024));
    for _ in 0..n_general {
        let name = Symbol::intern(c.str()?);
        general.push((name, take_sketch(&mut c, lattice, memo)?));
    }
    let n_inc = c.u32()? as usize;
    let mut inconsistencies = Vec::with_capacity(n_inc.min(1024));
    for _ in 0..n_inc {
        let a = Symbol::intern(c.str()?);
        let b = Symbol::intern(c.str()?);
        inconsistencies.push((a, b));
    }
    let stats = SolverStats {
        graph_nodes: c.u64()? as usize,
        graph_edges: c.u64()? as usize,
        quotient_nodes: c.u64()? as usize,
        sketch_states: c.u64()? as usize,
        constraints: c.u64()? as usize,
        solve_ns: c.u64()?,
        cache_hits: c.u64()?,
        cache_misses: c.u64()?,
        // Phase timings are deliberately not persisted: they measure work
        // performed, and a replayed entry performed none. Old logs decode
        // unchanged; replayed entries report zero phase time.
        ..SolverStats::default()
    };
    c.done().then_some((
        fp,
        SccRefinement {
            sketches,
            general,
            inconsistencies,
            stats,
        },
    ))
}

// ---------------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------------

/// Gauges and counters of a driver's persistent store, surfaced through
/// [`crate::AnalysisDriver::persist_stats`] (and from there through
/// `retypd-serve`'s `stats` wire response).
#[derive(Clone, Copy, Debug, Default)]
pub struct PersistStats {
    /// Cache entries loaded from the log at construction (both passes).
    pub replayed_entries: u64,
    /// Wall-clock nanoseconds the construction-time replay took.
    pub replay_ns: u64,
    /// Records rejected during replay: frame-corrupt tails, fingerprint
    /// mismatches, unresolvable lattices, undecodable payloads.
    pub dropped_records: u64,
    /// Cache entries currently mirrored on disk (both passes, post
    /// eviction; what a restart would replay, modulo the queue).
    pub persisted_entries: u64,
    /// Records appended since construction.
    pub appended_entries: u64,
    /// Compactions performed since construction.
    pub compactions: u64,
    /// Current log size in bytes (as of the last enqueued write).
    pub log_bytes: u64,
}

/// A snapshot of a lattice's element names, taken on the solve path
/// (where the `&Lattice` is in scope) so the writer thread can serialize
/// sketch states without needing the lattice itself. Indexed by
/// [`retypd_core::LatticeElem::index`]; names are `&'static str`
/// (interned by the lattice), so the snapshot is a handful of pointer
/// copies and each lookup is an array read.
type NameTable = Vec<&'static str>;

/// Everything the writer thread needs from a lattice, rendered *once* per
/// lattice fingerprint on first encounter and shared by `Arc` afterwards —
/// re-rendering the descriptor per record would dwarf the rest of the
/// solve-path recording cost.
struct LatticeMeta {
    descriptor: String,
    names: NameTable,
}

/// A solved scheme's canonical text, rendered once on the solve path —
/// [`fingerprint::scheme_fp_parts`] hashes these exact strings, and the
/// writer persists them verbatim, so the record is content-addressed by
/// construction with no second render.
pub(crate) struct SchemeText {
    pub subject: String,
    pub constraints: String,
}

/// Messages to the writer thread (sent in [`SEND_BATCH`]-sized batches).
/// Cache entries travel as `Arc` clones and are *encoded on the writer
/// thread*; pass-1 canonical text rides along pre-rendered because the
/// solve path already rendered it to fingerprint the schemes.
enum Msg {
    /// A pass-1 insert: encode, mirror (dropping `evicted`), append.
    Schemes {
        fp: u64,
        entry: Arc<CachedSchemes>,
        texts: Vec<SchemeText>,
        evicted: Vec<u64>,
    },
    /// A pass-2 insert: encode (writing the lattice's descriptor record
    /// first if this fingerprint is new to the mirror), mirror, append.
    Refine {
        fp: u64,
        lattice_fp: u64,
        meta: Arc<LatticeMeta>,
        entry: Arc<SccRefinement>,
        evicted: Vec<u64>,
    },
    /// Rewrite the log from the live mirror (temp file + atomic rename),
    /// then continue appending to the new file.
    Compact,
    /// Flush buffered writes and ack.
    Flush(mpsc::Sender<()>),
}

/// Gauges shared with the writer thread, which updates them after each
/// batch it processes. They lag the queue by at most one batch — fine for
/// the compaction trigger and the stats report, and [`SchemeStore::flush`]
/// is the barrier that makes them exact.
#[derive(Default)]
struct Shared {
    log_bytes: AtomicU64,
    live_bytes: AtomicU64,
    live_entries: AtomicU64,
    appended: AtomicU64,
    compactions: AtomicU64,
    /// Set when a compaction is enqueued, cleared when it lands — keeps a
    /// backlogged queue from triggering a pile of redundant rewrites.
    compact_pending: AtomicBool,
}

/// The in-memory mirror: the serialized payload of every live cache
/// entry, which is exactly what compaction rewrites the log from. Owned
/// by the writer thread (seeded by replay at construction), so mirror
/// order always matches file order with no locking at all.
struct Mirror {
    schemes: FxHashMap<u64, Arc<Vec<u8>>>,
    refines: FxHashMap<u64, Arc<Vec<u8>>>,
    /// Lattice-descriptor payloads by lattice fingerprint. `BTreeMap` so
    /// compaction emits them in deterministic order.
    lattices: BTreeMap<u64, Arc<Vec<u8>>>,
}

impl Mirror {
    fn framed_len(payload: &[u8]) -> u64 {
        (FRAME_HEADER + payload.len()) as u64
    }

    fn entries(&self) -> u64 {
        (self.schemes.len() + self.refines.len()) as u64
    }
}

/// Everything the writer thread takes ownership of when it starts: the
/// append handle and the replay-seeded mirror. Boxed so the idle state
/// is one pointer wide.
struct WriterSeed {
    file: File,
    mirror: Mirror,
    live_bytes: u64,
}

/// Lifecycle of the writer thread. A store opens `Idle`, holding the
/// seed; the first non-empty batch moves it to `Running`. `Poisoned`
/// means thread spawn failed (or `Drop` ran) — subsequent records are
/// silently dropped, exactly as if the channel had closed.
enum WriterHandle {
    Idle(Box<WriterSeed>),
    Running {
        tx: mpsc::Sender<Vec<Msg>>,
        handle: JoinHandle<()>,
    },
    Poisoned,
}

/// The persistent store attached to one driver. See the module docs for
/// the format, replay, and compaction story.
pub struct SchemeStore {
    path: PathBuf,
    shared: Arc<Shared>,
    /// The writer thread — spawned lazily by the first non-empty batch,
    /// so a fully warm store (every solve a replay hit, nothing to
    /// append) never pays thread spawn or join. The lock is taken once
    /// per [`SEND_BATCH`] records, not per record.
    writer: Mutex<WriterHandle>,
    /// Records buffered on the solve side and handed to the writer in
    /// batches of [`SEND_BATCH`] (or at a flush/compaction/solve
    /// boundary): a channel send wakes the parked writer, and on a
    /// single core that wakeup — not the queue push — is what recording
    /// would otherwise pay per entry.
    pending: Mutex<Vec<Msg>>,
    /// Rendered descriptor + name table per lattice fingerprint (see
    /// [`LatticeMeta`]). The lock is held for a hash lookup and an `Arc`
    /// clone; only a lattice's *first* record pays the rendering.
    lattice_meta: Mutex<FxHashMap<u64, Arc<LatticeMeta>>>,
    replayed_entries: u64,
    replay_ns: u64,
    dropped_records: u64,
}

impl std::fmt::Debug for SchemeStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeStore")
            .field("path", &self.path)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SchemeStore {
    /// Opens (creating if absent) the log at `path`, replays it into
    /// `cache`, and repairs any torn tail. The writer thread is spawned
    /// lazily by the first record actually appended, so a store whose
    /// every solve is a replay hit costs no thread at all.
    /// Replayed pass-2 entries are validated against `lattice` when their
    /// lattice fingerprint matches, or against a descriptor-built lattice
    /// from `memo` otherwise.
    ///
    /// # Errors
    ///
    /// Only on I/O failure (unreadable/unwritable path); corrupt *content*
    /// is never an error, it is truncated or dropped.
    pub(crate) fn open(
        path: &Path,
        lattice: &Lattice,
        memo: &LatticeMemo,
        cache: &SchemeCache,
    ) -> io::Result<SchemeStore> {
        let start = Instant::now();
        let default_fp = lattice.fingerprint();
        let data = match fs::read(path) {
            Ok(d) => d,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        // ---- Frame scan: collect valid payloads, find the usable prefix.
        let magic_ok = data.starts_with(MAGIC);
        let mut payloads: Vec<&[u8]> = Vec::new();
        let mut valid = if magic_ok { MAGIC.len() } else { 0 };
        if magic_ok {
            let mut pos = valid;
            loop {
                let Some(header) = data.get(pos..pos + FRAME_HEADER) else { break };
                let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
                let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
                if len > MAX_PAYLOAD {
                    break;
                }
                let Some(payload) = data.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len)
                else {
                    break;
                };
                if payload_checksum(payload) != sum {
                    break;
                }
                payloads.push(payload);
                pos += FRAME_HEADER + len;
                valid = pos;
            }
        }
        let mut dropped = u64::from(valid < data.len());

        // ---- Apply records in log order (later records overwrite earlier
        // ones for the same fingerprint, so replay-of-append equals
        // replay-of-compaction).
        let mut mirror = Mirror {
            schemes: FxHashMap::default(),
            refines: FxHashMap::default(),
            lattices: BTreeMap::new(),
        };
        let mut live_bytes = 0u64;
        let mut lattice_texts: BTreeMap<u64, String> = BTreeMap::new();
        let mut label_memo = LabelMemo::default();
        let mut replayed = 0u64;
        for payload in payloads {
            let owned = || Arc::new(payload.to_vec());
            match payload.first().copied() {
                Some(KIND_LATTICE) => match decode_lattice(payload) {
                    Some((fp, text)) => {
                        lattice_texts.insert(fp, text);
                        mirror_insert(&mut mirror.lattices, fp, &owned(), &mut live_bytes);
                    }
                    None => dropped += 1,
                },
                Some(KIND_SCHEMES) => match decode_schemes(payload) {
                    Some((fp, entry)) => {
                        let evicted = cache.insert_schemes(fp, Arc::new(entry));
                        for e in evicted {
                            mirror_remove(&mut mirror.schemes, e, &mut live_bytes);
                        }
                        mirror_insert(&mut mirror.schemes, fp, &owned(), &mut live_bytes);
                        replayed += 1;
                    }
                    None => dropped += 1,
                },
                Some(KIND_REFINE) => {
                    let decoded = refine_lattice_fp(payload).and_then(|lfp| {
                        if lfp == default_fp {
                            decode_refine(payload, lattice, &mut label_memo)
                        } else {
                            let text = lattice_texts.get(&lfp)?;
                            let d: LatticeDescriptor = text.parse().ok()?;
                            let built = memo.get_or_build(&d).ok()?;
                            if built.fingerprint() != lfp {
                                return None;
                            }
                            decode_refine(payload, &built, &mut label_memo)
                        }
                    });
                    match decoded {
                        Some((fp, refine)) => {
                            let evicted = cache.insert_refine(fp, Arc::new(refine));
                            for e in evicted {
                                mirror_remove(&mut mirror.refines, e, &mut live_bytes);
                            }
                            mirror_insert(&mut mirror.refines, fp, &owned(), &mut live_bytes);
                            replayed += 1;
                        }
                        None => dropped += 1,
                    }
                }
                _ => dropped += 1,
            }
        }

        // ---- Repair the file: fresh magic if it was missing/corrupt,
        // truncate a torn tail otherwise — *before* any new append lands.
        if !magic_ok {
            let mut f = File::create(path)?;
            f.write_all(MAGIC)?;
            valid = MAGIC.len();
        } else if valid < data.len() {
            OpenOptions::new().write(true).open(path)?.set_len(valid as u64)?;
        }
        let file = OpenOptions::new().append(true).open(path)?;

        let shared = Arc::new(Shared::default());
        shared.log_bytes.store(valid as u64, Ordering::Relaxed);
        shared.live_bytes.store(live_bytes, Ordering::Relaxed);
        shared.live_entries.store(mirror.entries(), Ordering::Relaxed);

        Ok(SchemeStore {
            path: path.to_path_buf(),
            shared,
            writer: Mutex::new(WriterHandle::Idle(Box::new(WriterSeed {
                file,
                mirror,
                live_bytes,
            }))),
            pending: Mutex::new(Vec::new()),
            lattice_meta: Mutex::new(FxHashMap::default()),
            replayed_entries: replayed,
            replay_ns: start.elapsed().as_nanos() as u64,
            dropped_records: dropped,
        })
    }

    /// The log path this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffers a message, handing the whole buffer to the writer once it
    /// holds [`SEND_BATCH`] records.
    fn push(&self, msg: Msg) {
        let ready = {
            let mut pending = self.pending.lock().expect("store pending");
            pending.push(msg);
            (pending.len() >= SEND_BATCH).then(|| std::mem::take(&mut *pending))
        };
        if let Some(batch) = ready {
            self.send(batch);
        }
    }

    /// Hands any buffered records to the writer immediately, plus `tail`.
    fn kick(&self, tail: Option<Msg>) {
        let mut batch = std::mem::take(&mut *self.pending.lock().expect("store pending"));
        batch.extend(tail);
        if !batch.is_empty() {
            self.send(batch);
        }
    }

    /// Hands a batch to the writer thread, spawning it first if this is
    /// the store's first append. Spawn failure poisons the handle and the
    /// batch is dropped — the log simply stops growing, which replay
    /// already tolerates.
    fn send(&self, batch: Vec<Msg>) {
        let mut writer = self.writer.lock().expect("store writer");
        if matches!(&*writer, WriterHandle::Idle(_)) {
            let WriterHandle::Idle(seed) =
                std::mem::replace(&mut *writer, WriterHandle::Poisoned)
            else {
                unreachable!()
            };
            let (tx, rx) = mpsc::channel();
            let path = self.path.clone();
            let shared = Arc::clone(&self.shared);
            let spawned = retypd_core::sync::thread::Builder::new()
                .name("scheme-store-writer".into())
                .spawn(move || {
                    let WriterSeed { file, mirror, live_bytes } = *seed;
                    writer_loop(path, file, rx, shared, mirror, live_bytes)
                });
            if let Ok(handle) = spawned {
                *writer = WriterHandle::Running { tx, handle };
            }
        }
        if let WriterHandle::Running { tx, .. } = &*writer {
            let _ = tx.send(batch);
        }
    }

    /// Hands a pass-1 insert to the writer thread: the entry travels as an
    /// `Arc` clone plus the canonical text the solve path already rendered
    /// to fingerprint it; framing happens off the solve path.
    pub(crate) fn record_schemes(
        &self,
        fp: u64,
        entry: &Arc<CachedSchemes>,
        texts: Vec<SchemeText>,
        evicted: Vec<u64>,
    ) {
        self.push(Msg::Schemes {
            fp,
            entry: Arc::clone(entry),
            texts,
            evicted,
        });
    }

    /// Hands a pass-2 insert to the writer thread. The solve path snapshots
    /// only what the writer cannot reach later — the lattice's name table
    /// and descriptor text — and only once per lattice (cached by
    /// fingerprint, shared by `Arc` thereafter).
    pub(crate) fn record_refine(
        &self,
        fp: u64,
        lattice: &Lattice,
        lattice_fp: u64,
        entry: &Arc<SccRefinement>,
        evicted: Vec<u64>,
    ) {
        let meta = {
            let mut cache = self.lattice_meta.lock().expect("lattice meta");
            Arc::clone(cache.entry(lattice_fp).or_insert_with(|| {
                Arc::new(LatticeMeta {
                    descriptor: lattice.descriptor().to_string(),
                    names: {
                        let mut names = NameTable::new();
                        for e in lattice.elements() {
                            if e.index() >= names.len() {
                                names.resize(e.index() + 1, "");
                            }
                            names[e.index()] = lattice.name(e);
                        }
                        names
                    },
                })
            }))
        };
        self.push(Msg::Refine {
            fp,
            lattice_fp,
            meta,
            entry: Arc::clone(entry),
            evicted,
        });
    }

    /// End-of-solve hook: hands the writer whatever the solve buffered,
    /// plus a compaction request if the log has outgrown the live mirror
    /// (see module docs). The gauges lag the writer by at most one batch,
    /// which only delays the compaction trigger, never loses it.
    pub(crate) fn solve_finished(&self) {
        let log = self.shared.log_bytes.load(Ordering::Relaxed);
        let live = MAGIC.len() as u64 + self.shared.live_bytes.load(Ordering::Relaxed);
        let compact = log > live.saturating_mul(COMPACT_FACTOR).max(COMPACT_MIN_BYTES)
            && !self.shared.compact_pending.swap(true, Ordering::Relaxed);
        self.kick(compact.then_some(Msg::Compact));
    }

    /// Unconditionally compacts and waits for the rewrite to land.
    pub fn compact(&self) {
        if !self.shared.compact_pending.swap(true, Ordering::Relaxed) {
            self.kick(Some(Msg::Compact));
        }
        self.flush();
    }

    /// Blocks until every record handed over so far has been encoded,
    /// appended, and flushed to the OS — the barrier tests, benches, and
    /// the serve rebuild path use before re-reading the log, and the
    /// point at which the shared gauges are exact.
    pub fn flush(&self) {
        {
            // Nothing recorded since open (or ever): the gauges are
            // already exact and there is no writer to wait on. The
            // `writer` lock is held across the `pending` check so a
            // concurrent push can't slip a batch between the two reads.
            let writer = self.writer.lock().expect("store writer");
            if matches!(&*writer, WriterHandle::Idle(_))
                && self.pending.lock().expect("store pending").is_empty()
            {
                return;
            }
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        self.kick(Some(Msg::Flush(ack_tx)));
        let _ = ack_rx.recv();
    }

    /// Current counters (replay numbers are fixed at construction; the
    /// rest are exact as of the writer's last completed batch — call
    /// [`SchemeStore::flush`] first for exact-now values).
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            replayed_entries: self.replayed_entries,
            replay_ns: self.replay_ns,
            dropped_records: self.dropped_records,
            persisted_entries: self.shared.live_entries.load(Ordering::Relaxed),
            appended_entries: self.shared.appended.load(Ordering::Relaxed),
            compactions: self.shared.compactions.load(Ordering::Relaxed),
            log_bytes: self.shared.log_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for SchemeStore {
    fn drop(&mut self) {
        // Hand over anything still buffered, then close the channel: the
        // writer drains its queue, flushes, and exits; joining makes
        // driver teardown a durability point. A store that never
        // appended has no thread — dropping the seed just closes the
        // file handle.
        self.kick(None);
        let writer = std::mem::replace(
            self.writer.get_mut().unwrap_or_else(|e| e.into_inner()),
            WriterHandle::Poisoned,
        );
        if let WriterHandle::Running { tx, handle } = writer {
            drop(tx);
            let _ = handle.join();
        }
    }
}

fn mirror_insert<M: MirrorMap>(map: &mut M, fp: u64, payload: &Arc<Vec<u8>>, live: &mut u64) {
    if let Some(old) = map.insert_payload(fp, Arc::clone(payload)) {
        *live -= Mirror::framed_len(&old);
    }
    *live += Mirror::framed_len(payload);
}

fn mirror_remove<M: MirrorMap>(map: &mut M, fp: u64, live: &mut u64) {
    if let Some(old) = map.remove_payload(fp) {
        *live -= Mirror::framed_len(&old);
    }
}

/// The two mirror map shapes (`FxHashMap` for entries, `BTreeMap` for
/// lattices) behind one insert/remove interface.
trait MirrorMap {
    fn insert_payload(&mut self, fp: u64, payload: Arc<Vec<u8>>) -> Option<Arc<Vec<u8>>>;
    fn remove_payload(&mut self, fp: u64) -> Option<Arc<Vec<u8>>>;
}

impl MirrorMap for FxHashMap<u64, Arc<Vec<u8>>> {
    fn insert_payload(&mut self, fp: u64, payload: Arc<Vec<u8>>) -> Option<Arc<Vec<u8>>> {
        self.insert(fp, payload)
    }
    fn remove_payload(&mut self, fp: u64) -> Option<Arc<Vec<u8>>> {
        self.remove(&fp)
    }
}

impl MirrorMap for BTreeMap<u64, Arc<Vec<u8>>> {
    fn insert_payload(&mut self, fp: u64, payload: Arc<Vec<u8>>) -> Option<Arc<Vec<u8>>> {
        self.insert(fp, payload)
    }
    fn remove_payload(&mut self, fp: u64) -> Option<Arc<Vec<u8>>> {
        self.remove(&fp)
    }
}

// ---------------------------------------------------------------------------
// Writer thread
// ---------------------------------------------------------------------------

fn write_frame(out: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    out.write_all(&(payload.len() as u32).to_le_bytes())?;
    out.write_all(&payload_checksum(payload).to_le_bytes())?;
    out.write_all(payload)
}

/// Writes the compaction snapshot to a sibling temp file and atomically
/// renames it over the log; returns the reopened append handle.
fn rewrite_log(path: &Path, records: &[Arc<Vec<u8>>]) -> io::Result<File> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut out = BufWriter::new(File::create(&tmp)?);
    out.write_all(MAGIC)?;
    for r in records {
        write_frame(&mut out, r)?;
    }
    let f = out.into_inner().map_err(|e| e.into_error())?;
    f.sync_all()?;
    fs::rename(&tmp, path)?;
    OpenOptions::new().append(true).open(path)
}

fn writer_loop(
    path: PathBuf,
    file: File,
    rx: mpsc::Receiver<Vec<Msg>>,
    shared: Arc<Shared>,
    mut mirror: Mirror,
    mut live_bytes: u64,
) {
    // A buffer comfortably larger than a typical batch, so appends cost
    // one write syscall per flush rather than one per 8 KiB of frames.
    const WRITER_BUF: usize = 256 << 10;
    let mut out = BufWriter::with_capacity(WRITER_BUF, file);
    let mut log_bytes = shared.log_bytes.load(Ordering::Relaxed);
    // After an I/O error the writer keeps consuming (and acking flushes,
    // so nobody deadlocks) but stops writing until a compaction gives it
    // a fresh file; one warning, not one per record.
    let mut broken = false;
    let store_append_spans = retypd_telemetry::global().counter("driver.store_append_frames");
    let append = |out: &mut BufWriter<File>, broken: &mut bool, log_bytes: &mut u64, payload: &[u8]| {
        store_append_spans.inc();
        shared.appended.fetch_add(1, Ordering::Relaxed);
        *log_bytes += Mirror::framed_len(payload);
        if !*broken {
            if let Err(e) = write_frame(out, payload) {
                eprintln!("scheme store {}: append failed: {e}", path.display());
                *broken = true;
            }
        }
    };
    let mut scratch = String::new();
    let mut labels = LabelCache::default();
    while let Ok(mut batch) = rx.recv() {
        let mut acks: Vec<mpsc::Sender<()>> = Vec::new();
        while let Ok(more) = rx.try_recv() {
            batch.extend(more);
        }
        for msg in batch {
            match msg {
                Msg::Schemes {
                    fp,
                    entry,
                    texts,
                    evicted,
                } => {
                    let payload = Arc::new(encode_schemes(fp, &entry, &texts));
                    for e in evicted {
                        mirror_remove(&mut mirror.schemes, e, &mut live_bytes);
                    }
                    mirror_insert(&mut mirror.schemes, fp, &payload, &mut live_bytes);
                    append(&mut out, &mut broken, &mut log_bytes, &payload);
                }
                Msg::Refine {
                    fp,
                    lattice_fp,
                    meta,
                    entry,
                    evicted,
                } => {
                    for e in evicted {
                        mirror_remove(&mut mirror.refines, e, &mut live_bytes);
                    }
                    // The descriptor record precedes the first refine that
                    // references it; the mirror is the have-we-written-it set.
                    if !mirror.lattices.contains_key(&lattice_fp) {
                        let lp = Arc::new(encode_lattice(lattice_fp, &meta.descriptor));
                        mirror_insert(&mut mirror.lattices, lattice_fp, &lp, &mut live_bytes);
                        append(&mut out, &mut broken, &mut log_bytes, &lp);
                    }
                    let payload = Arc::new(encode_refine(
                        fp,
                        lattice_fp,
                        &entry,
                        &meta.names,
                        &mut labels,
                        &mut scratch,
                    ));
                    mirror_insert(&mut mirror.refines, fp, &payload, &mut live_bytes);
                    append(&mut out, &mut broken, &mut log_bytes, &payload);
                }
                Msg::Compact => {
                    let _span = retypd_telemetry::span("driver.store_compact");
                    // Drop lattice records no longer referenced by a live
                    // refine entry, so descriptors cannot accumulate
                    // without bound.
                    let referenced: std::collections::BTreeSet<u64> = mirror
                        .refines
                        .values()
                        .filter_map(|p| refine_lattice_fp(p))
                        .collect();
                    let stale: Vec<u64> = mirror
                        .lattices
                        .keys()
                        .copied()
                        .filter(|fp| !referenced.contains(fp))
                        .collect();
                    for fp in stale {
                        mirror_remove(&mut mirror.lattices, fp, &mut live_bytes);
                    }

                    // Deterministic snapshot order: lattices, schemes,
                    // refines, each ascending by fingerprint.
                    let mut records: Vec<Arc<Vec<u8>>> = Vec::with_capacity(
                        mirror.lattices.len() + mirror.schemes.len() + mirror.refines.len(),
                    );
                    records.extend(mirror.lattices.values().cloned());
                    for map in [&mirror.schemes, &mirror.refines] {
                        let mut fps: Vec<u64> = map.keys().copied().collect();
                        fps.sort_unstable();
                        records.extend(fps.iter().map(|fp| Arc::clone(&map[fp])));
                    }
                    match rewrite_log(&path, &records) {
                        Ok(f) => {
                            // Buffered frames belonged to the
                            // pre-compaction file; the snapshot supersedes
                            // them.
                            out = BufWriter::with_capacity(WRITER_BUF, f);
                            broken = false;
                            log_bytes = MAGIC.len() as u64
                                + records.iter().map(|p| Mirror::framed_len(p)).sum::<u64>();
                            shared.compactions.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("scheme store {}: compaction failed: {e}", path.display());
                            broken = true;
                        }
                    }
                    shared.compact_pending.store(false, Ordering::Relaxed);
                }
                Msg::Flush(ack) => acks.push(ack),
            }
        }
        if !broken {
            if let Err(e) = out.flush() {
                eprintln!("scheme store {}: flush failed: {e}", path.display());
                broken = true;
            }
        }
        shared.log_bytes.store(log_bytes, Ordering::Relaxed);
        shared.live_bytes.store(live_bytes, Ordering::Relaxed);
        shared.live_entries.store(mirror.entries(), Ordering::Relaxed);
        for ack in acks {
            let _ = ack.send(());
        }
    }
    let _ = out.flush();
}

// The store rides inside `AnalysisDriver<'static>`, which crosses thread
// boundaries in `retypd-serve`; pin the auto-traits here where the fields
// that determine them live.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SchemeStore>();
    assert_send_sync::<PersistStats>();
};
