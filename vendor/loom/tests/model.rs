//! Self-tests for the model checker: known-good protocols must pass,
//! known-bad ones must fail with a replayable schedule, and the whole
//! exploration must be deterministic per seed.
//!
//! These run in *normal* builds (no `--cfg retypd_model_check`): the
//! `modelled` doubles are always compiled, so CI exercises the checker
//! itself on every plain `cargo test`.

use std::sync::Arc;

use loom::modelled::cell::RaceCell;
use loom::modelled::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::modelled::sync::{Condvar, Mutex, OnceLock};
use loom::modelled::thread;
use loom::Builder;

/// Two racing `load; store` increments: the classic lost update. The
/// checker must find an interleaving where the final value is 1.
#[test]
fn torn_increment_is_found() {
    let report = Builder::new().check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::Relaxed);
            n2.store(v + 1, Ordering::Relaxed);
        });
        let v = n.load(Ordering::Relaxed);
        n.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
    });
    let fail = report.failure.expect("torn increment must be detected");
    assert!(fail.message.contains("lost update"), "{}", fail.message);
}

/// The same increments done with `fetch_add` are atomic: every
/// interleaving passes and the bounded space completes.
#[test]
fn fetch_add_increment_is_correct() {
    let report = Builder::new().check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.iterations >= 2, "must explore both orders");
}

/// Release/acquire message passing: data write, release-publish flag,
/// acquire-read flag, data read. Correct as written…
#[test]
fn message_passing_release_acquire_passes() {
    let report = Builder::new().check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data");
        }
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// …and broken when the publish is weakened to `Relaxed`: some
/// schedule lets the reader see the flag but stale data. This is the
/// deliberately-seeded ordering-bug mutation the checker must catch.
#[test]
fn message_passing_relaxed_publish_fails_with_replayable_schedule() {
    let model = || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed); // BUG: must be Release
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data");
        }
        t.join().unwrap();
    };
    let report = Builder::new().check(model);
    let fail = report
        .failure
        .expect("weakened publish must be detected via a stale read");
    assert!(fail.message.contains("stale data"), "{}", fail.message);

    // The reported schedule replays to the same failure, first try.
    let replay = Builder::new().replay(&fail.schedule, model);
    let rfail = replay.failure.expect("schedule must reproduce the bug");
    assert!(rfail.message.contains("stale data"), "{}", rfail.message);
    assert_eq!(replay.iterations, 1);
}

/// Mutex-protected plain data: no race is reported, and the protocol
/// completes under the bound.
#[test]
fn mutex_protects_racecell() {
    let report = Builder::new().check(|| {
        let cell = Arc::new((Mutex::new(()), RaceCell::new(0u64)));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            let _g = c2.0.lock().unwrap();
            // SAFETY: all mutation happens under `cell.0`; the model
            // verifies this claim across every explored interleaving.
            unsafe { c2.1.with_mut(|v| *v += 1) };
        });
        {
            let _g = cell.0.lock().unwrap();
            // SAFETY: as above — guarded by the same mutex.
            unsafe { cell.1.with_mut(|v| *v += 1) };
        }
        t.join().unwrap();
        // SAFETY: the writer thread has been joined; no concurrency.
        let v = unsafe { cell.1.with(|v| *v) };
        assert_eq!(v, 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// The same writes *without* the mutex are a data race the vector
/// clocks must flag.
#[test]
fn unguarded_racecell_write_is_a_data_race() {
    let report = Builder::new().check(|| {
        let cell = Arc::new(RaceCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            // SAFETY: deliberately unsound claim — the model is
            // expected to refute it.
            unsafe { c2.with_mut(|v| *v += 1) };
        });
        // SAFETY: deliberately unsound claim, as above.
        unsafe { cell.with_mut(|v| *v += 1) };
        t.join().unwrap();
    });
    let fail = report.failure.expect("unguarded writes must race");
    assert!(fail.message.contains("data race"), "{}", fail.message);
}

/// Classic AB/BA lock ordering: the checker must find the deadlock.
#[test]
fn lock_order_inversion_deadlocks() {
    let report = Builder::new().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let fail = report.failure.expect("AB/BA must deadlock in some schedule");
    assert!(fail.message.contains("deadlock"), "{}", fail.message);
}

/// Condvar handshake: waiter-first schedules get notified, and
/// notify-first schedules are saved by the predicate loop re-check.
#[test]
fn condvar_handshake_completes() {
    let report = Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let mut ready = p2.0.lock().unwrap();
            *ready = true;
            p2.1.notify_one();
            drop(ready);
        });
        let mut ready = pair.0.lock().unwrap();
        while !*ready {
            ready = pair.1.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

/// A wait with no predicate re-check misses the notify-first schedule:
/// the checker reports the lost-wakeup deadlock.
#[test]
fn condvar_lost_wakeup_is_found() {
    let report = Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let _g = p2.0.lock().unwrap();
            p2.1.notify_one();
        });
        let g = pair.0.lock().unwrap();
        // BUG: waits unconditionally — if the notify already happened,
        // nobody will ever wake us.
        let g = pair.1.wait(g).unwrap();
        drop(g);
        t.join().unwrap();
    });
    let fail = report.failure.expect("lost wakeup must deadlock");
    assert!(fail.message.contains("deadlock"), "{}", fail.message);
}

/// Racing `get_or_init` calls run the initializer exactly once, in
/// every explored interleaving.
#[test]
fn oncelock_initializes_exactly_once() {
    let report = Builder::new().check(|| {
        let calls = Arc::new(AtomicU64::new(0));
        let cell = Arc::new(OnceLock::new());
        let (calls2, cell2) = (Arc::clone(&calls), Arc::clone(&cell));
        let t = thread::spawn(move || {
            let v = *cell2.get_or_init(|| {
                calls2.fetch_add(1, Ordering::Relaxed);
                7u64
            });
            assert_eq!(v, 7);
        });
        let v = *cell.get_or_init(|| {
            calls.fetch_add(1, Ordering::Relaxed);
            7u64
        });
        assert_eq!(v, 7);
        t.join().unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "initializer ran twice");
        assert_eq!(cell.get(), Some(&7));
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Same seed ⇒ bit-identical exploration (iteration counts and the
/// failing schedule); this is what makes CI runs reproducible.
#[test]
fn exploration_is_deterministic_per_seed() {
    fn buggy() -> loom::Report {
        Builder::new().seed(42).check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = thread::spawn(move || {
                d2.store(1, Ordering::Relaxed);
                f2.store(true, Ordering::Relaxed); // BUG
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.load(Ordering::Relaxed), 1, "stale data");
            }
            t.join().unwrap();
        })
    }
    let (a, b) = (buggy(), buggy());
    assert_eq!(a.iterations, b.iterations);
    let (fa, fb) = (a.failure.unwrap(), b.failure.unwrap());
    assert_eq!(fa.schedule, fb.schedule);
    assert_eq!(fa.message, fb.message);
}

/// Three threads hammering one counter with `fetch_add`: correct, and
/// the bounded exploration visits a healthy number of interleavings
/// (the conc-check suite requires ≥ 1000 per model; this pins the
/// engine's ability to get there).
#[test]
fn three_thread_counter_explores_many_interleavings() {
    let report = Builder::new().check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let hs: Vec<_> = (0..3)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 6);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.iterations >= 1000,
        "only {} interleavings explored",
        report.iterations
    );
}

/// Model types degrade to the real primitives outside an execution:
/// plain (non-model) threads can use them freely.
#[test]
fn modelled_types_work_outside_the_model() {
    static N: AtomicU64 = AtomicU64::new(0);
    static CELL: OnceLock<u64> = OnceLock::new();
    let m = Arc::new(Mutex::new(0u64));
    let m2 = Arc::clone(&m);
    let t = thread::spawn(move || {
        N.fetch_add(2, Ordering::SeqCst);
        *m2.lock().unwrap() += 1;
        *CELL.get_or_init(|| 9)
    });
    N.fetch_add(1, Ordering::SeqCst);
    assert_eq!(t.join().unwrap(), 9);
    assert_eq!(N.load(Ordering::SeqCst), 3);
    assert_eq!(*m.lock().unwrap(), 1);
}
