//! `retypd-lint`: the repo's concurrency hygiene scanner as a CLI.
//!
//! ```text
//! retypd-lint [--root DIR] [--json]
//! ```
//!
//! Exit status 0 when clean, 1 when any violation is found, 2 on usage
//! errors. CI runs this next to the test suite; the same scanner is also
//! pinned by `crates/lint/tests/lint_workspace.rs` so `cargo test` alone
//! catches regressions.

use std::path::PathBuf;

fn main() {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root expects a directory");
                    std::process::exit(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: retypd-lint [--root DIR] [--json]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}; usage: retypd-lint [--root DIR] [--json]");
                std::process::exit(2);
            }
        }
    }
    let files = retypd_lint::workspace_files(&root);
    if files.is_empty() {
        eprintln!(
            "retypd-lint: no .rs files under {}/crates — wrong --root?",
            root.display()
        );
        std::process::exit(2);
    }
    let violations = retypd_lint::lint_workspace(&root);
    if json {
        let mut out = String::from("{\n  \"violations\": [\n");
        for (i, v) in violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {:?}, \"line\": {}, \"rule\": {:?}, \"message\": {:?}}}{}\n",
                v.file.display().to_string(),
                v.line,
                v.rule,
                v.message,
                if i + 1 == violations.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"files_scanned\": {},\n  \"violation_count\": {}\n}}\n",
            files.len(),
            violations.len()
        ));
        print!("{out}");
    } else {
        for v in &violations {
            println!("{v}");
        }
        eprintln!(
            "retypd-lint: {} files scanned, {} violation(s)",
            files.len(),
            violations.len()
        );
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
