//! Stable 64-bit fingerprints of analysis inputs.
//!
//! The scheme cache is keyed by content, not identity: an SCC's fingerprint
//! covers everything its solve reads — the members' canonicalized
//! constraint sets, the callsite structure, the program's globals, and the
//! *fingerprints of the callee schemes* that get instantiated into the
//! combined set. Two modules that share a procedure (the near-duplicate
//! members of a real binary corpus, or a re-submitted module) therefore
//! produce colliding keys exactly when the solver would produce identical
//! output.
//!
//! Hashes are FNV-1a over rendered canonical text (`ConstraintSet` and
//! `TypeScheme` display deterministically from `BTreeSet` storage, and
//! `Sketch`'s `Debug` form is determined by its construction order), so
//! fingerprints are stable across runs and processes for a fixed lattice —
//! deliberately *not* `DefaultHasher`, whose keys are randomized, and not
//! `Symbol`'s pointer-based `Hash`, which varies with interning history.

use std::collections::BTreeMap;

use retypd_core::{Program, Sketch, Symbol, TypeScheme};
use retypd_core::dtv::BaseVar;
use retypd_core::solver::CallTarget;

/// FNV-1a, 64-bit: small, dependency-free, and stable across platforms.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher, seeded with a domain tag so different fingerprint
    /// kinds never collide structurally.
    pub fn new(domain: &str) -> Fnv64 {
        let mut h = Fnv64(Self::OFFSET);
        h.write(domain.as_bytes());
        h
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a string with a length prefix (prevents concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Fingerprint of a type scheme (canonical rendered form).
pub fn scheme_fp(s: &TypeScheme) -> u64 {
    let mut h = Fnv64::new("scheme");
    h.write_str(&s.to_string());
    h.finish()
}

/// Fingerprint of a sketch: structure, marks, and bound intervals. The
/// `Debug` rendering is canonical because sketch construction is
/// deterministic and `Symbol`s print their content.
pub fn sketch_fp(s: &Sketch) -> u64 {
    let mut h = Fnv64::new("sketch");
    h.write_str(&format!("{s:?}"));
    h.finish()
}

/// Content fingerprint of a whole program: globals, externals (name and
/// scheme), and every procedure's name, canonical constraint text, and
/// callsite structure, in program order. Two programs fingerprint equal
/// exactly when the solver would see identical input, which is what
/// `retypd-serve` relies on to route re-submitted modules onto the shard
/// whose cache already holds their SCCs.
pub fn program_fp(program: &Program) -> u64 {
    let mut h = Fnv64::new("program");
    h.write_u64(program.globals.len() as u64);
    for g in &program.globals {
        h.write_str(g.name().as_str());
    }
    h.write_u64(program.externals.len() as u64);
    for (name, scheme) in &program.externals {
        h.write_str(name.as_str());
        h.write_u64(scheme_fp(scheme));
    }
    h.write_u64(program.procs.len() as u64);
    for proc in &program.procs {
        h.write_str(proc.name.as_str());
        h.write_str(&proc.constraints.to_string());
        h.write_u64(proc.callsites.len() as u64);
        for cs in &proc.callsites {
            h.write_str(&cs.tag);
            match cs.callee {
                CallTarget::Internal(i) => {
                    h.write_str("internal");
                    h.write_str(program.procs[i].name.as_str());
                }
                CallTarget::External(n) => {
                    h.write_str("external");
                    h.write_str(n.as_str());
                }
            }
        }
    }
    h.finish()
}

/// Pass-1 fingerprint of an SCC: everything [`retypd_core::Solver::solve_scc`]
/// reads — *including the lattice it solves against*. `lattice_fp` is
/// [`retypd_core::Lattice::fingerprint`]; mixing it in first means two
/// lattices can never share a scheme-cache entry, however identical the
/// constraint text (the pass-2 key inherits this through `scc_fp`).
/// `scheme_fps` must contain the fingerprint of every already-solved
/// scheme by name (externals included) — exactly the names the combined
/// constraint set instantiates.
pub fn scc_fingerprint(
    lattice_fp: u64,
    program: &Program,
    scc: &[usize],
    scc_of: &[usize],
    scheme_fps: &BTreeMap<Symbol, u64>,
) -> u64 {
    let mut h = Fnv64::new("scc-schemes");
    h.write_u64(lattice_fp);
    for g in &program.globals {
        h.write_str(g.name().as_str());
    }
    let my_scc = scc_of[scc[0]];
    h.write_u64(scc.len() as u64);
    for &p in scc {
        let proc = &program.procs[p];
        h.write_str(proc.name.as_str());
        h.write_str(&proc.constraints.to_string());
        h.write_u64(proc.callsites.len() as u64);
        for cs in &proc.callsites {
            h.write_str(&cs.tag);
            match cs.callee {
                CallTarget::Internal(i) if scc_of[i] == my_scc => {
                    h.write_str("mono");
                    h.write_str(program.procs[i].name.as_str());
                }
                CallTarget::Internal(i) => {
                    let name = program.procs[i].name;
                    h.write_str("internal");
                    h.write_str(name.as_str());
                    h.write_u64(scheme_fps.get(&name).copied().unwrap_or(0));
                }
                CallTarget::External(n) => {
                    h.write_str("external");
                    h.write_str(n.as_str());
                    h.write_u64(scheme_fps.get(&n).copied().unwrap_or(0));
                }
            }
        }
    }
    h.finish()
}

/// Pass-2 fingerprint of an SCC: the pass-1 fingerprint (which covers the
/// combined constraint set, since schemes are final after pass 1) extended
/// with the refinement inputs — each member's callsite-actual variables and
/// the fingerprints of the actual sketches visible in the caller-produced
/// snapshot.
pub fn refine_fingerprint(
    scc_fp: u64,
    program: &Program,
    scc: &[usize],
    actuals: &BTreeMap<Symbol, Vec<BaseVar>>,
    sketches: &BTreeMap<BaseVar, Sketch>,
) -> u64 {
    let mut h = Fnv64::new("scc-refine");
    h.write_u64(scc_fp);
    for &p in scc {
        let proc = &program.procs[p];
        h.write_str(proc.name.as_str());
        if let Some(tags) = actuals.get(&proc.name) {
            h.write_u64(tags.len() as u64);
            for a in tags {
                h.write_str(a.name().as_str());
                match sketches.get(a) {
                    Some(s) => {
                        h.write_u64(1);
                        h.write_u64(sketch_fp(s));
                    }
                    None => h.write_u64(0),
                }
            }
        } else {
            h.write_u64(0);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let mut a = Fnv64::new("t");
        a.write_str("x");
        a.write_str("y");
        let mut b = Fnv64::new("t");
        b.write_str("x");
        b.write_str("y");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new("t");
        c.write_str("y");
        c.write_str("x");
        assert_ne!(a.finish(), c.finish());
        // Length prefixing: ("ab","c") ≠ ("a","bc").
        let mut d = Fnv64::new("t");
        d.write_str("ab");
        d.write_str("c");
        let mut e = Fnv64::new("t");
        e.write_str("a");
        e.write_str("bc");
        assert_ne!(d.finish(), e.finish());
    }
}
