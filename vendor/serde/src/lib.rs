//! Minimal API-compatible stand-in for the `serde` crate.
//!
//! The build environment for this repository is offline, so the real
//! `serde` cannot be fetched. The workspace only *declares*
//! serializability (derives and one `#[serde(with = …)]` field); nothing
//! actually serializes at runtime yet (there is no `serde_json`
//! dependency). This shim therefore provides the trait skeleton —
//! [`Serialize`], [`Deserialize`], [`Serializer`], [`Deserializer`] — and
//! no-op derive macros, so the annotations compile today and can be
//! swapped for the real serde (same public surface) the moment the
//! workspace gains network access or a vendored full copy.

pub use serde_derive::{Deserialize, Serialize};

/// Formats a value into a serializer's output.
///
/// Unlike real serde this shim's data model is collapsed to the handful of
/// entry points the workspace touches.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;

    /// Serializes a unit / opaque marker (what the no-op derives emit).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be serialized.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Reads values out of a data stream.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error;

    /// Deserializes a string.
    fn deserialize_string(self) -> Result<String, Self::Error>;

    /// Builds an error value (used by the no-op derive stubs).
    fn custom_error(self, msg: &str) -> Self::Error;
}

/// A value that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_string()
    }
}
