//! Batch-analysis demo: generates a corpus of related modules (a shared
//! library linked into every member, plus per-member code — the shape of
//! Figure 10's binary clusters), analyzes it with the parallel SCC-wave
//! driver at 1 worker and at N workers, verifies the results are
//! bit-identical, and prints throughput and cache statistics.
//!
//! ```text
//! cargo run --release -p retypd-driver --bin driver_demo
//! cargo run --release -p retypd-driver --bin driver_demo -- --small
//! cargo run --release -p retypd-driver --bin driver_demo -- --workers 8 --out driver-demo.json
//! ```
//!
//! The last module of the corpus is a verbatim re-submission of the first,
//! so a correct cache shows a 100% fingerprint hit for it (asserted below
//! for the sequential batch, where hit accounting is deterministic).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use retypd_core::{Condensation, Lattice, Solver, SolverResult};
use retypd_driver::{AnalysisDriver, DriverConfig, ModuleJob, ModuleReport};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};

fn render(result: &SolverResult) -> String {
    let mut out = String::new();
    for (name, pr) in &result.procs {
        let _ = writeln!(out, "{name}: {}", pr.scheme);
        let _ = writeln!(out, "  {:?}", pr.sketch);
        let _ = writeln!(out, "  {:?}", pr.general_sketch);
    }
    let _ = writeln!(out, "{:?}", result.inconsistencies);
    out
}

fn total_sketch_states(reports: &[ModuleReport]) -> usize {
    reports.iter().map(|r| r.result.stats.sketch_states).sum()
}

fn main() {
    let mut small = false;
    let mut workers: Option<usize> = None;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--workers" => {
                let arg = args.next();
                match arg.as_deref().map(str::parse) {
                    Some(Ok(n)) if n >= 1 => workers = Some(n),
                    _ => {
                        eprintln!(
                            "--workers expects a positive integer, got {:?}",
                            arg.unwrap_or_default()
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out_path = args.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: driver_demo [--small] [--workers N] [--out FILE]"
                );
                std::process::exit(2);
            }
        }
    }
    // Default: all cores, at least 4 (the corpus-level parallelism target);
    // an explicit --workers value is honored verbatim.
    let workers = workers.unwrap_or_else(|| {
        retypd_core::sync::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(4)
    });

    // --- Corpus: a cluster of modules sharing a library, plus a verbatim
    // re-submission of the first member. ---
    let spec = if small {
        ClusterSpec {
            name: "corpus".into(),
            members: 4,
            shared_functions: 8,
            member_functions: 3,
            seed: 4242,
            call_depth: 6,
        }
    } else {
        ClusterSpec {
            name: "corpus".into(),
            members: 8,
            shared_functions: 22,
            member_functions: 8,
            seed: 4242,
            call_depth: 6,
        }
    };
    let modules = ProgramGenerator::generate_cluster(&spec);
    let mut jobs: Vec<ModuleJob> = modules
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("generated module compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect();
    let resubmit = ModuleJob {
        name: format!("{}+resubmit", jobs[0].name),
        program: jobs[0].program.clone(),
    };
    jobs.push(resubmit);

    let procs: usize = jobs.iter().map(|j| j.program.procs.len()).sum();
    let constraints: usize = jobs
        .iter()
        .flat_map(|j| j.program.procs.iter())
        .map(|p| p.constraints.len())
        .sum();
    // Wave-shape instrumentation per module: the corpus is generated with a
    // call-depth knob (`ClusterSpec::call_depth`), so every member's
    // condensation must be at least that deep — shallow 2-wave corpora
    // cannot exercise wave pipelining.
    let wave_shapes: Vec<(String, usize, usize, usize)> = jobs
        .iter()
        .map(|j| {
            let cond = Condensation::compute(&j.program);
            let waves = cond.waves();
            let max_width = waves.iter().map(Vec::len).max().unwrap_or(0);
            (j.name.clone(), cond.sccs.len(), waves.len(), max_width)
        })
        .collect();
    let min_waves = wave_shapes.iter().map(|w| w.2).min().unwrap_or(0);
    assert!(
        min_waves >= spec.call_depth,
        "deep corpus must condense to ≥{} waves per module, got {min_waves}",
        spec.call_depth
    );
    let (lname, lsccs, lwaves, lwidth) = wave_shapes
        .iter()
        .max_by_key(|w| w.1)
        .expect("corpus nonempty")
        .clone();
    eprintln!(
        "corpus: {} modules, {procs} procedures, {constraints} body constraints",
        jobs.len()
    );
    eprintln!(
        "largest module {lname:?}: {lsccs} SCCs in {lwaves} waves (max wave width {lwidth}); \
         min waves across corpus {min_waves}"
    );

    let lattice = Lattice::c_types();

    // --- Sequential reference for the first module. ---
    let reference = Solver::new(&lattice).infer(&jobs[0].program);

    // --- 1 worker, fresh cache. ---
    let d1 = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1));
    let start = Instant::now();
    let r1 = d1.solve_batch(&jobs);
    let wall1 = start.elapsed();
    let c1 = d1.cache_stats();

    // --- N workers, fresh cache. ---
    let dn = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(workers));
    let start = Instant::now();
    let rn = dn.solve_batch(&jobs);
    let walln = start.elapsed();
    let cn = dn.cache_stats();

    // --- Verify: parallel output is bit-identical to 1-worker output and
    // to the sequential solver. ---
    assert_eq!(
        render(&r1[0].result),
        render(&reference),
        "driver (1 worker) diverged from sequential Solver::infer"
    );
    for (a, b) in r1.iter().zip(&rn) {
        assert_eq!(a.name, b.name);
        assert_eq!(
            render(&a.result),
            render(&b.result),
            "module {} differs between 1 and {workers} workers",
            a.name
        );
    }
    assert_eq!(total_sketch_states(&r1), total_sketch_states(&rn));
    // The re-submitted module must be a 100% fingerprint hit in the
    // sequential batch (deterministic accounting).
    let resub = r1.last().expect("resubmitted module");
    assert_eq!(
        resub.result.stats.cache_misses, 0,
        "re-submitted module was not a pure cache hit"
    );
    assert!(resub.result.stats.cache_hits > 0);

    let speedup = wall1.as_secs_f64() / walln.as_secs_f64().max(1e-9);
    let hit_rate = |h: u64, m: u64| {
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    };
    let per_sec = |d: Duration| constraints as f64 / d.as_secs_f64().max(1e-9);
    eprintln!("results: bit-identical across 1 and {workers} workers ✓, sequential parity ✓");
    eprintln!(
        "wall clock: {:>10.3?} at 1 worker | {:>10.3?} at {workers} workers | speedup {speedup:.2}x",
        wall1, walln
    );
    eprintln!(
        "throughput: {:.0} constraints/s at 1 worker | {:.0} constraints/s at {workers} workers",
        per_sec(wall1),
        per_sec(walln)
    );
    eprintln!(
        "cache (1 worker): {} hits / {} misses ({:.0}% hit rate; re-submitted module: {} hits, 0 misses)",
        c1.hits,
        c1.misses,
        100.0 * hit_rate(c1.hits, c1.misses),
        resub.result.stats.cache_hits
    );
    eprintln!(
        "cache ({workers} workers): {} hits / {} misses ({:.0}% hit rate)",
        cn.hits,
        cn.misses,
        100.0 * hit_rate(cn.hits, cn.misses)
    );

    // --- Stats JSON (hand-rolled; the vendored serde shim has no
    // serializer). ---
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"modules\": {},", jobs.len());
    let _ = writeln!(json, "  \"procedures\": {procs},");
    let _ = writeln!(json, "  \"constraints\": {constraints},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"wall_ns_1_worker\": {},", wall1.as_nanos());
    let _ = writeln!(json, "  \"wall_ns_n_workers\": {},", walln.as_nanos());
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(
        json,
        "  \"cache_1_worker\": {{\"hits\": {}, \"misses\": {}}},",
        c1.hits, c1.misses
    );
    let _ = writeln!(
        json,
        "  \"cache_n_workers\": {{\"hits\": {}, \"misses\": {}}},",
        cn.hits, cn.misses
    );
    let _ = writeln!(
        json,
        "  \"largest_module\": {{\"sccs\": {lsccs}, \"waves\": {lwaves}, \"max_wave_width\": {lwidth}}},"
    );
    let _ = writeln!(json, "  \"min_waves\": {min_waves},");
    json.push_str("  \"per_module\": [\n");
    for (i, r) in r1.iter().enumerate() {
        let (_, sccs, waves, width) = &wave_shapes[i];
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"solve_ns\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"sccs\": {sccs}, \"waves\": {waves}, \"max_wave_width\": {width}}}{}",
            r.name,
            r.result.stats.solve_ns,
            r.result.stats.cache_hits,
            r.result.stats.cache_misses,
            if i + 1 == r1.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write demo stats JSON");
            eprintln!("wrote {p}");
        }
        None => {
            std::io::stdout().write_all(json.as_bytes()).expect("stdout");
        }
    }
}
