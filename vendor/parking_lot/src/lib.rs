//! Minimal API-compatible stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository is offline, so the real
//! `parking_lot` cannot be fetched from crates.io. This vendored shim
//! exposes the subset of its API the workspace uses (`RwLock`, `Mutex`
//! with non-poisoning guards) on top of `std::sync`. Lock poisoning is
//! erased by recovering the inner guard, matching `parking_lot`'s
//! semantics of never poisoning.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with the `parking_lot` API (no poisoning, no
/// `Result` on acquisition).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked `RwLock`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with the `parking_lot` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked `Mutex`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
