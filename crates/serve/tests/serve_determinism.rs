//! Live-socket determinism and admission-control tests: a real server on a
//! loopback socket must produce byte-identical results to in-process
//! `AnalysisDriver::solve_batch` (and the sequential solver) at 1 and N
//! shards — in both the single-frame and streaming batch modes — refuse
//! overload immediately instead of hanging, segregate caches per lattice,
//! bound stalled connections with a read timeout, and drain gracefully on
//! shutdown with the final frames delivered.

use retypd_core::{Lattice, LatticeDescriptor, Solver};
use retypd_driver::{AnalysisDriver, DriverConfig, ModuleJob};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::wire::WireReport;
use retypd_serve::{start, Client, ClientError, ServeConfig};

fn corpus() -> Vec<ModuleJob> {
    let spec = ClusterSpec {
        name: "det".into(),
        members: 3,
        shared_functions: 6,
        member_functions: 3,
        seed: 515,
        call_depth: 6,
    };
    let mut jobs: Vec<ModuleJob> = ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect();
    // A verbatim re-submission exercises the warm shard path.
    let resubmit = ModuleJob {
        name: format!("{}+resubmit", jobs[0].name),
        program: jobs[0].program.clone(),
    };
    jobs.push(resubmit);
    jobs
}

fn server(shards: usize, queue_depth: usize) -> retypd_serve::ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        workers_per_shard: 1,
        queue_depth,
        cache_capacity: Some(1024),
        ..ServeConfig::default()
    })
    .expect("bind loopback server")
}

#[test]
fn socket_results_match_in_process_and_sequential_at_1_and_n_shards() {
    let jobs = corpus();
    let lattice = Lattice::c_types();

    // In-process references: the driver batch API and the plain solver.
    let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(2));
    let in_process: Vec<String> = driver
        .solve_batch(&jobs)
        .iter()
        .map(|r| WireReport::from_result(&r.name, &r.result).canonical_text())
        .collect();
    for (job, want) in jobs.iter().zip(&in_process) {
        let seq = Solver::new(&lattice).infer(&job.program);
        assert_eq!(
            WireReport::from_result(&job.name, &seq).canonical_text(),
            *want,
            "driver batch diverged from sequential solver on {}",
            job.name
        );
    }

    for shards in [1usize, 3] {
        let handle = server(shards, 64);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let reports = client.solve_batch(&jobs).expect("batch solves");
        assert_eq!(reports.len(), jobs.len());
        for (report, (job, want)) in reports.iter().zip(jobs.iter().zip(&in_process)) {
            assert_eq!(report.name, job.name, "order preserved");
            assert_eq!(
                report.canonical_text(),
                *want,
                "{} over the socket at {shards} shard(s) diverged",
                job.name
            );
            assert!(report.shard < shards);
        }
        // Content routing: the re-submitted module repeats its original's
        // fingerprint and shard, and solves as a pure cache hit.
        let (first, resub) = (&reports[0], reports.last().unwrap());
        assert_eq!(first.fingerprint, resub.fingerprint);
        assert_eq!(first.shard, resub.shard, "same content, same shard");
        assert_eq!(resub.stats.cache_misses, 0, "warm path must not re-solve");
        handle.shutdown();
    }
}

#[test]
fn streaming_batch_is_bit_identical_to_v1_and_sequential() {
    let jobs = corpus();
    let lattice = Lattice::c_types();
    let sequential: Vec<String> = jobs
        .iter()
        .map(|j| {
            WireReport::from_result(&j.name, &Solver::new(&lattice).infer(&j.program))
                .canonical_text()
        })
        .collect();

    for shards in [1usize, 3] {
        let handle = server(shards, 64);

        // v1 single-frame reference over the same live socket.
        let mut v1_client = Client::connect(handle.addr()).expect("connect v1");
        let v1: Vec<WireReport> = v1_client.solve_batch(&jobs).expect("v1 batch");

        // Streaming: one report frame per module plus batch_done.
        let mut client = Client::connect(handle.addr()).expect("connect stream");
        let mut stream = client
            .solve_batch_stream(&jobs, None)
            .expect("stream admitted");
        let mut by_index: Vec<Option<WireReport>> = vec![None; jobs.len()];
        while let Some(item) = stream.next() {
            let (index, report) = item.expect("no per-module failures");
            assert!(
                by_index[index].replace(report).is_none(),
                "index {index} reported twice"
            );
        }
        let summary = stream.summary().expect("terminal batch_done").clone();
        assert_eq!(summary.modules, jobs.len());
        assert_eq!(summary.delivered, jobs.len());
        assert!(summary.errors.is_empty(), "{:?}", summary.errors);
        assert_eq!(summary.lattice_fp, lattice.fingerprint());

        // The reassembled set is bit-identical to v1 and to the
        // sequential solver, module for module.
        for (i, slot) in by_index.iter().enumerate() {
            let streamed = slot.as_ref().expect("every module reported");
            assert_eq!(streamed.name, jobs[i].name, "order tag preserved");
            assert_eq!(
                streamed.canonical_text(),
                v1[i].canonical_text(),
                "{} streamed vs v1 at {shards} shard(s)",
                jobs[i].name
            );
            assert_eq!(
                streamed.canonical_text(),
                sequential[i],
                "{} streamed vs sequential at {shards} shard(s)",
                jobs[i].name
            );
            assert_eq!(streamed.lattice_fp, lattice.fingerprint());
        }
        // The same connection stays usable for further requests after a
        // completed stream.
        let again = client.solve_module(&jobs[0]).expect("post-stream request");
        assert_eq!(again.canonical_text(), sequential[0]);
        handle.shutdown();
    }
}

#[test]
fn custom_lattice_solves_end_to_end_with_segregated_cache() {
    let jobs = corpus();
    // An extended c_types: one extra tag under `int`. Every constant the
    // generated corpus mentions still exists and no existing join/meet
    // changes (a new leaf in a tree perturbs nothing above it), so the
    // canonical results must match c_types — while the fingerprint, and
    // therefore every cache key, must differ.
    let custom: LatticeDescriptor = {
        let mut b = Lattice::c_types_builder();
        b.add_under("#ServeTestTag", "int").expect("fresh tag");
        // The stock builder wired ⊥ under everything *before* the new tag
        // existed; close the lattice again.
        b.le("⊥", "#ServeTestTag").expect("known");
        b.set_name("c_types_ext");
        b.build().expect("extended c_types is a lattice").descriptor().clone()
    };
    let custom_fp = custom.build().expect("builds").fingerprint();
    let default_fp = Lattice::c_types().fingerprint();
    assert_ne!(custom_fp, default_fp);

    let handle = server(2, 64);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Warm the default lattice.
    let d1 = client.solve_module(&jobs[0]).expect("default cold");
    assert_eq!(d1.lattice_fp, default_fp);
    assert!(d1.stats.cache_misses > 0);
    let d2 = client.solve_module(&jobs[0]).expect("default warm");
    assert_eq!(d2.stats.cache_misses, 0, "default re-solve must be warm");

    // The same module under the custom lattice must MISS (no cross-lattice
    // hits), then warm within its own lattice.
    let c1 = client
        .solve_module_in(&jobs[0], Some(&custom))
        .expect("custom cold");
    assert_eq!(c1.lattice_fp, custom_fp);
    assert!(
        c1.stats.cache_misses > 0,
        "custom lattice must not hit the default lattice's entries"
    );
    let c2 = client
        .solve_module_in(&jobs[0], Some(&custom))
        .expect("custom warm");
    assert_eq!(c2.stats.cache_misses, 0, "custom re-solve must be warm");
    assert_eq!(c1.canonical_text(), c2.canonical_text());
    // Conservative extension: same canonical answer as the default.
    assert_eq!(c1.canonical_text(), d1.canonical_text());

    // Streaming with a custom lattice carries its fingerprint end to end.
    let mut stream = client
        .solve_batch_stream(&jobs[..2], Some(&custom))
        .expect("custom stream admitted");
    while let Some(item) = stream.next() {
        let (_, report) = item.expect("no failures");
        assert_eq!(report.lattice_fp, custom_fp);
    }
    assert_eq!(
        stream.summary().expect("batch_done").lattice_fp,
        custom_fp
    );

    // A malformed descriptor is a client-visible error, not a hang.
    let bogus = "lattice broken { a ; b <= a }".parse::<LatticeDescriptor>();
    assert!(bogus.is_err(), "unknown element rejected at parse time");
    match client.solve_module_in(
        &jobs[0],
        Some(&"lattice d { x y ; }".parse::<LatticeDescriptor>().expect("parses")),
    ) {
        // x and y are incomparable with no bounds: not a lattice.
        Err(ClientError::Server(m)) => assert!(m.contains("bad lattice"), "{m}"),
        other => panic!("expected a server error for a non-lattice, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn stalled_connections_time_out_with_a_protocol_error() {
    use std::io::Write as _;

    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 1,
        read_timeout: Some(std::time::Duration::from_millis(300)),
        ..ServeConfig::default()
    })
    .expect("bind");

    // Idle connection: no bytes at all.
    let mut idle = std::net::TcpStream::connect(handle.addr()).expect("connect idle");
    let reply = retypd_serve::wire::read_frame(&mut idle)
        .expect("error frame delivered")
        .expect("frame, not EOF");
    match retypd_serve::Response::decode(&reply).expect("decodes") {
        retypd_serve::Response::Error(m) => assert!(m.contains("timed out"), "{m}"),
        other => panic!("expected an error reply, got {other:?}"),
    }
    assert!(
        retypd_serve::wire::read_frame(&mut idle)
            .map(|f| f.is_none())
            .unwrap_or(true),
        "connection closed after the timeout error"
    );

    // Stalled mid-frame: half a length prefix, then nothing.
    let mut stalled = std::net::TcpStream::connect(handle.addr()).expect("connect stalled");
    stalled.write_all(&[0, 0]).expect("partial prefix");
    let reply = retypd_serve::wire::read_frame(&mut stalled)
        .expect("error frame delivered")
        .expect("frame, not EOF");
    match retypd_serve::Response::decode(&reply).expect("decodes") {
        retypd_serve::Response::Error(m) => assert!(m.contains("timed out"), "{m}"),
        other => panic!("expected an error reply, got {other:?}"),
    }

    // A healthy client on the same server is unaffected.
    let jobs = corpus();
    let mut client = Client::connect(handle.addr()).expect("connect healthy");
    let report = client.solve_module(&jobs[0]).expect("healthy request solves");
    assert_eq!(report.name, jobs[0].name);
    handle.shutdown();
}

#[test]
fn repeat_submissions_are_warm_on_every_shard_count() {
    let jobs = corpus();
    for shards in [1usize, 2] {
        let handle = server(shards, 64);
        let mut client = Client::connect(handle.addr()).expect("connect");
        let cold = client.solve_batch(&jobs).expect("cold batch");
        let warm = client.solve_batch(&jobs).expect("warm batch");
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.canonical_text(), w.canonical_text(), "{}", c.name);
            assert_eq!(w.stats.cache_misses, 0, "{} warm re-solve", w.name);
        }
        let stats = client.stats().expect("stats");
        let total_jobs: u64 = stats.shards.iter().map(|s| s.jobs).sum();
        assert_eq!(total_jobs, 2 * jobs.len() as u64);
        handle.shutdown();
    }
}

#[test]
fn overload_returns_overloaded_not_a_hang() {
    use retypd_core::sync::atomic::{AtomicBool, Ordering};
    use retypd_core::sync::Arc;
    use std::time::{Duration, Instant};

    let jobs = corpus();
    let n = jobs.len();
    // Admission budget equal to one batch: two batches cannot be in flight
    // at once, so contention from a second client must surface as an
    // immediate `Overloaded` (never a hang, never partial admission).
    let handle = server(1, n);
    let stop = Arc::new(AtomicBool::new(false));
    let looper = {
        let jobs = jobs.clone();
        let addr = handle.addr();
        let stop = Arc::clone(&stop);
        retypd_core::sync::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("looper connects");
            while !stop.load(Ordering::Relaxed) {
                match c.solve_batch(&jobs) {
                    Ok(_) | Err(ClientError::Overloaded { .. }) => {}
                    other => panic!("looper expected Solved or Overloaded, got {other:?}"),
                }
            }
        })
    };
    let mut client = Client::connect(handle.addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut refusal = None;
    while Instant::now() < deadline {
        match client.solve_batch(&jobs) {
            Err(ClientError::Overloaded { queued, limit }) => {
                refusal = Some((queued, limit));
                break;
            }
            Ok(reports) => assert_eq!(reports.len(), n),
            other => panic!("expected Solved or Overloaded, got {other:?}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    looper.join().expect("looper thread");
    let (queued, limit) = refusal.expect("contention never produced Overloaded");
    assert_eq!(limit, n);
    assert!(queued >= 1 && queued <= limit, "refused with {queued} in flight");
    // The refusal is accounted and the server still serves once the
    // contention is gone.
    let stats = client.stats().expect("stats");
    assert!(stats.rejected >= 1, "overload refusals are counted");
    let report = client.solve_module(&jobs[0]).expect("single module fits");
    assert_eq!(report.name, jobs[0].name);
    handle.shutdown();
}

#[test]
fn oversized_batch_is_a_permanent_error_not_overload() {
    let jobs = corpus();
    // A batch bigger than the whole admission budget can never be admitted:
    // that must be a permanent error naming the limit (an `Overloaded`
    // would send a retrying client into an infinite loop), and it must not
    // be counted as overload pressure.
    let handle = server(2, jobs.len() - 1);
    let mut client = Client::connect(handle.addr()).expect("connect");
    match client.solve_batch(&jobs) {
        Err(ClientError::Server(m)) => {
            assert!(
                m.contains(&format!("admission limit of {}", jobs.len() - 1)),
                "error names the limit: {m}"
            );
        }
        other => panic!("expected a permanent server error, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected, 0, "not an overload rejection");
    assert_eq!(stats.queued, 0, "no partial admission leaked");
    let report = client.solve_module(&jobs[0]).expect("single module fits");
    assert_eq!(report.name, jobs[0].name);
    handle.shutdown();
}

#[test]
fn shutdown_drains_gracefully() {
    let jobs = corpus();
    let handle = server(2, 64);
    let mut client = Client::connect(handle.addr()).expect("connect");
    // Work submitted before the drain completes normally.
    let reports = client.solve_batch(&jobs).expect("pre-drain batch");
    assert_eq!(reports.len(), jobs.len());
    // The ack frame is *required*: connection handlers are joined on
    // drain, so its delivery is guaranteed, not best-effort.
    client.shutdown().expect("shutdown acknowledged with a delivered frame");
    // Post-drain work is refused or the (draining) connection is already
    // closed — never a hang, never a solve.
    match client.solve_module(&jobs[0]) {
        Err(ClientError::ShuttingDown) => {}
        Err(ClientError::Wire(_)) | Err(ClientError::Unexpected(_)) => {}
        other => panic!("expected refusal or closed connection, got {other:?}"),
    }
    // All server threads — acceptor, shards, *and connection handlers* —
    // exit.
    handle.join();
}

#[test]
fn shutdown_ack_is_delivered_on_every_cycle() {
    // The PR-4 workaround treated a hang-up as a successful drain because
    // the ack frame was cut off roughly 30% of the time. With tracked,
    // joined connection handlers the ack must arrive on every cycle.
    for cycle in 0..12 {
        let handle = server(1, 8);
        let mut client = Client::connect(handle.addr()).expect("connect");
        client
            .shutdown()
            .unwrap_or_else(|e| panic!("cycle {cycle}: ack not delivered: {e}"));
        handle.join();
    }
}
