//! Figure 11: type-inference time vs program size, with the power-law fit
//! T = α·N^β (paper: β = 1.098, R² = 0.977).

use retypd_bench::generate_sized;
use retypd_core::Lattice;
use retypd_eval::fit_power_law;
use retypd_eval::harness::time_retypd;

fn main() {
    let lattice = Lattice::c_types();
    let sizes: Vec<usize> = vec![
        1_000, 2_000, 4_000, 8_000, 12_000, 20_000, 32_000, 48_000, 64_000, 96_000,
    ];
    let mut samples = Vec::new();
    println!("Figure 11: inference time vs program size");
    println!("{:>12} {:>14}", "Instructions", "Time (s)");
    println!("{}", "-".repeat(28));
    for (i, &target) in sizes.iter().enumerate() {
        let module = generate_sized(target, 300 + i as u64);
        let (n, t, _) = time_retypd(&module, &lattice);
        let secs = t.as_secs_f64();
        println!("{:>12} {:>14.3}", n, secs);
        samples.push((n as f64, secs.max(1e-4)));
    }
    let fit = fit_power_law(&samples);
    println!("{}", "-".repeat(28));
    println!(
        "fit: T = {:.3e} · N^{:.3}   (R² = {:.3})",
        fit.alpha, fit.beta, fit.r2
    );
    println!("(paper: T = 7.25e-4 · N^1.098, R² = 0.977 — expect near-linear β)");
}
