//! Session-API integration tests: per-request lattices segregate the
//! scheme cache (two lattices never share entries), descriptor-built
//! lattices converge to the default lattice's cache when they describe the
//! same lattice, and the streaming sink delivers exactly the batch result.

use std::fmt::Write as _;
use std::sync::Mutex;

use retypd_core::{Lattice, LatticeBuilder, SolverResult};
use retypd_driver::{
    AnalysisDriver, DriverConfig, LatticeSelector, ModuleJob, SolveRequest,
};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};

fn render(result: &SolverResult) -> String {
    let mut out = String::new();
    for (name, pr) in &result.procs {
        let _ = writeln!(out, "{name}: {}", pr.scheme);
        let _ = writeln!(out, "  sketch: {:?}", pr.sketch);
        let _ = writeln!(out, "  general: {:?}", pr.general_sketch);
    }
    let _ = writeln!(out, "{:?}", result.inconsistencies);
    out
}

fn sample_job() -> ModuleJob {
    let mut prog = retypd_core::Program::new();
    prog.add_proc(retypd_core::Procedure {
        name: retypd_core::Symbol::intern("f"),
        constraints: retypd_core::parse::parse_constraint_set(
            "f.in_stack0 <= x; int <= f.out_eax; uint <= f.out_eax",
        )
        .expect("sample constraints parse"),
        callsites: vec![],
    });
    ModuleJob {
        name: "sample".into(),
        program: prog,
    }
}

/// A deliberately *different* lattice sharing c_types' constant names:
/// `int` and `uint` sit directly under ⊤, so `join(int, uint) = ⊤` where
/// c_types gives `integral32` — same module, different answers.
fn flat_lattice() -> Lattice {
    let mut b = LatticeBuilder::named("flat");
    for e in ["⊤", "int", "uint", "⊥"] {
        b.add(e).expect("fresh");
    }
    b.le("int", "⊤").expect("known");
    b.le("uint", "⊤").expect("known");
    b.le("⊥", "int").expect("known");
    b.le("⊥", "uint").expect("known");
    b.build().expect("flat is a lattice")
}

#[test]
fn two_lattices_segregate_the_cache_and_answer_per_lattice() {
    let c_types = Lattice::c_types();
    let driver = AnalysisDriver::with_config(&c_types, DriverConfig::with_workers(1));
    let jobs = [sample_job()];

    // Cold solve under the default lattice.
    let under_default = driver
        .session(SolveRequest::batch(&jobs))
        .expect("default resolves")
        .run();
    let s1 = driver.cache_stats();
    assert_eq!(s1.hits, 0);
    assert!(s1.misses > 0);

    // The same module under a structurally different lattice carrying the
    // same constant names: every lookup must MISS — cross-lattice hits
    // would silently answer with the wrong lattice's schemes.
    let flat = flat_lattice().descriptor().clone();
    let under_flat = driver
        .session(SolveRequest::batch(&jobs).with_lattice(LatticeSelector::Descriptor(flat.clone())))
        .expect("flat descriptor builds")
        .run();
    let s2 = driver.cache_stats();
    assert_eq!(s2.hits, 0, "cross-lattice lookups must never hit");
    assert_eq!(s2.misses, 2 * s1.misses);
    assert_eq!(
        s2.scheme_entries,
        2 * s1.scheme_entries,
        "each lattice owns its own entries"
    );

    // And the answers really are per-lattice: join(int, uint) differs.
    assert_ne!(
        render(&under_default[0].result),
        render(&under_flat[0].result),
        "flat lattice must change the inferred bounds"
    );
    assert_ne!(under_default[0].lattice_fp, under_flat[0].lattice_fp);

    // Re-submission under each lattice is a 100% hit *within* its lattice.
    for selector in [
        LatticeSelector::Default,
        LatticeSelector::Descriptor(flat),
    ] {
        let warm = driver
            .session(SolveRequest::batch(&jobs).with_lattice(selector))
            .expect("resolves")
            .run();
        assert_eq!(warm[0].result.stats.cache_misses, 0, "warm per-lattice re-solve");
        assert!(warm[0].result.stats.cache_hits > 0);
    }
}

#[test]
fn canonical_descriptor_of_the_default_lattice_shares_its_cache() {
    let c_types = Lattice::c_types();
    let driver = AnalysisDriver::with_config(&c_types, DriverConfig::with_workers(1));
    let jobs = [sample_job()];
    let cold = driver.solve_batch(&jobs);
    assert!(cold[0].result.stats.cache_misses > 0);

    // A request naming c_types *as data* (its canonical descriptor) builds
    // a fingerprint-identical lattice, so it re-hits the default lattice's
    // cache entries — descriptions of the same lattice converge.
    let via_descriptor = driver
        .session(
            SolveRequest::batch(&jobs)
                .with_lattice(LatticeSelector::Descriptor(c_types.descriptor().clone())),
        )
        .expect("canonical c_types descriptor builds")
        .run();
    assert_eq!(via_descriptor[0].result.stats.cache_misses, 0);
    assert_eq!(render(&via_descriptor[0].result), render(&cold[0].result));
    assert_eq!(via_descriptor[0].lattice_fp, cold[0].lattice_fp);
}

#[test]
fn streaming_sink_matches_the_batch_bit_for_bit() {
    let spec = ClusterSpec {
        name: "stream".into(),
        members: 3,
        shared_functions: 5,
        member_functions: 2,
        seed: 99,
        call_depth: 3,
    };
    let jobs: Vec<ModuleJob> = ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect();
    let lattice = Lattice::c_types();

    let reference: Vec<String> = {
        let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1));
        driver
            .solve_batch(&jobs)
            .iter()
            .map(|r| render(&r.result))
            .collect()
    };

    for workers in [1usize, 4] {
        let driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(workers));
        let streamed: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; jobs.len()]);
        let returned = driver.solve_stream(&jobs, |i, report| {
            let prev = streamed.lock().expect("streamed")[i].replace(render(&report.result));
            assert!(prev.is_none(), "module {i} streamed twice");
        });
        let streamed = streamed.into_inner().expect("streamed");
        assert_eq!(returned.len(), jobs.len());
        for (i, want) in reference.iter().enumerate() {
            assert_eq!(
                streamed[i].as_deref(),
                Some(want.as_str()),
                "streamed report {i} diverged at {workers} workers"
            );
            assert_eq!(&render(&returned[i].result), want, "returned report {i}");
        }
    }
}
