//! Queries over the saturated constraint graph, viewed as the transducer `Q`
//! of Theorem 5.1.
//!
//! The saturated graph accepts a pair `(X.u, Y.v)` — meaning
//! `C ⊢ X.u ⊑ Y.v` — iff there is a path from `(X, ⟨u⟩)` to `(Y, ⟨v⟩)` that
//! first pops exactly `u` (interleaved with ε steps) and then pushes exactly
//! `v` (Appendix D.4's "shadowing" discipline: all pops precede all pushes).

use std::collections::BTreeSet;

use crate::bitset::BitSet;
use crate::dtv::DerivedVar;
use crate::graph::{ConstraintGraph, NodeId};
use crate::lattice::{Lattice, LatticeElem};
use crate::variance::Variance;

/// True if the saturated graph witnesses `C ⊢ lhs ⊑ rhs` in the pushdown
/// system of Appendix D.
///
/// A subtype judgement `X.u ⊑ Y.v` may share a common label suffix `s`
/// (`u = u′s`, `v = v′s`) that no rule of the derivation touches: in the
/// pushdown encoding the suffix simply stays on the stack (Definition 5.3
/// allows any stack suffix), and deduction-wise it corresponds to trailing
/// S-FIELD applications.
///
/// Note that the pushdown system applies S-POINTER *unconditionally* (its
/// `∆ptr` contains `v.store ⊑ v.load` for every derived variable), so
/// acceptance slightly over-approximates the Figure 3 rules on words that
/// denote no derivable capability; gate queries with
/// [`crate::shapes::ShapeQuotient::has_var`] where that distinction
/// matters.
pub fn accepts(g: &ConstraintGraph, lhs: &DerivedVar, rhs: &DerivedVar) -> bool {
    if lhs == rhs {
        return true;
    }
    let u = lhs.path();
    let v = rhs.path();
    let max_suffix = u.len().min(v.len());
    for k in 0..=max_suffix {
        if k > 0 && u[u.len() - k] != v[v.len() - k] {
            break;
        }
        if accepts_trimmed(g, lhs, rhs, k) {
            return true;
        }
    }
    false
}

/// The base acceptance test with `k` trailing labels of both words left on
/// the stack untouched.
fn accepts_trimmed(g: &ConstraintGraph, lhs: &DerivedVar, rhs: &DerivedVar, k: usize) -> bool {
    let u = &lhs.path()[..lhs.path().len() - k];
    let v = &rhs.path()[..rhs.path().len() - k];
    // Entry and exit variances are those of the *full* words (the control
    // tags of ∆start/∆end match ⟨u⟩ and ⟨v⟩).
    let entry = match g.node(&DerivedVar::new(lhs.base()), lhs.variance()) {
        Some(n) => n,
        None => return false,
    };
    let exit = match g.node(&DerivedVar::new(rhs.base()), rhs.variance()) {
        Some(n) => n,
        None => return false,
    };

    // States are (node, pops done, pushes done); the pops-then-pushes
    // discipline bounds both counters, so the whole space packs into a
    // dense bitset with no hashing.
    let iw = u.len() + 1;
    let jw = v.len() + 1;
    let encode = |n: NodeId, i: usize, j: usize| (n.0 as usize * iw + i) * jw + j;
    let mut seen = BitSet::new(g.node_count() * iw * jw);
    let mut stack: Vec<(NodeId, usize, usize)> = Vec::with_capacity(64);
    seen.insert(encode(entry, 0, 0));
    stack.push((entry, 0, 0));
    while let Some((n, i, j)) = stack.pop() {
        if n == exit && i == u.len() && j == v.len() {
            return true;
        }
        for to in g.eps_out(n) {
            if seen.insert(encode(to, i, j)) {
                stack.push((to, i, j));
            }
        }
        if j == 0 && i < u.len() {
            for &(l, to) in g.pop_out(n) {
                if l == u[i] && seen.insert(encode(to, i + 1, j)) {
                    stack.push((to, i + 1, j));
                }
            }
        }
        if i == u.len() && j < v.len() {
            for &(l, to) in g.push_out(n) {
                if l == v[v.len() - 1 - j] && seen.insert(encode(to, i, j + 1)) {
                    stack.push((to, i, j + 1));
                }
            }
        }
    }
    false
}


/// Lattice bounds inferred for the derived type variables of a constraint
/// set: for each materialized dtv, the set of type constants that bound it
/// from above and below (the Appendix D.4 queries "which derived type
/// variables are bound above or below by which type constants").
#[derive(Clone, Debug, Default)]
pub struct ConstBounds {
    /// `uppers[dtv]`: constants κ with `dtv ⊑ κ`.
    pub uppers: std::collections::BTreeMap<DerivedVar, BTreeSet<crate::Symbol>>,
    /// `lowers[dtv]`: constants κ with `κ ⊑ dtv`.
    pub lowers: std::collections::BTreeMap<DerivedVar, BTreeSet<crate::Symbol>>,
}

impl ConstBounds {
    /// The meet of all upper bounds of `dv` resolvable in `lattice`
    /// (defaulting to ⊤ when there are none).
    pub fn upper_mark(&self, dv: &DerivedVar, lattice: &Lattice) -> LatticeElem {
        let mut m = lattice.top();
        if let Some(us) = self.uppers.get(dv) {
            for sym in us {
                if let Some(e) = lattice.element_sym(*sym) {
                    m = lattice.meet(m, e);
                }
            }
        }
        m
    }

    /// The join of all lower bounds of `dv` (defaulting to ⊥).
    pub fn lower_mark(&self, dv: &DerivedVar, lattice: &Lattice) -> LatticeElem {
        let mut j = lattice.bottom();
        if let Some(ls) = self.lowers.get(dv) {
            for sym in ls {
                if let Some(e) = lattice.element_sym(*sym) {
                    j = lattice.join(j, e);
                }
            }
        }
        j
    }
}

/// Computes constant bounds for every materialized dtv by ε-reachability on
/// the saturated graph.
///
/// After saturation, any derivation `d ⊑ κ` whose endpoints are materialized
/// is witnessed by a pure-ε path `(d,⊕) ⇝ (κ,⊕)` (balanced excursions having
/// been shortcut), and dually `(κ,⊖) ⇝ (d,⊖)`; lower bounds mirror this.
pub fn const_bounds(g: &ConstraintGraph) -> ConstBounds {
    let mut bounds = ConstBounds::default();
    // Collect constant entry nodes.
    let const_nodes: Vec<(NodeId, crate::Symbol)> = g
        .nodes()
        .filter_map(|n| {
            let d = g.dtv(n);
            if d.is_empty() && d.base().is_const() {
                Some((n, d.base().name()))
            } else {
                None
            }
        })
        .collect();

    // Forward ε-reachability from (κ,⊕) marks lower bounds; from (κ,⊖) it
    // marks upper bounds (the dual row runs backwards).
    for &(n, sym) in &const_nodes {
        let reached = eps_reachable(g, n);
        for m in reached {
            let d = g.dtv(m).clone();
            if d.base().is_const() && d.is_empty() {
                continue;
            }
            match n.variance() {
                Variance::Covariant => {
                    // (κ,⊕) ⇝ (d,⊕): κ ⊑ d. Only same-variance ε edges exist,
                    // so m is covariant.
                    bounds.lowers.entry(d).or_default().insert(sym);
                }
                Variance::Contravariant => {
                    // (κ,⊖) ⇝ (d,⊖) is the dual of d ⊑ κ.
                    bounds.uppers.entry(d).or_default().insert(sym);
                }
            }
        }
    }
    bounds
}

/// Deferred consistency checking (§3): finds entailed scalar constraints
/// `κ₁ ⊑ κ₂` between type constants that do not hold in the lattice.
pub fn scalar_violations(g: &ConstraintGraph, lattice: &Lattice) -> Vec<(crate::Symbol, crate::Symbol)> {
    let mut out = Vec::new();
    let const_nodes: Vec<(NodeId, crate::Symbol)> = g
        .nodes()
        .filter_map(|n| {
            let d = g.dtv(n);
            if d.is_empty() && d.base().is_const() && n.variance() == Variance::Covariant {
                Some((n, d.base().name()))
            } else {
                None
            }
        })
        .collect();
    for &(n, k1) in &const_nodes {
        let (Some(e1),) = (lattice.element_sym(k1),) else {
            continue;
        };
        for m in eps_reachable(g, n) {
            let d = g.dtv(m);
            if d.is_empty() && d.base().is_const() && m.variance() == Variance::Covariant {
                let k2 = d.base().name();
                if let Some(e2) = lattice.element_sym(k2) {
                    if !lattice.leq(e1, e2) {
                        out.push((k1, k2));
                    }
                }
            }
        }
    }
    out
}

fn eps_reachable(g: &ConstraintGraph, from: NodeId) -> Vec<NodeId> {
    let mut seen = BitSet::new(g.node_count());
    let mut stack = vec![from];
    seen.insert(from.0 as usize);
    let mut out = Vec::new();
    while let Some(n) = stack.pop() {
        for to in g.eps_out(n) {
            if seen.insert(to.0 as usize) {
                stack.push(to);
                out.push(to);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_constraint_set, parse_derived_var};
    use crate::saturation::saturate;

    fn saturated(src: &str) -> ConstraintGraph {
        let cs = parse_constraint_set(src).unwrap();
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        g
    }

    #[test]
    fn reflexive_accepts() {
        let g = saturated("a <= b");
        let a = parse_derived_var("a.load").unwrap();
        assert!(accepts(&g, &a, &a));
    }

    #[test]
    fn missing_vars_reject() {
        let g = saturated("a <= b");
        let z = parse_derived_var("zz").unwrap();
        let a = parse_derived_var("a").unwrap();
        assert!(!accepts(&g, &z, &a));
    }

    #[test]
    fn const_bounds_simple() {
        let g = saturated("x <= int; #FileDescriptor <= x; x <= y");
        let b = const_bounds(&g);
        let x = parse_derived_var("x").unwrap();
        let y = parse_derived_var("y").unwrap();
        let int = crate::Symbol::intern("int");
        let fd = crate::Symbol::intern("#FileDescriptor");
        assert!(b.uppers.get(&x).unwrap().contains(&int));
        assert!(b.lowers.get(&x).unwrap().contains(&fd));
        // y inherits the lower bound through x ⊑ y, but not the upper.
        assert!(b.lowers.get(&y).unwrap().contains(&fd));
        assert!(!b.uppers.contains_key(&y) || !b.uppers.get(&y).unwrap().contains(&int));
    }

    #[test]
    fn const_bounds_through_pointer() {
        // Storing an int through p and loading it out: the loaded value has
        // int as a lower bound.
        let g = saturated("int <= p.store.σ32@0; p.load.σ32@0 <= out");
        let b = const_bounds(&g);
        let out = parse_derived_var("out").unwrap();
        assert!(b
            .lowers
            .get(&out)
            .is_some_and(|s| s.contains(&crate::Symbol::intern("int"))));
    }

    #[test]
    fn upper_marks_meet() {
        let lat = crate::Lattice::c_types();
        let g = saturated("x <= int32; x <= #FileDescriptor");
        let b = const_bounds(&g);
        let x = parse_derived_var("x").unwrap();
        let mark = b.upper_mark(&x, &lat);
        assert_eq!(lat.name(mark), "#FileDescriptor");
        let lower = b.lower_mark(&x, &lat);
        assert_eq!(lower, lat.bottom());
    }
}
