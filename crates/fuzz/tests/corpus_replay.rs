//! Replays the committed malformed-input corpus over a live socket.
//!
//! Every entry in `crates/fuzz/corpus/` is a minimized input that once
//! provoked (or guards against) a protocol-level failure. The replay
//! asserts the contract the corpus conventions promise:
//!
//! * the server answers (or cleanly closes) every entry without dying —
//!   a liveness probe must still succeed after the full corpus;
//! * reply bytes are **bit-identical** at one shard and at several,
//!   because every entry fails before admission and never reaches a
//!   shard;
//! * every reply frame the corpus provokes is a protocol `error` frame —
//!   an entry that earns a `stats` or `solved` reply has drifted into
//!   dispatchable work and no longer belongs in the corpus;
//! * `Request::decode` never panics on any committed payload;
//! * `gwstats_*` entries — malformed backend `stats` *replies* — are kept
//!   off the request socket entirely and instead replay through the
//!   gateway's health-probe classifier, which must reject each one
//!   without panicking.

use std::collections::BTreeMap;
use std::time::Duration;

use retypd_fuzz::corpus;
use retypd_fuzz::oracle::SocketOracle;
use retypd_serve::{start, Request, Response, ServeConfig};

/// Per-entry socket deadline; a replay exceeding it is a hang.
const DEADLINE: Duration = Duration::from_secs(5);

/// The acceptance floor for the committed corpus size.
const MIN_ENTRIES: usize = 25;

/// One fixed config per shard count: everything that could leak into a
/// reply (queue depth, read timeout) is pinned so the only variable
/// between the two replays is the shard count itself.
fn config(shards: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards,
        workers_per_shard: 1,
        queue_depth: 8,
        cache_capacity: Some(64),
        read_timeout: Some(Duration::from_secs(2)),
        ..ServeConfig::default()
    }
}

/// Frames a payload entry the way a well-behaved client would.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(payload);
    bytes
}

/// Splits a reply byte stream back into frame payloads, rejecting
/// truncated or dangling bytes.
fn split_frames(mut bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while bytes.len() >= 4 {
        let len = u32::from_be_bytes(bytes[..4].try_into().unwrap()) as usize;
        assert!(
            bytes.len() >= 4 + len,
            "reply stream truncated mid-frame ({} of {len} payload bytes)",
            bytes.len() - 4
        );
        frames.push(bytes[4..4 + len].to_vec());
        bytes = &bytes[4 + len..];
    }
    assert!(bytes.is_empty(), "dangling reply bytes: {bytes:?}");
    frames
}

/// Replays the whole corpus against a fresh server and returns the raw
/// reply bytes per entry. The server must still answer a liveness probe
/// after the last entry.
fn replay_all(shards: usize) -> BTreeMap<String, Vec<u8>> {
    let handle = start(config(shards)).expect("bind replay server");
    let mut oracle = SocketOracle::new(handle.addr(), DEADLINE);
    let mut replies = BTreeMap::new();
    for entry in corpus::load().expect("load committed corpus") {
        if entry.name.starts_with("gwstats_") {
            continue; // backend replies, not requests — classifier-only.
        }
        let wire_bytes = if entry.raw {
            entry.bytes.clone()
        } else {
            frame(&entry.bytes)
        };
        let context = format!("{} at {shards} shard(s)", entry.name);
        let reply = oracle
            .deliver_raw(&wire_bytes, &context)
            .unwrap_or_else(|f| panic!("corpus replay failed: {}", f.describe()));
        replies.insert(entry.name, reply);
    }
    oracle
        .probe(&format!("post-corpus probe at {shards} shard(s)"))
        .expect("server must outlive the whole corpus");
    handle.shutdown();
    replies
}

#[test]
fn corpus_meets_the_committed_size_floor() {
    let entries = corpus::load().expect("load committed corpus");
    assert!(
        entries.len() >= MIN_ENTRIES,
        "corpus holds {} entries, need at least {MIN_ENTRIES}",
        entries.len()
    );
}

#[test]
fn corpus_payloads_decode_without_panics_and_without_dispatchable_work() {
    for entry in corpus::load().expect("load committed corpus") {
        if entry.raw || entry.name.starts_with("gwstats_") {
            continue; // wire bytes / backend replies, not request payloads.
        }
        // Decode must not panic, and must not produce a request the
        // server would dispatch or act on — pre-admission errors only.
        match Request::decode(&entry.bytes) {
            Err(_) => {}
            Ok(Request::Stats) | Ok(Request::Shutdown) | Ok(Request::Metrics { .. }) => {
                panic!("{} decodes to a control request", entry.name)
            }
            // Solve requests may decode; they must then die in job
            // reconstruction, which the replay test proves by demanding
            // an error reply frame.
            Ok(_) => {}
        }
    }
}

#[test]
fn gwstats_corpus_replays_through_the_gateway_classifier() {
    let entries: Vec<_> = corpus::load()
        .expect("load committed corpus")
        .into_iter()
        .filter(|e| e.name.starts_with("gwstats_"))
        .collect();
    assert!(
        entries.len() >= 6,
        "gateway stats-reply corpus holds {} entries, need at least 6",
        entries.len()
    );
    for entry in entries {
        // Each committed reply once confused (or guards against confusing)
        // the gateway's health probe: the classifier must reject it —
        // degrading the backend to unhealthy — and must never panic.
        let verdict = std::panic::catch_unwind(|| {
            retypd_gateway::classify_stats_reply(&entry.bytes)
        })
        .unwrap_or_else(|_| panic!("{}: classifier panicked", entry.name));
        assert!(
            verdict.is_err(),
            "{}: a malformed reply classified healthy",
            entry.name
        );
    }
}

#[test]
fn corpus_replays_bit_identically_across_shard_counts() {
    let one = replay_all(1);
    let three = replay_all(3);
    assert_eq!(
        one.keys().collect::<Vec<_>>(),
        three.keys().collect::<Vec<_>>()
    );
    for (name, reply) in &one {
        assert_eq!(
            reply, &three[name],
            "{name}: reply bytes differ between 1 and 3 shards"
        );
        // Every frame any entry provokes must be a protocol error; a
        // payload entry must provoke exactly one (raw entries may get
        // zero — broken framing — or several, one per embedded attack).
        let frames = split_frames(reply);
        if !name.starts_with("raw_") {
            assert_eq!(frames.len(), 1, "{name}: expected exactly one reply frame");
        }
        for payload in &frames {
            match Response::decode(payload) {
                Ok(Response::Error(_)) => {}
                other => panic!("{name}: reply was not an error frame: {other:?}"),
            }
        }
    }
}
