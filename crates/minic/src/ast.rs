//! Abstract syntax and source types for mini-C.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A source-level type (the ground truth the evaluation compares against).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SrcType {
    /// `void` (function returns only).
    Void,
    /// 32-bit signed integer.
    Int,
    /// 32-bit unsigned integer.
    UInt,
    /// 8-bit character.
    Char,
    /// 32-bit float.
    Float,
    /// A semantically tagged scalar, e.g. `#FileDescriptor` over `int`.
    Tagged(String, Box<SrcType>),
    /// Pointer; `is_const` reflects a `const` pointee annotation.
    Ptr {
        /// Pointee type.
        pointee: Box<SrcType>,
        /// `const` annotation on the pointee.
        is_const: bool,
    },
    /// Reference to a struct by index into [`Module::structs`].
    Struct(usize),
}

impl SrcType {
    /// Convenience: non-const pointer to `t`.
    pub fn ptr(t: SrcType) -> SrcType {
        SrcType::Ptr {
            pointee: Box::new(t),
            is_const: false,
        }
    }

    /// Convenience: const pointer to `t`.
    pub fn const_ptr(t: SrcType) -> SrcType {
        SrcType::Ptr {
            pointee: Box::new(t),
            is_const: true,
        }
    }

    /// Size in bytes (structs are sized by their module).
    pub fn size(&self, module: &Module) -> u32 {
        match self {
            SrcType::Void => 0,
            SrcType::Char => 1,
            SrcType::Int | SrcType::UInt | SrcType::Float | SrcType::Ptr { .. } => 4,
            SrcType::Tagged(_, t) => t.size(module),
            SrcType::Struct(i) => module.structs[*i].size(module),
        }
    }

    /// True if values of this type occupy a machine word (can live in a
    /// register).
    pub fn is_scalar(&self) -> bool {
        !matches!(self, SrcType::Struct(_) | SrcType::Void)
    }

    /// Strips tags.
    pub fn untagged(&self) -> &SrcType {
        match self {
            SrcType::Tagged(_, t) => t.untagged(),
            t => t,
        }
    }

    /// Number of pointer levels (for the multi-level pointer accuracy
    /// metric).
    pub fn pointer_depth(&self) -> u32 {
        match self.untagged() {
            SrcType::Ptr { pointee, .. } => 1 + pointee.pointer_depth(),
            _ => 0,
        }
    }
}

impl fmt::Display for SrcType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrcType::Void => f.write_str("void"),
            SrcType::Int => f.write_str("int"),
            SrcType::UInt => f.write_str("uint"),
            SrcType::Char => f.write_str("char"),
            SrcType::Float => f.write_str("float"),
            SrcType::Tagged(tag, t) => write!(f, "{t} /*{tag}*/"),
            SrcType::Ptr { pointee, is_const } => {
                if *is_const {
                    write!(f, "const {pointee}*")
                } else {
                    write!(f, "{pointee}*")
                }
            }
            SrcType::Struct(i) => write!(f, "struct#{i}"),
        }
    }
}

/// A struct definition: named fields at sequential word-aligned offsets.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(String, SrcType)>,
}

impl StructDef {
    /// Byte offset of a field.
    pub fn offset_of(&self, field: &str, module: &Module) -> Option<u32> {
        let mut off = 0;
        for (name, ty) in &self.fields {
            if name == field {
                return Some(off);
            }
            off += ty.size(module).max(4); // word-aligned fields
        }
        None
    }

    /// The field's type.
    pub fn field_type(&self, field: &str) -> Option<&SrcType> {
        self.fields
            .iter()
            .find(|(n, _)| n == field)
            .map(|(_, t)| t)
    }

    /// Total size in bytes.
    pub fn size(&self, module: &Module) -> u32 {
        self.fields
            .iter()
            .map(|(_, t)| t.size(module).max(4))
            .sum()
    }
}

/// Expressions.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Local variable or parameter reference.
    Var(String),
    /// `e1 op e2` arithmetic.
    Bin(BinKind, Box<Expr>, Box<Expr>),
    /// Comparison, yielding an int.
    Cmp(CmpKind, Box<Expr>, Box<Expr>),
    /// `p->field`.
    Field(Box<Expr>, String),
    /// `*p`.
    Deref(Box<Expr>),
    /// `&x` (address of a local).
    AddrOf(String),
    /// Function call.
    Call(String, Vec<Expr>),
    /// `(T*)e` pointer cast (type-unsafe idioms, §2.6).
    Cast(SrcType, Box<Expr>),
}

/// Arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Statements.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Stmt {
    /// Declaration with initializer: `T x = e;`.
    Decl(String, SrcType, Expr),
    /// Assignment to a local: `x = e;`.
    Assign(String, Expr),
    /// Store through a field: `p->f = e;`.
    StoreField(Expr, String, Expr),
    /// Store through a pointer: `*p = e;`.
    StoreDeref(Expr, Expr),
    /// Expression for effect (calls).
    Expr(Expr),
    /// `if (c) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `return e;` / `return;`.
    Return(Option<Expr>),
}

/// A function definition.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FuncDef {
    /// Name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, SrcType)>,
    /// Return type.
    pub ret: SrcType,
    /// Body.
    pub body: Vec<Stmt>,
    /// Pass parameters in registers (ecx, edx) instead of the stack — the
    /// custom-convention functions of §2.5.
    pub fastcall: bool,
}

/// A compilation unit.
#[derive(Clone, Default, PartialEq, Debug, Serialize, Deserialize)]
pub struct Module {
    /// Struct table.
    pub structs: Vec<StructDef>,
    /// Functions.
    pub funcs: Vec<FuncDef>,
}

impl Module {
    /// Looks up a struct index by name.
    pub fn struct_by_name(&self, name: &str) -> Option<usize> {
        self.structs.iter().position(|s| s.name == name)
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_layout() {
        let m = Module {
            structs: vec![StructDef {
                name: "LL".into(),
                fields: vec![
                    ("next".into(), SrcType::ptr(SrcType::Struct(0))),
                    ("handle".into(), SrcType::Int),
                ],
            }],
            funcs: vec![],
        };
        let s = &m.structs[0];
        assert_eq!(s.offset_of("next", &m), Some(0));
        assert_eq!(s.offset_of("handle", &m), Some(4));
        assert_eq!(s.size(&m), 8);
    }

    #[test]
    fn pointer_depth() {
        let t = SrcType::ptr(SrcType::ptr(SrcType::Char));
        assert_eq!(t.pointer_depth(), 2);
        assert_eq!(SrcType::Int.pointer_depth(), 0);
        let tagged = SrcType::Tagged("#FileDescriptor".into(), Box::new(SrcType::Int));
        assert_eq!(tagged.pointer_depth(), 0);
        assert_eq!(tagged.size(&Module::default()), 4);
    }

    #[test]
    fn display_types() {
        assert_eq!(SrcType::const_ptr(SrcType::Char).to_string(), "const char*");
        assert_eq!(
            SrcType::Tagged("#SuccessZ".into(), Box::new(SrcType::Int)).to_string(),
            "int /*#SuccessZ*/"
        );
    }
}
