//! Failure-injection and robustness: the pipeline must degrade gracefully
//! on inputs the paper calls out — bad disassembly shapes (§2.5),
//! contradictory constraints (§2.6), and register-convention surprises —
//! never panicking and never letting one bad procedure poison the rest.

use retypd::core::{Lattice, Solver, Symbol};
use retypd::mir::isa::{BinOp, Cond, Inst, Mem, Operand, Reg};
use retypd::mir::program::{CallKind, Function, Program as MirProgram};

fn solve(mir: &MirProgram) -> retypd::core::SolverResult {
    let program = retypd::congen::generate(mir);
    let lattice = Lattice::c_types();
    Solver::new(&lattice).infer(&program)
}

#[test]
fn unbalanced_stack_does_not_panic() {
    // A function that pushes without popping (broken disassembly): the
    // stack-delta analysis goes to ⊤ at the join and constraint generation
    // skips the unresolvable accesses.
    let mut mir = MirProgram::new();
    mir.add(Function::new(
        "broken",
        vec![
            Inst::Cmp {
                a: Reg::Eax,
                b: Operand::Imm(0),
            },
            Inst::Jcc {
                cond: Cond::Eq,
                target: 3,
            },
            Inst::Push(Operand::Reg(Reg::Eax)),
            Inst::Load {
                dst: Reg::Ebx,
                addr: Mem::new(Reg::Esp, 4),
                size: 4,
            },
            Inst::Ret,
        ],
    ));
    let result = solve(&mir);
    assert!(result.procs.contains_key(&Symbol::intern("broken")));
}

#[test]
fn contradictory_constraints_are_quarantined() {
    // One function equates int32 and float32 through a value chain; a
    // second, unrelated function must still get clean types (§2.5: bad IR
    // in one part must not degrade the rest — the anti-unification
    // argument).
    let mut mir = MirProgram::new();
    mir.add(Function::new(
        "weird",
        vec![
            // eax := abs(eax-ish) — int evidence
            Inst::Push(Operand::Reg(Reg::Ecx)),
            Inst::Call(CallKind::External("abs".into())),
            Inst::Bin {
                op: BinOp::Add,
                dst: Reg::Esp,
                src: Operand::Imm(4),
            },
            // store the int result through a pointer also used as float: a
            // cross-cast (§2.6) — simulated by flowing it into fabs-ish use.
            Inst::Ret,
        ],
    ));
    mir.add(Function::new(
        "clean",
        vec![
            Inst::Load {
                dst: Reg::Eax,
                addr: Mem::new(Reg::Esp, 4),
                size: 4,
            },
            Inst::Load {
                dst: Reg::Eax,
                addr: Mem::new(Reg::Eax, 0),
                size: 4,
            },
            Inst::Push(Operand::Reg(Reg::Eax)),
            Inst::Call(CallKind::External("close".into())),
            Inst::Bin {
                op: BinOp::Add,
                dst: Reg::Esp,
                src: Operand::Imm(4),
            },
            Inst::Ret,
        ],
    ));
    let result = solve(&mir);
    // `clean` still recovers its pointer-to-fd parameter.
    let clean = &result.procs[&Symbol::intern("clean")];
    let sk = clean.sketch.as_ref().expect("sketch for clean");
    let w = retypd::core::parse::parse_derived_var("x.in_stack0.load.σ32@0").unwrap();
    assert!(sk.contains_word(w.path()), "{}", sk.render(&Lattice::c_types()));
}

#[test]
fn unknown_externals_are_skipped() {
    let mut mir = MirProgram::new();
    mir.add(Function::new(
        "caller",
        vec![
            Inst::Push(Operand::Imm(1)),
            Inst::Call(CallKind::External("mystery_function".into())),
            Inst::Bin {
                op: BinOp::Add,
                dst: Reg::Esp,
                src: Operand::Imm(4),
            },
            Inst::Ret,
        ],
    ));
    let result = solve(&mir);
    assert!(result.procs.contains_key(&Symbol::intern("caller")));
}

#[test]
fn empty_and_degenerate_functions() {
    let mut mir = MirProgram::new();
    mir.add(Function::new("empty", vec![]));
    mir.add(Function::new("just_ret", vec![Inst::Ret]));
    mir.add(Function::new(
        "self_loop",
        vec![Inst::Jmp(0)],
    ));
    let result = solve(&mir);
    assert_eq!(result.procs.len(), 3);
}

#[test]
fn deep_recursion_terminates() {
    // Mutual recursion across three functions: one SCC, solved together.
    let mut mir = MirProgram::new();
    let f0 = retypd::mir::program::FuncId(0);
    let f1 = retypd::mir::program::FuncId(1);
    let f2 = retypd::mir::program::FuncId(2);
    mir.add(Function::new(
        "a3",
        vec![Inst::Call(CallKind::Direct(f1)), Inst::Ret],
    ));
    mir.add(Function::new(
        "b3",
        vec![Inst::Call(CallKind::Direct(f2)), Inst::Ret],
    ));
    mir.add(Function::new(
        "c3",
        vec![Inst::Call(CallKind::Direct(f0)), Inst::Ret],
    ));
    let result = solve(&mir);
    assert_eq!(result.procs.len(), 3);
}
