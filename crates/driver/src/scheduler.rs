//! The wave scheduler's worker pool.
//!
//! [`run_indexed`] executes `n` independent tasks on up to `workers`
//! scoped `std::thread`s and returns the results *in task order*, which is
//! what makes the parallel driver's merges deterministic: however the
//! OS interleaves the workers, the caller applies outputs in the same
//! order the sequential solver would have produced them.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across up to `workers` threads, returning results indexed
/// by task. Work is distributed by an atomic cursor (tasks are coarse —
/// whole SCC solves or whole modules — so contention is negligible).
/// Panics in any task propagate to the caller once the scope joins.
pub fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every task index was claimed exactly once")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order() {
        for workers in [1, 2, 8] {
            let out = run_indexed(37, workers, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_single_task() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
