//! # retypd — facade crate
//!
//! Re-exports the full Retypd reproduction workspace: the core type
//! inference engine, the machine-IR substrate, constraint generation, the
//! mini-C compiler used for workload generation, baseline algorithms, and
//! the evaluation harness.
//!
//! See the individual crates for details:
//!
//! * [`core`] — the paper's contribution: constraint system, saturation
//!   solver, sketches, type schemes, C-type conversion.
//! * [`mir`] — x86-like machine IR and program analyses.
//! * [`congen`] — abstract interpretation generating type constraints.
//! * [`minic`] — mini-C compiler and benchmark generator.
//! * [`baselines`] — unification-based and TIE-style baselines.
//! * [`driver`] — parallel SCC-wave analysis driver with a persistent
//!   scheme cache and batch API.
//! * [`serve`] — sharded network analysis service over the driver: wire
//!   protocol, admission control, client library, load generator.
//! * [`gateway`] — cross-process shard router fronting a fleet of
//!   `serve` backends: consistent-hash routing, health-checked
//!   supervision with restart, hedged requests, live re-sharding.
//! * [`eval`] — metrics and experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use retypd_baselines as baselines;
pub use retypd_congen as congen;
pub use retypd_core as core;
pub use retypd_driver as driver;
pub use retypd_eval as eval;
pub use retypd_gateway as gateway;
pub use retypd_minic as minic;
pub use retypd_mir as mir;
pub use retypd_serve as serve;
