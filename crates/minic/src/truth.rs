//! Ground-truth signatures recorded at compile time.
//!
//! This plays the role of the DWARF/PDB debug builds in the paper's
//! evaluation (§6.2): a separate copy of the type information that the
//! inference never sees, used only for scoring.

use serde::{Deserialize, Serialize};

use crate::ast::{Module, SrcType};

/// Where a parameter is passed.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ParamLoc {
    /// cdecl stack slot at byte offset `k` within the argument area.
    Stack(u32),
    /// Register by name (fastcall).
    Reg(String),
}

/// Ground truth for one parameter.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ParamTruth {
    /// Location.
    pub loc: ParamLoc,
    /// Declared source type.
    pub ty: SrcType,
}

/// Ground truth for one function.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct FuncTruth {
    /// Function name.
    pub name: String,
    /// Parameters in location order.
    pub params: Vec<ParamTruth>,
    /// Declared return type (`None` for `void`).
    pub ret: Option<SrcType>,
}

/// Whole-program ground truth: declared signatures plus the struct table
/// needed to interpret them.
#[derive(Clone, Default, PartialEq, Debug, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The source module (struct layouts).
    pub module: Module,
    /// Per-function signatures.
    pub funcs: Vec<FuncTruth>,
}

impl GroundTruth {
    /// Looks up a function's truth by name.
    pub fn func(&self, name: &str) -> Option<&FuncTruth> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total count of `const`-annotated pointer parameters (the §6.4
    /// metric's denominator).
    pub fn const_param_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| &f.params)
            .filter(|p| matches!(p.ty.untagged(), SrcType::Ptr { is_const: true, .. }))
            .count()
    }
}
