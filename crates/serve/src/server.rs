//! The sharded analysis server.
//!
//! ## Architecture
//!
//! ```text
//!            accept()              bounded admission            shard threads
//!  client ──▶ acceptor ──▶ conn handler ──▶ [queued < limit?] ──▶ shard 0: AnalysisDriver + cache
//!  client ──▶            ──▶ conn handler ──▶        │         ──▶ shard 1: AnalysisDriver + cache
//!                                            reject: Overloaded    …  (route: fingerprint % shards)
//! ```
//!
//! * **One driver per shard.** Each shard thread owns a long-lived
//!   [`AnalysisDriver`] (owned lattice, bounded cache) for its whole life.
//!   Modules are routed by [`ModuleJob::fingerprint`]` % shards`, so a
//!   re-submitted module always lands on the shard whose cache already
//!   holds its SCCs — the warm path is a pure fingerprint hit.
//! * **Admission control.** A global in-flight job counter guards the
//!   queues: a request whose batch would push the count past
//!   [`ServeConfig::queue_depth`] is refused with `overloaded` *before*
//!   anything is enqueued (no partial admission), so an overloaded server
//!   answers immediately instead of stacking work.
//! * **Graceful drain.** `shutdown` (wire message or
//!   [`ServerHandle::shutdown`]) stops admissions, lets every queued job
//!   finish, and joins the shard threads; in-flight responses are
//!   delivered.
//!
//! Determinism: shard routing is content-addressed and each module solves
//! on exactly one driver, so results are bit-identical to in-process
//! [`AnalysisDriver::solve_batch`] — pinned by `tests/serve_determinism.rs`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use retypd_core::Lattice;
use retypd_driver::{AnalysisDriver, CacheStats, DriverConfig, ModuleJob, ModuleReport};

use crate::wire::{
    self, Request, Response, WireModule, WireReport, WireShardStats, WireStats,
};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Number of shards (each owns one driver and one cache).
    pub shards: usize,
    /// Worker threads inside each shard's wave scheduler.
    pub workers_per_shard: usize,
    /// Admission limit: maximum modules admitted but not yet finished.
    pub queue_depth: usize,
    /// Per-shard driver cache capacity (see
    /// [`DriverConfig::cache_capacity`]); a resident service must bound its
    /// caches, so unlike the driver default this is `Some` out of the box.
    pub cache_capacity: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 2,
            workers_per_shard: 1,
            queue_depth: 256,
            cache_capacity: Some(4096),
        }
    }
}

/// A solve job routed to a shard.
struct ShardJob {
    /// Position in the originating batch (responses preserve order).
    index: usize,
    job: ModuleJob,
    fingerprint: u64,
    reply: mpsc::Sender<(usize, WireReport)>,
}

/// One shard's handle: its queue sender and published statistics.
struct Shard {
    /// `None` once draining has begun (new sends fail fast).
    tx: Mutex<Option<mpsc::Sender<ShardJob>>>,
    /// Snapshot refreshed by the shard thread after every job.
    stats: Mutex<WireShardStats>,
}

struct Shared {
    shards: Vec<Shard>,
    queue_depth: usize,
    /// Modules admitted and not yet finished (shards decrement).
    queued: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    draining: AtomicBool,
    local_addr: SocketAddr,
}

impl Shared {
    /// Admits `n` jobs atomically, or reports the current queue depth.
    fn admit(&self, n: usize) -> Result<(), usize> {
        let mut cur = self.queued.load(Ordering::Relaxed);
        loop {
            if self.draining.load(Ordering::Relaxed) {
                return Err(cur);
            }
            if cur + n > self.queue_depth {
                return Err(cur);
            }
            match self.queued.compare_exchange(
                cur,
                cur + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return; // already draining
        }
        // Hang up the shard queues: shards finish what is buffered, then
        // their `for` loops end.
        for shard in &self.shards {
            shard.tx.lock().expect("shard tx lock").take();
        }
        // Nudge the acceptor out of `accept()`. A bind to 0.0.0.0/[::] is
        // not a connectable destination everywhere, so aim the nudge at
        // loopback on the same port; residual failure (e.g. ephemeral-port
        // exhaustion) leaves the acceptor parked until the next real
        // connection, which also observes `draining` and lets it exit.
        let mut nudge = self.local_addr;
        if nudge.ip().is_unspecified() {
            nudge.set_ip(match nudge.ip() {
                std::net::IpAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                std::net::IpAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&nudge, std::time::Duration::from_secs(1));
    }

    fn stats(&self) -> WireStats {
        WireStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            queue_limit: self.queue_depth,
            shards: self
                .shards
                .iter()
                .map(|s| *s.stats.lock().expect("shard stats lock"))
                .collect(),
        }
    }
}

/// A running server: its bound address and lifecycle control.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Begins a graceful drain and waits for queued work and every server
    /// thread to finish.
    pub fn shutdown(mut self) {
        self.shared.begin_drain();
        self.join_threads();
    }

    /// Blocks until the server drains (a `shutdown` wire message, or
    /// [`ServerHandle::shutdown`] from another handle-owning thread).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Starts a server.
///
/// # Errors
///
/// Fails if the listen address cannot be bound.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    let shards = config.shards.max(1);

    let mut shard_handles = Vec::new();
    let mut shard_threads = Vec::new();
    let mut receivers = Vec::new();
    for shard_id in 0..shards {
        let (tx, rx) = mpsc::channel::<ShardJob>();
        shard_handles.push(Shard {
            tx: Mutex::new(Some(tx)),
            stats: Mutex::new(WireShardStats {
                shard: shard_id,
                jobs: 0,
                cache: CacheStats::default(),
            }),
        });
        receivers.push(rx);
    }

    let shared = Arc::new(Shared {
        shards: shard_handles,
        queue_depth: config.queue_depth,
        queued: AtomicUsize::new(0),
        accepted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        draining: AtomicBool::new(false),
        local_addr,
    });

    for (shard_id, rx) in receivers.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let driver_config = DriverConfig {
            workers: config.workers_per_shard.max(1),
            cache_capacity: config.cache_capacity,
        };
        shard_threads.push(
            std::thread::Builder::new()
                .name(format!("retypd-shard-{shard_id}"))
                .spawn(move || shard_main(shard_id, rx, driver_config, shared))
                .expect("spawn shard thread"),
        );
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("retypd-acceptor".into())
            .spawn(move || acceptor_main(listener, shared))
            .expect("spawn acceptor thread")
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        shard_threads,
    })
}

fn shard_main(
    shard_id: usize,
    rx: mpsc::Receiver<ShardJob>,
    driver_config: DriverConfig,
    shared: Arc<Shared>,
) {
    // The driver outlives every request: its cache *is* the shard's state.
    let driver = AnalysisDriver::owned(Lattice::c_types(), driver_config);
    let mut jobs_done = 0u64;
    for msg in rx {
        let start = Instant::now();
        let result = driver.solve(&msg.job.program);
        let report = ModuleReport {
            name: msg.job.name.clone(),
            result,
            wall: start.elapsed(),
        };
        jobs_done += 1;
        *shared.shards[shard_id].stats.lock().expect("shard stats lock") = WireShardStats {
            shard: shard_id,
            jobs: jobs_done,
            cache: driver.cache_stats(),
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        // A dropped reply receiver just means the client went away.
        let _ = msg.reply.send((
            msg.index,
            WireReport::from_report(&report, msg.fingerprint, shard_id),
        ));
    }
}

fn acceptor_main(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small request/response pairs; Nagle + delayed ACK
        // would add ~40ms to every warm hit.
        stream.set_nodelay(true).ok();
        let shared = Arc::clone(&shared);
        // Connection handlers are detached: they exit on client disconnect,
        // and during a drain every new request is refused, so none of them
        // can hold work back.
        let _ = std::thread::Builder::new()
            .name("retypd-conn".into())
            .spawn(move || handle_conn(stream, shared));
    }
}

fn handle_conn(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        let payload = match wire::read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return, // clean EOF or broken socket
        };
        let response = match Request::decode(&payload) {
            Ok(req) => respond(req, &shared),
            Err(e) => Response::Error(e.to_string()),
        };
        if wire::write_frame(&mut stream, &response.encode()).is_err() {
            return;
        }
    }
}

fn respond(req: Request, shared: &Shared) -> Response {
    match req {
        Request::SolveModule(m) => solve(std::slice::from_ref(&m), shared),
        Request::SolveBatch(ms) => solve(&ms, shared),
        Request::Stats => Response::Stats(shared.stats()),
        Request::Shutdown => {
            shared.begin_drain();
            Response::ShuttingDown
        }
    }
}

fn solve(modules: &[WireModule], shared: &Shared) -> Response {
    if shared.draining.load(Ordering::Relaxed) {
        return Response::ShuttingDown;
    }
    if modules.is_empty() {
        return Response::Solved(Vec::new());
    }
    // Reconstruct jobs *before* admission so a malformed request costs no
    // queue budget.
    let jobs = match modules
        .iter()
        .map(WireModule::to_job)
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(jobs) => jobs,
        Err(e) => return Response::Error(e.to_string()),
    };
    // All-or-nothing admission.
    if let Err(queued) = shared.admit(jobs.len()) {
        if shared.draining.load(Ordering::Relaxed) {
            // A drain refusal is not overload pressure: report the drain
            // and leave the `rejected` counter (documented as overload
            // rejections) alone.
            return Response::ShuttingDown;
        }
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::Overloaded {
            queued,
            limit: shared.queue_depth,
        };
    }
    shared.accepted.fetch_add(1, Ordering::Relaxed);

    let n = jobs.len();
    let (reply_tx, reply_rx) = mpsc::channel();
    let mut dispatched = 0usize;
    for (index, job) in jobs.into_iter().enumerate() {
        let fingerprint = job.fingerprint();
        let shard = (fingerprint % shared.shards.len() as u64) as usize;
        let sent = {
            let guard = shared.shards[shard].tx.lock().expect("shard tx lock");
            match guard.as_ref() {
                Some(tx) => tx
                    .send(ShardJob {
                        index,
                        job,
                        fingerprint,
                        reply: reply_tx.clone(),
                    })
                    .is_ok(),
                None => false,
            }
        };
        if sent {
            dispatched += 1;
        } else {
            // Drain raced us between `admit` and dispatch: release the
            // budget for this job ourselves.
            shared.queued.fetch_sub(1, Ordering::Relaxed);
        }
    }
    drop(reply_tx);

    let mut reports: Vec<Option<WireReport>> = (0..n).map(|_| None).collect();
    for (index, report) in reply_rx {
        reports[index] = Some(report);
    }
    if dispatched < n || reports.iter().any(Option::is_none) {
        return Response::ShuttingDown;
    }
    Response::Solved(reports.into_iter().map(Option::unwrap).collect())
}
