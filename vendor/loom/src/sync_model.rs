//! Model-checked doubles of `std::sync` blocking primitives.
//!
//! Each type wraps the real std primitive and uses it for *storage*;
//! blocking and wakeups are decided by the model scheduler (so every
//! admissible handoff order is explored), and clock joins implement the
//! happens-before edges the real primitive would provide.
//!
//! Divergences from std, by design:
//!
//! - **Poisoning is cleared under the model.** An explored interleaving
//!   that panics aborts the whole execution and is reported with its
//!   schedule; carrying the poison into the *next* explored
//!   interleaving would make every subsequent run fail for the wrong
//!   reason. `lock()`/`read()`/`write()` therefore always return `Ok`
//!   in model runs.
//! - **[`WaitTimeoutResult`] is our own type** (std's has no public
//!   constructor); it has the same `timed_out()` shape.
//! - Timeouts carry no durations: a model `wait_timeout` times out
//!   only when nothing else in the model can run.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};
use std::time::Duration;

use crate::rt;

/// Model-checked double of `std::sync::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    real: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the model lock (a schedule
/// point) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    modeled: bool,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (usable in `static`s).
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            real: std::sync::Mutex::new(t),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.real.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        &self.real as *const _ as *const () as usize
    }

    /// Acquires the mutex, blocking in model time while held elsewhere.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if rt::mutex_lock(self.addr()) {
            // The model serializes ownership, so the real lock below is
            // uncontended; poison from aborted interleavings is cleared.
            let g = self.real.lock().unwrap_or_else(PoisonError::into_inner);
            Ok(MutexGuard {
                lock: self,
                inner: Some(g),
                modeled: true,
            })
        } else {
            match self.real.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: false,
                }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    modeled: false,
                })),
            }
        }
    }

    /// Attempts the lock without blocking (one schedule point).
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        match rt::mutex_try_lock(self.addr()) {
            Some(true) => {
                let g = self.real.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: true,
                })
            }
            Some(false) => Err(TryLockError::WouldBlock),
            None => match self.real.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: false,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        modeled: false,
                    })))
                }
            },
        }
    }

    /// Exclusive access to the data (`&mut self` proves no concurrency).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.real.get_mut()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not dissolved")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not dissolved")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if self.modeled {
                rt::mutex_unlock(self.lock.addr());
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.real.fmt(f)
    }
}

/// Own double of `std::sync::WaitTimeoutResult` (std's cannot be
/// constructed outside std).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-checked double of `std::sync::Condvar`. Lost wakeups are
/// modeled faithfully: a notify with no waiter does nothing, and a
/// waiter that is never notified deadlocks the model (reported with
/// the schedule that got there).
#[derive(Default)]
pub struct Condvar {
    real: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable (usable in `static`s).
    pub const fn new() -> Condvar {
        Condvar {
            real: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        &self.real as *const _ as usize
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (MutexGuard<'a, T>, bool) {
        let timed = timeout.is_some();
        let lock = guard.lock;
        if guard.modeled {
            // Dissolve the guard without a model unlock: the model wait
            // releases and reacquires the mutex itself, atomically with
            // registering as a waiter.
            let mut guard = guard;
            drop(guard.inner.take());
            drop(guard);
            let timed_out = rt::cond_wait(self.addr(), lock.addr(), timed);
            let g = lock.real.lock().unwrap_or_else(PoisonError::into_inner);
            (
                MutexGuard {
                    lock,
                    inner: Some(g),
                    modeled: true,
                },
                timed_out,
            )
        } else {
            let mut guard = guard;
            let sg = guard.inner.take().expect("guard not dissolved");
            drop(guard);
            let (sg, timed_out) = if let Some(dur) = timeout {
                let (sg, to) = self
                    .real
                    .wait_timeout(sg, dur)
                    .unwrap_or_else(PoisonError::into_inner);
                (sg, to.timed_out())
            } else {
                (
                    self.real.wait(sg).unwrap_or_else(PoisonError::into_inner),
                    false,
                )
            };
            (
                MutexGuard {
                    lock,
                    inner: Some(sg),
                    modeled: false,
                },
                timed_out,
            )
        }
    }

    /// Waits until notified, releasing the mutex meanwhile.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, None).0)
    }

    /// Waits until notified, or until the model decides the timeout
    /// fires (only when nothing else can run). The duration is ignored
    /// in model runs.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (g, timed_out) = self.wait_inner(guard, Some(dur));
        Ok((g, WaitTimeoutResult(timed_out)))
    }

    /// Wakes one waiter; which one is a model decision point.
    pub fn notify_one(&self) {
        rt::cond_notify(self.addr(), false);
        self.real.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        rt::cond_notify(self.addr(), true);
        self.real.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Model-checked double of `std::sync::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    real: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    modeled: bool,
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    modeled: bool,
}

impl<T> RwLock<T> {
    /// Creates a new lock (usable in `static`s).
    pub const fn new(t: T) -> RwLock<T> {
        RwLock {
            real: std::sync::RwLock::new(t),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.real.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn addr(&self) -> usize {
        &self.real as *const _ as *const () as usize
    }

    /// Acquires shared read access (blocking in model time).
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if rt::rw_lock_read(self.addr()) {
            let g = self.real.read().unwrap_or_else(PoisonError::into_inner);
            Ok(RwLockReadGuard {
                lock: self,
                inner: Some(g),
                modeled: true,
            })
        } else {
            match self.real.read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: false,
                }),
                Err(p) => Err(PoisonError::new(RwLockReadGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    modeled: false,
                })),
            }
        }
    }

    /// Acquires exclusive write access (blocking in model time).
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if rt::rw_lock_write(self.addr()) {
            let g = self.real.write().unwrap_or_else(PoisonError::into_inner);
            Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
                modeled: true,
            })
        } else {
            match self.real.write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: false,
                }),
                Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                    lock: self,
                    inner: Some(p.into_inner()),
                    modeled: false,
                })),
            }
        }
    }

    /// Attempts read access without blocking (one schedule point).
    pub fn try_read(&self) -> TryLockResult<RwLockReadGuard<'_, T>> {
        match rt::rw_try_lock(self.addr(), false) {
            Some(true) => {
                let g = self.real.read().unwrap_or_else(PoisonError::into_inner);
                Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: true,
                })
            }
            Some(false) => Err(TryLockError::WouldBlock),
            None => match self.real.try_read() {
                Ok(g) => Ok(RwLockReadGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: false,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        modeled: false,
                    })))
                }
            },
        }
    }

    /// Attempts write access without blocking (one schedule point).
    pub fn try_write(&self) -> TryLockResult<RwLockWriteGuard<'_, T>> {
        match rt::rw_try_lock(self.addr(), true) {
            Some(true) => {
                let g = self.real.write().unwrap_or_else(PoisonError::into_inner);
                Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: true,
                })
            }
            Some(false) => Err(TryLockError::WouldBlock),
            None => match self.real.try_write() {
                Ok(g) => Ok(RwLockWriteGuard {
                    lock: self,
                    inner: Some(g),
                    modeled: false,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(p)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockWriteGuard {
                        lock: self,
                        inner: Some(p.into_inner()),
                        modeled: false,
                    })))
                }
            },
        }
    }

    /// Exclusive access to the data (`&mut self` proves no concurrency).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.real.get_mut()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not dissolved")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if self.modeled {
                rt::rw_unlock(self.lock.addr(), false);
            }
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not dissolved")
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not dissolved")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.inner.take() {
            drop(g);
            if self.modeled {
                rt::rw_unlock(self.lock.addr(), true);
            }
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.real.fmt(f)
    }
}

/// Model-checked double of `std::sync::OnceLock`: a model
/// acquire-flagged fast path over a model mutex-guarded slow path, so
/// the checker explores racing initializers.
pub struct OnceLock<T> {
    inited: crate::atomics::AtomicBool,
    lock: Mutex<()>,
    slot: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell (usable in `static`s).
    pub const fn new() -> OnceLock<T> {
        OnceLock {
            inited: crate::atomics::AtomicBool::new(false),
            lock: Mutex::new(()),
            slot: std::sync::OnceLock::new(),
        }
    }

    /// The value, if initialization has been published.
    pub fn get(&self) -> Option<&T> {
        if self.inited.load(std::sync::atomic::Ordering::Acquire) {
            self.slot.get()
        } else {
            None
        }
    }

    /// Sets the value if the cell is empty.
    pub fn set(&self, value: T) -> Result<(), T> {
        let _g = self.lock.lock();
        let r = self.slot.set(value);
        if r.is_ok() {
            self.inited.store(true, std::sync::atomic::Ordering::Release);
        }
        r
    }

    /// Gets the value, initializing it with `f` if empty. Exactly one
    /// racing initializer runs `f`; the rest serialize behind it.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        if let Some(v) = self.get() {
            return v;
        }
        let _g = self.lock.lock();
        if self.slot.get().is_none() {
            let v = f();
            let _ = self.slot.set(v);
        }
        self.inited.store(true, std::sync::atomic::Ordering::Release);
        self.slot.get().expect("slot initialized under lock")
    }

    /// Exclusive access to the value, if set.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.slot.get_mut()
    }

    /// Consumes the cell, returning the value if set.
    pub fn into_inner(self) -> Option<T> {
        self.slot.into_inner()
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.slot.fmt(f)
    }
}
