//! Criterion microbenchmarks for the core saturation/simplification engine.

use criterion::{criterion_group, criterion_main, Criterion};
use retypd_core::graph::ConstraintGraph;
use retypd_core::parse::parse_constraint_set;
use retypd_core::saturation::saturate;
use retypd_core::{ConstraintSet, Lattice, SchemeBuilder};

fn figure2_constraints() -> ConstraintSet {
    parse_constraint_set(
        "
        f.in_stack0 <= t
        t.load.σ32@0 <= t
        t.load.σ32@4 <= #FileDescriptor
        t.load.σ32@4 <= int
        int <= f.out_eax
        #SuccessZ <= f.out_eax
        ",
    )
    .unwrap()
}

fn chain_constraints(n: usize) -> ConstraintSet {
    let mut cs = ConstraintSet::new();
    for i in 0..n {
        cs.add_sub_str(&format!("v{i}"), &format!("v{}", i + 1));
        if i % 3 == 0 {
            cs.add_sub_str(&format!("p{i}.load.σ32@0"), &format!("v{i}"));
            cs.add_sub_str(&format!("v{i}"), &format!("p{}.store.σ32@0", i + 1));
        }
    }
    cs.add_sub_str("v0", "int");
    cs
}

fn bench(c: &mut Criterion) {
    c.bench_function("saturate_figure2", |b| {
        let cs = figure2_constraints();
        b.iter(|| {
            let mut g = ConstraintGraph::build(&cs);
            saturate(&mut g)
        })
    });
    c.bench_function("saturate_chain_200", |b| {
        let cs = chain_constraints(200);
        b.iter(|| {
            let mut g = ConstraintGraph::build(&cs);
            saturate(&mut g)
        })
    });
    c.bench_function("simplify_figure2_scheme", |b| {
        let cs = figure2_constraints();
        let lattice = Lattice::c_types();
        let builder = SchemeBuilder::new(&lattice);
        b.iter(|| builder.infer("f", &cs))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
