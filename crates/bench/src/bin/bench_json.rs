//! Machine-readable benchmark runner: times the same workloads as the
//! criterion bench targets (`core_solver`, `pipeline`, `sketches`) and
//! emits one JSON document, so perf trajectories can be committed and
//! diffed across PRs (`BENCH_*.json` at the repo root).
//!
//! ```text
//! cargo run --release -p retypd-bench --bin bench_json            # full suite
//! cargo run --release -p retypd-bench --bin bench_json -- --small # CI smoke
//! cargo run --release -p retypd-bench --bin bench_json -- --out BENCH_pr2.json
//! ```
//!
//! Names are `<group>/<bench>` matching the criterion targets, e.g.
//! `core_solver/saturate_chain_200` and `pipeline/2650` (the pipeline
//! parameter is the generated program's instruction count).

use std::io::Write as _;
use std::time::{Duration, Instant};

use retypd_bench::{chain_constraints, figure2_constraints, sketch_for, wide_bounds_constraints};
use retypd_core::graph::ConstraintGraph;
use retypd_core::saturation::saturate;
use retypd_core::solver::SolverStats;
use retypd_core::{Lattice, SchemeBuilder, Solver};
use retypd_driver::{AnalysisDriver, DriverConfig};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{GenConfig, ProgramGenerator};

/// Wall-clock budget spent measuring each benchmark (after warm-up).
const TARGET_MEASURE: Duration = Duration::from_millis(400);
const MAX_ITERS: u64 = 100_000;

struct Record {
    name: String,
    ns_per_iter: f64,
    iters: u64,
}

/// Times `body` adaptively and records the mean wall-clock per iteration,
/// taking the best of three measurement passes to damp scheduler noise.
/// Returns the warm-up invocation's output (workloads are deterministic, so
/// callers can harvest e.g. solver stats without an extra run).
fn bench<O>(records: &mut Vec<Record>, name: &str, mut body: impl FnMut() -> O) -> O {
    let warm_start = Instant::now();
    let warm_out = std::hint::black_box(body());
    let once = warm_start.elapsed().max(Duration::from_nanos(1));
    let iters =
        (TARGET_MEASURE.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(body());
        }
        let mean = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(mean);
    }
    eprintln!("{name:<40} {best:>14.0} ns/iter (n = {iters})");
    records.push(Record {
        name: name.to_owned(),
        ns_per_iter: best,
        iters,
    });
    warm_out
}

/// Measures several arms by rotating through them inside one window and
/// recording each arm's median wall-clock per iteration. Used for the
/// claims that are *ratios between arms* (append overhead, warm-restart
/// speedup): back-to-back single-arm blocks drift by up to ~10% on a
/// 1-core container — frequency, page cache, scheduler — which swamps a
/// ≤5% effect; rotation runs every arm through the same drift so it
/// cancels out of the ratios.
fn bench_rotated<'a>(records: &mut Vec<Record>, mut arms: Vec<(String, Box<dyn FnMut() + 'a>)>) {
    let warm_start = Instant::now();
    for (_, body) in arms.iter_mut() {
        body();
    }
    let once = (warm_start.elapsed() / arms.len() as u32).max(Duration::from_nanos(1));
    let rounds =
        ((3 * TARGET_MEASURE.as_nanos()) / once.as_nanos()).clamp(4, 200) as usize;
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(rounds); arms.len()];
    for r in 0..rounds {
        // Rotate the starting arm each round so no arm systematically
        // follows another (an arm that dirties the page cache would
        // otherwise tax a fixed successor).
        for k in 0..arms.len() {
            let i = (k + r) % arms.len();
            let t = Instant::now();
            (arms[i].1)();
            times[i].push(t.elapsed().as_nanos() as f64);
        }
    }
    for ((name, _), mut v) in arms.into_iter().zip(times) {
        v.sort_by(f64::total_cmp);
        let median = v[v.len() / 2];
        eprintln!("{name:<40} {median:>14.0} ns/iter (n = {rounds})");
        records.push(Record {
            name,
            ns_per_iter: median,
            iters: rounds as u64,
        });
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut small = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next(),
            "--small" => small = true,
            other => {
                eprintln!("unknown argument {other}; usage: bench_json [--small] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let lattice = Lattice::c_types();
    let mut records = Vec::new();

    // --- core_solver ---
    let fig2 = figure2_constraints();
    bench(&mut records, "core_solver/saturate_figure2", || {
        let mut g = ConstraintGraph::build(&fig2);
        saturate(&mut g)
    });
    let chain_len = if small { 50 } else { 200 };
    let chain = chain_constraints(chain_len);
    bench(
        &mut records,
        &format!("core_solver/saturate_chain_{chain_len}"),
        || {
            let mut g = ConstraintGraph::build(&chain);
            saturate(&mut g)
        },
    );
    let builder = SchemeBuilder::new(&lattice);
    bench(&mut records, "core_solver/simplify_figure2_scheme", || {
        builder.infer("f", &fig2)
    });

    // --- pipeline (+ per-size stats samples and driver runs) ---
    let mut stats_records: Vec<(String, SolverStats)> = Vec::new();
    // Scratch dir for the persistence benches' scheme-store log files.
    let store_dir = std::env::temp_dir().join(format!("retypd-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&store_dir).expect("create store scratch dir");
    // (replayed_entries, replay_ns) for the largest size, for the
    // `persist` JSON section's replay-throughput figure.
    let mut persist_probe: Option<(u64, u64)> = None;
    let mut last_insts = 0usize;
    let sizes: &[usize] = if small { &[10] } else { &[10, 40, 120] };
    for &functions in sizes {
        let module = ProgramGenerator::new(GenConfig {
            seed: 7,
            functions,
            ..GenConfig::default()
        })
        .generate();
        let (mir, _) = compile(&module).unwrap();
        let program = retypd_congen::generate(&mir);
        let insts = mir.instruction_count();
        let solved = bench(&mut records, &format!("pipeline/{insts}"), || {
            Solver::new(&lattice).infer(&program)
        });
        stats_records.push((format!("pipeline/{insts}"), solved.stats));
        // Driver runs: `warm` reuses one driver, so after the first
        // iteration every SCC is a cache hit — the serving path for
        // re-submitted modules.
        let warm_driver = AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1));
        bench(&mut records, &format!("driver/pipeline_{insts}_warm"), || {
            warm_driver.solve(&program)
        });
        stats_records.push((
            format!("driver/pipeline_{insts}_warm"),
            warm_driver.solve(&program).stats,
        ));
        // `cold` (fresh driver per iteration — full solve plus
        // fingerprint overhead), `cold_persist` (the cold solve with
        // store appends riding along: fresh driver, fresh log each
        // iteration; the drop inside the arm joins the store's writer
        // thread, so the timing covers the full durability cost, not
        // just the enqueue), and `coldstart_replayed` (a fresh driver
        // built over a *populated* log — replay plus an all-hit solve,
        // the warm-restart path; the log is primed once and replays
        // never append since every SCC hits). The three run rotated in
        // one window because the headline claims are the ratios between
        // them — see `bench_rotated`.
        let persist_config = |path: std::path::PathBuf| {
            let mut cfg = DriverConfig::with_workers(1);
            cfg.persist_path = Some(path);
            cfg
        };
        let counter = std::cell::Cell::new(0u64);
        let replay_path = store_dir.join(format!("replay-{insts}.store"));
        AnalysisDriver::with_config(&lattice, persist_config(replay_path.clone()))
            .solve(&program);
        bench_rotated(
            &mut records,
            vec![
                (
                    format!("driver/pipeline_{insts}_cold"),
                    Box::new(|| {
                        std::hint::black_box(
                            AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1))
                                .solve(&program),
                        );
                    }),
                ),
                (
                    format!("driver/pipeline_{insts}_cold_persist"),
                    Box::new(|| {
                        let n = counter.get();
                        counter.set(n + 1);
                        let path = store_dir.join(format!("cp-{insts}-{n}.store"));
                        std::hint::black_box(
                            AnalysisDriver::with_config(&lattice, persist_config(path.clone()))
                                .solve(&program),
                        );
                        // Unlinking inside the arm keeps the cost honest
                        // while stopping dirty pages from ~200 dead logs
                        // from bleeding writeback time into the other
                        // arms of the rotation.
                        let _ = std::fs::remove_file(&path);
                    }),
                ),
                (
                    format!("driver/pipeline_{insts}_coldstart_replayed"),
                    Box::new(|| {
                        std::hint::black_box(
                            AnalysisDriver::with_config(
                                &lattice,
                                persist_config(replay_path.clone()),
                            )
                            .solve(&program),
                        );
                    }),
                ),
            ],
        );
        let replayed = AnalysisDriver::with_config(&lattice, persist_config(replay_path.clone()))
            .solve(&program);
        assert_eq!(
            replayed.stats.cache_misses, 0,
            "a replayed store must serve every SCC from cache"
        );
        stats_records.push((
            format!("driver/pipeline_{insts}_coldstart_replayed"),
            replayed.stats,
        ));
        let probe =
            AnalysisDriver::with_config(&lattice, persist_config(replay_path.clone()));
        let ps = probe.persist_stats().expect("persistence is on");
        assert!(ps.replayed_entries > 0 && ps.dropped_records == 0);
        persist_probe = Some((ps.replayed_entries, ps.replay_ns));
        last_insts = insts;
    }

    // --- sketches ---
    let a = sketch_for(
        "f.in_stack0 <= t; t.load.σ32@0 <= t; t.load.σ32@4 <= int; int <= f.out_eax",
        &lattice,
    );
    let b2 = sketch_for(
        "f.in_stack0 <= u; int <= u.store.σ32@0; u.load.σ32@8 <= #FileDescriptor",
        &lattice,
    );
    bench(&mut records, "sketches/sketch_meet", || a.meet(&b2, &lattice));
    bench(&mut records, "sketches/sketch_join", || a.join(&b2, &lattice));
    bench(&mut records, "sketches/sketch_leq", || a.leq(&b2, &lattice));
    // Bound-query workload: many states × many constants, saturated once;
    // each iteration re-infers the sketch (marks + intervals).
    let wide = wide_bounds_constraints();
    let mut wide_g = ConstraintGraph::build(&wide);
    saturate(&mut wide_g);
    let wide_q = retypd_core::ShapeQuotient::build(&wide);
    let wide_consts: Vec<retypd_core::BaseVar> = wide
        .base_vars()
        .into_iter()
        .filter(|b| b.is_const())
        .collect();
    bench(&mut records, "sketches/sketch_infer_wide", || {
        retypd_core::Sketch::infer(
            retypd_core::BaseVar::var("f"),
            &wide_g,
            &wide_q,
            &lattice,
            &wide_consts,
        )
    });

    // --- serve (wire protocol + loopback service round trips) ---
    {
        use retypd_driver::ModuleJob;
        use retypd_minic::genprog::{ClusterSpec, ProgramGenerator as ClusterGen};
        use retypd_serve::wire::{Request, WireModule};
        use retypd_serve::{start, Client, ServeConfig};

        let module = ProgramGenerator::new(GenConfig {
            seed: 7,
            functions: 10,
            ..GenConfig::default()
        })
        .generate();
        let (mir, _) = compile(&module).unwrap();
        let job = ModuleJob {
            name: "bench".into(),
            program: retypd_congen::generate(&mir),
        };
        bench(&mut records, "serve/wire_encode_module", || {
            Request::solve_module(WireModule::from_job(&job)).encode()
        });
        let payload = Request::solve_module(WireModule::from_job(&job)).encode();
        bench(&mut records, "serve/wire_decode_module", || {
            Request::decode(&payload).expect("payload decodes")
        });
        // Full socket round trip against a loopback shard. The warm-up
        // request primes the shard cache, so the measured iterations are
        // the serving path for re-submitted modules (fingerprint hit, no
        // solver work) — socket + JSON + cache-lookup latency.
        let handle = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 1,
            ..ServeConfig::default()
        })
        .expect("loopback server");
        let mut client = Client::connect(handle.addr()).expect("loopback client");
        client.solve_module(&job).expect("cold prime");
        bench(&mut records, "serve/loopback_solve_warm", || {
            client.solve_module(&job).expect("warm solve")
        });

        // Streaming vs single-frame batches: the metric the streaming
        // mode exists for is *time to first report* — with one shard the
        // batch solves module by module, so the first `report` frame lands
        // roughly batch_len× earlier than the whole-batch `solved` frame.
        // Measured manually (the adaptive `bench` helper can only time a
        // whole closure, and the stream must be drained between requests).
        let spec = ClusterSpec {
            name: "bstream".into(),
            members: if small { 4 } else { 6 },
            shared_functions: 6,
            member_functions: 3,
            seed: 2024,
            call_depth: 4,
        };
        let batch: Vec<ModuleJob> = ClusterGen::generate_cluster(&spec)
            .iter()
            .map(|(name, m)| {
                let (mir, _) = compile(m).expect("cluster member compiles");
                ModuleJob {
                    name: name.clone(),
                    program: retypd_congen::generate(&mir),
                }
            })
            .collect();
        client.solve_batch(&batch).expect("warm the batch corpus");
        let stream_iters = 30u64;
        let mut first_ns = Vec::new();
        let mut done_ns = Vec::new();
        let mut batch_ns = Vec::new();
        for _ in 0..stream_iters {
            let t0 = Instant::now();
            // The constructor returns once the first frame arrived.
            let mut stream = client
                .solve_batch_stream(&batch, None)
                .expect("stream admitted");
            first_ns.push(t0.elapsed().as_nanos() as u64);
            while let Some(item) = stream.next() {
                item.expect("streamed report");
            }
            assert!(stream.summary().is_some(), "terminal batch_done");
            done_ns.push(t0.elapsed().as_nanos() as u64);

            let t1 = Instant::now();
            client.solve_batch(&batch).expect("single-frame batch");
            batch_ns.push(t1.elapsed().as_nanos() as u64);
        }
        let median = |v: &mut Vec<u64>| {
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        for (name, v) in [
            ("serve/stream_first_report", &mut first_ns),
            ("serve/stream_batch_done", &mut done_ns),
            ("serve/batch_solved_v1", &mut batch_ns),
        ] {
            let ns = median(v);
            eprintln!("{name:<40} {ns:>14.0} ns/iter (n = {stream_iters})");
            records.push(Record {
                name: name.to_owned(),
                ns_per_iter: ns,
                iters: stream_iters,
            });
        }

        drop(client);
        handle.shutdown();

        // Restart-to-first-solve: bind a server on a *primed* persist
        // dir, connect, and solve one module — the full warm-restart
        // latency a client observes (bind + store replay + cache-hit
        // solve + round trip). Measured manually: each cycle needs its
        // own server lifecycle, which the adaptive helper can't time.
        let persist_root = store_dir.join("serve-restart");
        std::fs::create_dir_all(&persist_root).expect("create serve persist dir");
        let restart_config = || ServeConfig {
            addr: "127.0.0.1:0".into(),
            shards: 1,
            persist_dir: Some(persist_root.clone()),
            ..ServeConfig::default()
        };
        {
            let handle = start(restart_config()).expect("prime server");
            let mut c = Client::connect(handle.addr()).expect("prime client");
            c.solve_module(&job).expect("prime solve");
            handle.shutdown();
        }
        let cycles = if small { 5 } else { 15 };
        let mut cycle_ns = Vec::with_capacity(cycles);
        for _ in 0..cycles {
            let t0 = Instant::now();
            let handle = start(restart_config()).expect("restart server");
            let mut c = Client::connect(handle.addr()).expect("connect");
            let report = c.solve_module(&job).expect("first solve after restart");
            cycle_ns.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(report.name, job.name);
            handle.shutdown();
        }
        let ns = median(&mut cycle_ns);
        eprintln!("{:<40} {ns:>14.0} ns/iter (n = {cycles})", "serve/restart_first_solve");
        records.push(Record {
            name: "serve/restart_first_solve".to_owned(),
            ns_per_iter: ns,
            iters: cycles as u64,
        });
    }

    // --- gateway (routed vs direct warm solves, hedge-off vs hedge-on tail) ---
    {
        use retypd_driver::ModuleJob;
        use retypd_gateway::{route_key, server, BackendSpec, GatewayConfig, Ring};
        use retypd_serve::{start, Client, ServeConfig};

        let module = ProgramGenerator::new(GenConfig {
            seed: 7,
            functions: 10,
            ..GenConfig::default()
        })
        .generate();
        let (mir, _) = compile(&module).unwrap();
        let job = ModuleJob {
            name: "bench".into(),
            program: retypd_congen::generate(&mir),
        };
        let backend = |solve_delay: Option<Duration>| {
            start(ServeConfig {
                addr: "127.0.0.1:0".into(),
                shards: 1,
                solve_delay,
                ..ServeConfig::default()
            })
            .expect("loopback backend")
        };

        // Routing overhead: one warm solve direct to a backend versus the
        // same solve through a gateway in front of two backends. Rotated:
        // the committed figure is their ratio.
        let direct = backend(None);
        let backends = [backend(None), backend(None)];
        let gw = server::start(
            GatewayConfig::default(),
            backends.iter().map(|h| BackendSpec::External { addr: h.addr() }).collect(),
        )
        .expect("gateway starts");
        let mut direct_client = Client::connect(direct.addr()).expect("direct client");
        let mut gw_client = Client::connect(gw.addr()).expect("gateway client");
        direct_client.solve_module(&job).expect("cold prime direct");
        gw_client.solve_module(&job).expect("cold prime routed");
        bench_rotated(
            &mut records,
            vec![
                (
                    "gateway/direct_solve_warm".to_owned(),
                    Box::new(|| {
                        direct_client.solve_module(&job).expect("warm direct");
                    }),
                ),
                (
                    "gateway/routed_solve_warm".to_owned(),
                    Box::new(|| {
                        gw_client.solve_module(&job).expect("warm routed");
                    }),
                ),
            ],
        );
        drop(direct_client);
        drop(gw_client);
        gw.shutdown();
        for b in backends {
            b.shutdown();
        }
        direct.shutdown();

        // Tail latency under a slow primary: the module's owner slot gets
        // a pure-latency stall, so hedge-off pays the stall on every solve
        // while hedge-on races the other (warm) backend after 2ms. The
        // stall is injected before the solve, so bytes are unaffected.
        let stall = Duration::from_millis(25);
        let key = route_key(lattice.fingerprint(), job.fingerprint());
        let slow_slot = Ring::build(&[0, 1]).route(key).expect("two-slot ring");
        let slow_pair = || {
            let handles: Vec<_> = (0..2)
                .map(|slot| backend((slot == slow_slot).then_some(stall)))
                .collect();
            // Prime both backends so the race is cache-hit vs cache-hit.
            for h in &handles {
                Client::connect(h.addr())
                    .expect("prime client")
                    .solve_module(&job)
                    .expect("prime solve");
            }
            handles
        };
        let hedge_iters = if small { 10u64 } else { 30 };
        let mut tail_ns: Vec<Vec<u64>> = Vec::new();
        for hedge_after in [None, Some(Duration::from_millis(2))] {
            let handles = slow_pair();
            let gw = server::start(
                GatewayConfig {
                    hedge_after,
                    ..GatewayConfig::default()
                },
                handles.iter().map(|h| BackendSpec::External { addr: h.addr() }).collect(),
            )
            .expect("gateway starts");
            let mut client = Client::connect(gw.addr()).expect("gateway client");
            client.solve_module(&job).expect("prime routed path");
            let mut ns = Vec::with_capacity(hedge_iters as usize);
            for _ in 0..hedge_iters {
                let t0 = Instant::now();
                client.solve_module(&job).expect("solve under stall");
                ns.push(t0.elapsed().as_nanos() as u64);
            }
            tail_ns.push(ns);
            drop(client);
            gw.shutdown();
            for h in handles {
                h.shutdown();
            }
        }
        let median_u64 = |v: &mut Vec<u64>| {
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        for (name, v) in ["gateway/hedge_off_slow", "gateway/hedge_on_slow"]
            .iter()
            .copied()
            .zip(tail_ns.iter_mut())
        {
            let ns = median_u64(v);
            eprintln!("{name:<40} {ns:>14.0} ns/iter (n = {hedge_iters})");
            records.push(Record {
                name: name.to_owned(),
                ns_per_iter: ns,
                iters: hedge_iters,
            });
        }
    }

    // --- telemetry (record-path overhead + spans-on vs spans-off pipeline) ---
    let telem_insts;
    {
        use retypd_telemetry::{Counter, Histogram};
        let hist = Histogram::new();
        let counter = Counter::new();
        let mut x = 0x243f6a8885a308d3u64;
        // One histogram record + one counter inc per iteration, the value
        // cycling across buckets the way real latencies do.
        bench(&mut records, "telemetry/record_overhead", || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            hist.record(x >> 40);
            counter.inc();
        });
        // A disarmed span guard: the price every instrumented hot path
        // pays when tracing is off (one relaxed atomic load).
        let _ = bench(&mut records, "telemetry/span_disabled", || {
            retypd_telemetry::span("bench.noop")
        });

        // The full cold pipeline with spans off versus on. The arms run
        // rotated because the claim is their *ratio*: telemetry off must
        // not tax the pipeline (the acceptance bound), and on-cost stays
        // visible in the committed JSON.
        let module = ProgramGenerator::new(GenConfig {
            seed: 7,
            functions: *sizes.last().expect("at least one size"),
            ..GenConfig::default()
        })
        .generate();
        let (mir, _) = compile(&module).unwrap();
        let program = retypd_congen::generate(&mir);
        telem_insts = mir.instruction_count();
        bench_rotated(
            &mut records,
            vec![
                (
                    format!("telemetry/pipeline_{telem_insts}_spans_off"),
                    Box::new(|| {
                        retypd_telemetry::set_spans_enabled(false);
                        std::hint::black_box(
                            AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1))
                                .solve(&program),
                        );
                    }),
                ),
                (
                    format!("telemetry/pipeline_{telem_insts}_spans_on"),
                    Box::new(|| {
                        retypd_telemetry::set_spans_enabled(true);
                        std::hint::black_box(
                            AnalysisDriver::with_config(&lattice, DriverConfig::with_workers(1))
                                .solve(&program),
                        );
                        retypd_telemetry::set_spans_enabled(false);
                    }),
                ),
            ],
        );
        // Don't let the spans-on arm's ring contents outlive the bench.
        let _ = retypd_telemetry::drain_spans();
    }

    // --- emit JSON (hand-rolled: the vendored serde shim has no serializer) ---
    let mut json = String::from("{\n  \"benches\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{}\n",
            r.name,
            r.ns_per_iter,
            r.iters,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    // --- persist section: replay throughput, append overhead, restart
    // latency — the headline numbers for the warm-restart claim. ---
    let lookup = |name: String| {
        records
            .iter()
            .find(|r| r.name == name)
            .map_or(0.0, |r| r.ns_per_iter)
    };
    let (replayed_entries, replay_ns) = persist_probe.expect("persist probe ran");
    let cold = lookup(format!("driver/pipeline_{last_insts}_cold"));
    let cold_persist = lookup(format!("driver/pipeline_{last_insts}_cold_persist"));
    let replayed_start = lookup(format!("driver/pipeline_{last_insts}_coldstart_replayed"));
    let warm = lookup(format!("driver/pipeline_{last_insts}_warm"));
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"persist\": {{\"replayed_entries\": {replayed_entries}, \
         \"replay_ns\": {replay_ns}, \"replay_schemes_per_s\": {:.0}, \
         \"append_overhead_ratio\": {:.4}, \"coldstart_replayed_ns\": {replayed_start:.1}, \
         \"coldstart_speedup_vs_cold\": {:.2}, \"coldstart_vs_warm\": {:.2}, \
         \"restart_first_solve_ns\": {:.1}}},\n",
        replayed_entries as f64 / (replay_ns as f64 / 1e9).max(1e-9),
        cold_persist / cold.max(1.0),
        cold / replayed_start.max(1.0),
        replayed_start / warm.max(1.0),
        lookup("serve/restart_first_solve".to_owned()),
    ));
    // --- gateway section: routing overhead over a direct backend and the
    // hedge's tail-latency rescue under a slow primary. ---
    let direct_warm = lookup("gateway/direct_solve_warm".to_owned());
    let routed_warm = lookup("gateway/routed_solve_warm".to_owned());
    let hedge_off = lookup("gateway/hedge_off_slow".to_owned());
    let hedge_on = lookup("gateway/hedge_on_slow".to_owned());
    json.push_str(&format!(
        "  \"gateway\": {{\"direct_solve_warm_ns\": {direct_warm:.1}, \
         \"routed_solve_warm_ns\": {routed_warm:.1}, \"routing_overhead_ratio\": {:.4}, \
         \"hedge_off_slow_ns\": {hedge_off:.1}, \"hedge_on_slow_ns\": {hedge_on:.1}, \
         \"hedge_tail_speedup\": {:.2}}},\n",
        routed_warm / direct_warm.max(1.0),
        hedge_off / hedge_on.max(1.0),
    ));
    // --- telemetry section: the record-path cost and the spans-off vs
    // spans-on pipeline ratio (off must stay within the acceptance bound
    // of the untelemetried baseline). ---
    let spans_off = lookup(format!("telemetry/pipeline_{telem_insts}_spans_off"));
    let spans_on = lookup(format!("telemetry/pipeline_{telem_insts}_spans_on"));
    json.push_str(&format!(
        "  \"telemetry\": {{\"record_overhead_ns\": {:.1}, \"span_disabled_ns\": {:.1}, \
         \"pipeline_spans_off_ns\": {spans_off:.1}, \"pipeline_spans_on_ns\": {spans_on:.1}, \
         \"spans_on_overhead_ratio\": {:.4}}},\n",
        lookup("telemetry/record_overhead".to_owned()),
        lookup("telemetry/span_disabled".to_owned()),
        spans_on / spans_off.max(1.0),
    ));
    json.push_str("  \"stats\": [\n");
    for (i, (name, s)) in stats_records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"graph_nodes\": {}, \"graph_edges\": {}, \
             \"quotient_nodes\": {}, \"sketch_states\": {}, \"constraints\": {}, \
             \"solve_ns\": {}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
            s.graph_nodes,
            s.graph_edges,
            s.quotient_nodes,
            s.sketch_states,
            s.constraints,
            s.solve_ns,
            s.cache_hits,
            s.cache_misses,
            if i + 1 == stats_records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let _ = std::fs::remove_dir_all(&store_dir);
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write bench JSON");
            eprintln!("wrote {p}");
        }
        None => {
            std::io::stdout().write_all(json.as_bytes()).expect("stdout");
        }
    }
}
