//! Shape inference: the quotient graph of Theorem 3.1 / Algorithm E.1.
//!
//! The *shape quotient* determines, for every base variable, the regular
//! language of capability words it supports — `C ⊢ VAR τ.w` iff the word `w`
//! is readable from `τ`'s equivalence class. It is computed in almost-linear
//! time in the style of Steensgaard's pointer analysis:
//!
//! 1. one node per derived type variable (and prefix) mentioned in `C`, with
//!    a labeled edge `n(α) →ℓ n(α.ℓ)`;
//! 2. quotient by `∼`, where `n(α) ∼ n(β)` for each constraint `α ⊑ β`, and
//!    congruence propagates: if `n(α) ∼ n(β)` with edges `n(α) →ℓ n(α′)`,
//!    `n(β) →ℓ′ n(β′)` and `ℓ = ℓ′` (or `ℓ = .load`, `ℓ′ = .store` — the
//!    S-POINTER clause), then `n(α′) ∼ n(β′)`.
//!
//! The resulting classes are also the skeleton from which sketches are
//! built (Appendix E): the language of a sketch is the set of words readable
//! from a class, and [`crate::sketch`] decorates those states with lattice
//! marks.

use std::collections::{BTreeMap, VecDeque};

use crate::constraint::ConstraintSet;
use crate::dtv::{BaseVar, DerivedVar};
use crate::fxhash::FxHashMap;
use crate::label::Label;

/// An equivalence class of the shape quotient.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId(pub u32);

/// The shape quotient of a constraint set (Algorithm E.1's `G/∼`).
///
/// Like [`crate::graph::ConstraintGraph`], nodes are interned structurally:
/// a node is a base variable or a `(parent node, label)` child, so lookups
/// walk one small hash per label instead of hashing whole derived-variable
/// paths. (Node ids here are pre-quotient; classes come from the union-find
/// overlay.)
#[derive(Clone, Debug)]
pub struct ShapeQuotient {
    parent: Vec<u32>,
    /// Edge maps per node; only the representative's map is authoritative.
    edges: Vec<BTreeMap<Label, u32>>,
    /// The derived variable of each (pre-quotient) node.
    dtvs: Vec<DerivedVar>,
    /// Structural interner roots: base variable → node.
    base_nodes: FxHashMap<BaseVar, u32>,
    /// Structural interner steps: `(parent node, label)` → child node.
    child_nodes: FxHashMap<(u32, Label), u32>,
}

impl ShapeQuotient {
    /// Builds the quotient for a constraint set.
    pub fn build(cs: &ConstraintSet) -> ShapeQuotient {
        let mut q = ShapeQuotient {
            parent: Vec::new(),
            edges: Vec::new(),
            dtvs: Vec::new(),
            base_nodes: FxHashMap::default(),
            child_nodes: FxHashMap::default(),
        };
        let mut pending: VecDeque<(u32, u32)> = VecDeque::new();
        for c in cs.subtypes() {
            let a = q.ensure(&c.lhs);
            let b = q.ensure(&c.rhs);
            pending.push_back((a, b));
        }
        for v in cs.var_decls() {
            q.ensure(v);
        }
        for a in cs.addsubs() {
            q.ensure(&a.x);
            q.ensure(&a.y);
            q.ensure(&a.z);
        }
        while let Some((a, b)) = pending.pop_front() {
            q.union(a, b, &mut pending);
        }
        // Same-class load/store congruence for classes never unioned.
        let roots: Vec<u32> = (0..q.parent.len() as u32)
            .filter(|&i| q.find(i) == i)
            .collect();
        let mut more: VecDeque<(u32, u32)> = VecDeque::new();
        for r in roots {
            if let (Some(&l), Some(&s)) = (
                q.edges[r as usize].get(&Label::Load),
                q.edges[r as usize].get(&Label::Store),
            ) {
                more.push_back((l, s));
            }
        }
        while let Some((a, b)) = more.pop_front() {
            q.union(a, b, &mut more);
        }
        q
    }

    fn ensure(&mut self, dv: &DerivedVar) -> u32 {
        let mut n = self.ensure_base(dv.base());
        for &l in dv.path() {
            n = self.ensure_child(n, l);
        }
        n
    }

    fn ensure_base(&mut self, base: BaseVar) -> u32 {
        if let Some(&n) = self.base_nodes.get(&base) {
            return n;
        }
        let n = self.new_node(DerivedVar::new(base));
        self.base_nodes.insert(base, n);
        n
    }

    fn ensure_child(&mut self, p: u32, l: Label) -> u32 {
        if let Some(&n) = self.child_nodes.get(&(p, l)) {
            return n;
        }
        let dv = self.dtvs[p as usize].clone().push(l);
        let n = self.new_node(dv);
        self.child_nodes.insert((p, l), n);
        let pr = self.find(p);
        // A merged class may already carry an ℓ-edge; keep the existing
        // target and remember that `n` aliases it.
        if let Some(&t) = self.edges[pr as usize].get(&l) {
            self.parent[n as usize] = self.find(t);
        } else {
            self.edges[pr as usize].insert(l, n);
        }
        n
    }

    fn new_node(&mut self, dv: DerivedVar) -> u32 {
        let n = self.parent.len() as u32;
        self.parent.push(n);
        self.edges.push(BTreeMap::new());
        self.dtvs.push(dv);
        n
    }

    /// The (pre-quotient) node of a materialized derived variable, found by
    /// walking the structural interner.
    fn node_of_ro(&self, dv: &DerivedVar) -> Option<u32> {
        let mut n = *self.base_nodes.get(&dv.base())?;
        for &l in dv.path() {
            n = *self.child_nodes.get(&(n, l))?;
        }
        Some(n)
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn find_ro(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32, pending: &mut VecDeque<(u32, u32)>) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            self.check_pointer_congruence(ra, pending);
            return;
        }
        let (keep, drop) = if self.edges[ra as usize].len() >= self.edges[rb as usize].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[drop as usize] = keep;
        let dropped = std::mem::take(&mut self.edges[drop as usize]);
        for (l, t) in dropped {
            if let Some(&t2) = self.edges[keep as usize].get(&l) {
                if self.find(t) != self.find(t2) {
                    pending.push_back((t, t2));
                }
            } else {
                self.edges[keep as usize].insert(l, t);
            }
        }
        self.check_pointer_congruence(keep, pending);
    }

    /// The S-POINTER congruence clause: if a class has both `.load` and
    /// `.store` edges, their targets share a class (the pointee).
    fn check_pointer_congruence(&mut self, r: u32, pending: &mut VecDeque<(u32, u32)>) {
        if let (Some(&l), Some(&s)) = (
            self.edges[r as usize].get(&Label::Load),
            self.edges[r as usize].get(&Label::Store),
        ) {
            if self.find(l) != self.find(s) {
                pending.push_back((l, s));
            }
        }
    }

    /// The class of a materialized derived variable, if any.
    pub fn class_of(&self, dv: &DerivedVar) -> Option<ClassId> {
        self.node_of_ro(dv).map(|n| ClassId(self.find_ro(n)))
    }

    /// Walks the label word from `base`'s class, returning the class
    /// reached — this accepts exactly the capability language of `base`.
    pub fn walk(&self, base: BaseVar, word: &[Label]) -> Option<ClassId> {
        let mut cur = ClassId(self.find_ro(*self.base_nodes.get(&base)?));
        for &l in word {
            cur = self.step(cur, l)?;
        }
        Some(cur)
    }

    /// Follows one label from a class.
    pub fn step(&self, c: ClassId, l: Label) -> Option<ClassId> {
        let r = self.find_ro(c.0);
        self.edges[r as usize]
            .get(&l)
            .map(|&t| ClassId(self.find_ro(t)))
    }

    /// True if `C ⊢ VAR dv` (the word is in the capability language).
    pub fn has_var(&self, dv: &DerivedVar) -> bool {
        self.walk(dv.base(), dv.path()).is_some()
    }

    /// The outgoing labeled edges of a class (to representative classes).
    pub fn successors(&self, c: ClassId) -> Vec<(Label, ClassId)> {
        let r = self.find_ro(c.0);
        self.edges[r as usize]
            .iter()
            .map(|(&l, &t)| (l, ClassId(self.find_ro(t))))
            .collect()
    }

    /// Merges the classes of two derived variables (used when applying
    /// additive constraints, Algorithm E.1's `APPLYADDSUB` loop).
    pub fn unify(&mut self, a: &DerivedVar, b: &DerivedVar) {
        let na = self.ensure(a);
        let nb = self.ensure(b);
        let mut pending = VecDeque::new();
        pending.push_back((na, nb));
        while let Some((x, y)) = pending.pop_front() {
            self.union(x, y, &mut pending);
        }
    }

    /// All materialized derived variables in a class.
    pub fn members(&self, c: ClassId) -> Vec<DerivedVar> {
        let r = self.find_ro(c.0);
        (0..self.parent.len())
            .filter(|&n| self.find_ro(n as u32) == r)
            .map(|n| self.dtvs[n].clone())
            .collect()
    }

    /// Iterates over all representative classes.
    pub fn classes(&self) -> Vec<ClassId> {
        (0..self.parent.len() as u32)
            .filter(|&i| self.find_ro(i) == i)
            .map(ClassId)
            .collect()
    }

    /// Number of nodes (pre-quotient).
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_constraint_set, parse_derived_var};

    fn quotient(src: &str) -> ShapeQuotient {
        ShapeQuotient::build(&parse_constraint_set(src).unwrap())
    }

    fn hv(q: &ShapeQuotient, s: &str) -> bool {
        q.has_var(&parse_derived_var(s).unwrap())
    }

    #[test]
    fn capabilities_flow_across_subtyping() {
        let q = quotient("a <= b; b.load.σ32@0 <= c");
        assert!(hv(&q, "a.load"));
        assert!(hv(&q, "a.load.σ32@0"));
        assert!(hv(&q, "b.load.σ32@0"));
        assert!(!hv(&q, "a.store"));
        assert!(!hv(&q, "c.load"));
    }

    #[test]
    fn pointer_congruence_merges_pointee() {
        // Both load and store mentioned: the pointee classes merge, and
        // values stored become comparable with values loaded.
        let q = quotient("x <= p.store.σ32@0; p.load.σ32@0 <= y");
        assert!(hv(&q, "p.load.σ32@0"));
        assert!(hv(&q, "p.store.σ32@0"));
        let x = q
            .class_of(&parse_derived_var("x").unwrap())
            .expect("x has a class");
        let y = q
            .class_of(&parse_derived_var("y").unwrap())
            .expect("y has a class");
        assert_eq!(x, y);
    }

    #[test]
    fn sibling_capabilities_after_pointer_merge() {
        // Both c.load.load and c.store.store exist, so the S-POINTER
        // congruence makes the mixed words part of the language.
        let q = quotient("a <= c.load.load; a <= c.store.store");
        assert!(hv(&q, "c.store.load"));
        assert!(hv(&q, "c.load.store"));
    }

    #[test]
    fn no_phantom_store_capability() {
        let q = quotient("a <= c.load.load");
        assert!(hv(&q, "c.load.load"));
        assert!(!hv(&q, "c.store"));
        assert!(!hv(&q, "c.store.load"));
    }

    #[test]
    fn recursion_yields_cyclic_classes() {
        let q = quotient("t.load.σ32@0 <= t; t.load.σ32@4 <= int");
        assert!(hv(&q, "t.load.σ32@0.load.σ32@0.load.σ32@4"));
        let t = q.class_of(&parse_derived_var("t").unwrap()).unwrap();
        let deep = q
            .walk(
                parse_derived_var("t").unwrap().base(),
                parse_derived_var("t.load.σ32@0").unwrap().path(),
            )
            .unwrap();
        assert_eq!(t, deep);
    }

    #[test]
    fn unify_merges() {
        let mut q = quotient("a.load <= x; b.store <= y");
        let a = parse_derived_var("a").unwrap();
        let b = parse_derived_var("b").unwrap();
        q.unify(&a, &b);
        assert!(hv(&q, "a.store"));
        assert!(hv(&q, "b.load"));
    }

    #[test]
    fn quotient_symmetrizes_subtyping() {
        // The shape quotient deliberately symmetrizes ⊑ (Theorem 3.1): both
        // supertypes of p.load land in one class. Only the *shape* is
        // unified; subtype direction is retained by the saturation solver.
        let q = quotient("p.load <= a; p.load <= b");
        let a = q.class_of(&parse_derived_var("a").unwrap()).unwrap();
        let b = q.class_of(&parse_derived_var("b").unwrap()).unwrap();
        let pl = q.class_of(&parse_derived_var("p.load").unwrap()).unwrap();
        assert_eq!(pl, a);
        assert_eq!(pl, b);
        assert_eq!(a, b);
    }
}
