//! Pre-computed polymorphic type schemes for external (libc-like)
//! functions (§2.2, Appendix A.4).
//!
//! These are the "procedure summaries" inserted at external callsites:
//! `malloc : ∀τ. size_t → τ*`, `free : ∀τ. τ* → void`,
//! `memcpy : ∀α,β. (β ⊑ α) ⇒ (α* × β* × size_t) → α*`, and the
//! semantically tagged POSIX handles (`close` takes a `#FileDescriptor`
//! and returns a `#SuccessZ`, as in Figure 2).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use retypd_core::parse::parse_constraint_set;
use retypd_core::{BaseVar, Loc, Symbol, TypeScheme};

/// An external function model: parameter locations plus a type scheme.
#[derive(Clone, Debug)]
pub struct ExternalModel {
    /// Formal-in locations (stack offsets for cdecl).
    pub ins: Vec<Loc>,
    /// True if the function returns a value in `eax`.
    pub has_out: bool,
    /// The polymorphic scheme instantiated per callsite.
    pub scheme: TypeScheme,
}

fn model(name: &str, arity: usize, has_out: bool, constraints: &str) -> (Symbol, ExternalModel) {
    let cs = parse_constraint_set(constraints)
        .unwrap_or_else(|e| panic!("bad stdlib scheme for {name}: {e}"));
    // Existentials: every non-constant variable other than the subject.
    let subject = BaseVar::var(name);
    let mut existentials = BTreeSet::new();
    for b in cs.base_vars() {
        if !b.is_const() && b != subject {
            existentials.insert(b.name());
        }
    }
    (
        Symbol::intern(name),
        ExternalModel {
            ins: (0..arity).map(|i| Loc::Stack(4 * i as u32)).collect(),
            has_out,
            scheme: TypeScheme::new(subject, existentials, cs),
        },
    )
}

/// The standard external-function models keyed by name.
pub fn standard_externals() -> BTreeMap<Symbol, ExternalModel> {
    let mut m = BTreeMap::new();
    for (name, arity, has_out, cs) in [
        // ∀τ. size_t → τ* : the return is a fresh variable per callsite.
        ("malloc", 1, true, "malloc.in_stack0 <= size_t"),
        // ∀τ. τ* → void.
        ("free", 1, false, "VAR free.in_stack0.load"),
        // ∀α,β. (β ⊑ α) ⇒ (α*, β*, size_t) → α*.
        (
            "memcpy",
            3,
            true,
            "
            memcpy.in_stack0 <= d
            memcpy.in_stack4 <= s
            s.load <= d.store
            memcpy.in_stack8 <= size_t
            memcpy.in_stack0 <= memcpy.out_eax
            ",
        ),
        (
            "close",
            1,
            true,
            "
            close.in_stack0 <= #FileDescriptor
            close.in_stack0 <= int
            int <= close.out_eax
            #SuccessZ <= close.out_eax
            ",
        ),
        (
            "open",
            2,
            true,
            "
            open.in_stack0.load.σ8@0 <= char
            #FileDescriptor <= open.out_eax
            int <= open.out_eax
            ",
        ),
        (
            "fopen",
            2,
            true,
            "
            fopen.in_stack0.load.σ8@0 <= char
            fopen.in_stack4.load.σ8@0 <= char
            FILE <= fopen.out_eax.load
            fopen.out_eax.load <= FILE
            ",
        ),
        (
            "fclose",
            1,
            true,
            "
            fclose.in_stack0.load <= FILE
            FILE <= fclose.in_stack0.load
            int <= fclose.out_eax
            ",
        ),
        (
            "strlen",
            1,
            true,
            "
            strlen.in_stack0.load.σ8@0 <= char
            size_t <= strlen.out_eax
            ",
        ),
        (
            "signal",
            2,
            true,
            "
            signal.in_stack0 <= #SignalNumber
            signal.in_stack0 <= int
            ",
        ),
        (
            "socket",
            3,
            true,
            "
            socket.in_stack0 <= int
            socket.in_stack4 <= int
            socket.in_stack8 <= int
            SOCKET <= socket.out_eax
            ",
        ),
        ("getpid", 0, true, "pid_t <= getpid.out_eax"),
        (
            "time",
            1,
            true,
            "
            time_t <= time.out_eax
            time_t <= time.in_stack0.store.σ32@0
            ",
        ),
        (
            "puts",
            1,
            true,
            "
            puts.in_stack0.load.σ8@0 <= char
            int <= puts.out_eax
            ",
        ),
        (
            "abs",
            1,
            true,
            "
            abs.in_stack0 <= int
            int <= abs.out_eax
            ",
        ),
    ] {
        let (k, v) = model(name, arity, has_out, cs);
        m.insert(k, v);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn externals_build() {
        let m = standard_externals();
        assert!(m.len() >= 10);
        let malloc = &m[&Symbol::intern("malloc")];
        assert_eq!(malloc.ins.len(), 1);
        assert!(malloc.has_out);
        // The malloc scheme says nothing about the return type: that is the
        // polymorphism (each callsite gets a fresh out variable).
        let printed = malloc.scheme.to_string();
        assert!(printed.contains("size_t"), "{printed}");
        assert!(!printed.contains("out_eax"), "{printed}");
    }

    #[test]
    fn close_matches_figure2() {
        let m = standard_externals();
        let close = &m[&Symbol::intern("close")];
        let printed = close.scheme.to_string();
        assert!(printed.contains("#FileDescriptor"), "{printed}");
        assert!(printed.contains("#SuccessZ"), "{printed}");
    }

    #[test]
    fn instantiation_is_per_callsite() {
        let m = standard_externals();
        let malloc = &m[&Symbol::intern("malloc")];
        let keep = BTreeSet::new();
        let (a, sa) = malloc.scheme.instantiate("c1", &keep);
        let (_, sb) = malloc.scheme.instantiate("c2", &keep);
        assert_ne!(sa, sb);
        assert!(a.to_string().contains("malloc@c1.in_stack0"));
    }
}
