//! Property tests: the textual parsers on the wire attack surface never
//! panic, and everything they accept survives a display/reparse round
//! trip (the contract the fuzz harness in `crates/fuzz` also drives).
//!
//! Strings are drawn from a pool biased toward the grammar's own
//! vocabulary (labels, sigils, separators, σ/⊑ unicode) so the generator
//! actually reaches the deep branches — pure uniform bytes almost never
//! parse past the first token.

use proptest::prelude::*;
use retypd_core::fuzzing::{
    check_constraint_set, check_derived_var, check_lattice_descriptor,
};

/// Characters the generator draws from: grammar vocabulary, structural
/// punctuation, digits, whitespace, and a little unicode junk.
const POOL: &[char] = &[
    'a', 'b', 'f', 'x', 'y', 'z', 'q', 't', '0', '1', '2', '4', '9', '.', '@', '#', '$', '_',
    '(', ')', ';', ',', '<', '=', ':', ' ', '\t', '\n', '{', '}', '/', '-', '+', 'σ', '⊑',
    '⊤', '⊥', 'é', '😀', '\u{0}',
];

/// Grammar fragments spliced between random characters so composite
/// productions (labels, keywords, relations) appear often.
const FRAGMENTS: &[&str] = &[
    "load", "store", "in_stack0", "out_eax", "σ32@4", "s16@-2", "VAR ", "Add(", "Sub(", "<=",
    "<:", "⊑", "int", "uint", "#SuccessZ", "$elem", "lattice", "lattice x { a b ; a <= b }",
    "//", "in_", "out_", "σ", "@",
];

fn assemble(picks: &[(u8, u8)]) -> String {
    let mut s = String::new();
    for &(kind, idx) in picks {
        if kind % 3 == 0 {
            s.push_str(FRAGMENTS[idx as usize % FRAGMENTS.len()]);
        } else {
            s.push(POOL[idx as usize % POOL.len()]);
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn parsers_never_panic_and_accepted_input_round_trips(
        picks in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..40)
    ) {
        let input = assemble(&picks);
        // Each checker returns whether the input parsed and panics on a
        // contract violation (parser panic or display/reparse divergence).
        check_derived_var(&input);
        check_constraint_set(&input);
        check_lattice_descriptor(&input);
    }

    #[test]
    fn lattice_descriptor_bodies_never_panic(
        picks in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..24)
    ) {
        // Force the `lattice … { … }` prefix so the body grammar (element
        // list, `;`, edge list) is what gets stressed.
        let body = assemble(&picks);
        check_lattice_descriptor(&format!("lattice fz {{ {body} }}"));
        check_lattice_descriptor(&format!("lattice {body}"));
    }
}

/// The generator occasionally produces every valid form; make sure the
/// deep valid paths are definitely covered at least once.
#[test]
fn canonical_forms_are_in_reach() {
    assert!(check_derived_var("f.in_stack0.load.σ32@4"));
    assert!(check_constraint_set("VAR q.load\nq <= p; Add(a, b; c)"));
    assert!(check_lattice_descriptor("lattice l { a b c ; a <= b, b <= c }"));
}
