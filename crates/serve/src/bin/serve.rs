//! The `retypd-serve` server binary.
//!
//! ```text
//! cargo run --release -p retypd-serve --bin serve -- --addr 127.0.0.1:7411 \
//!     --shards 4 --workers 1 --queue-depth 256 --cache-capacity 4096 \
//!     --read-timeout 30
//! ```
//!
//! Prints `listening on <addr>` to stderr once the socket is bound, then
//! blocks until a `shutdown` wire message drains it (CI starts this in the
//! background and runs `loadgen` against it).

use std::path::PathBuf;

use retypd_serve::{start, ServeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--shards N] [--workers N] \
         [--queue-depth N] [--cache-capacity N|unbounded] [--read-timeout SECS|0] \
         [--max-frames-per-conn N|0] [--max-bytes-per-conn N|0] [--persist-dir PATH] \
         [--metrics-text FILE] [--trace-dir DIR]"
    );
    std::process::exit(2);
}

fn parse_num(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().as_deref().map(str::parse) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("{flag} expects a non-negative integer");
            usage();
        }
    }
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7411".into(),
        ..ServeConfig::default()
    };
    let mut metrics_text: Option<PathBuf> = None;
    let mut trace_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => config.addr = args.next().unwrap_or_else(|| usage()),
            "--shards" => config.shards = parse_num(&mut args, "--shards").max(1),
            "--workers" => {
                config.workers_per_shard = parse_num(&mut args, "--workers").max(1)
            }
            "--queue-depth" => {
                config.queue_depth = parse_num(&mut args, "--queue-depth").max(1)
            }
            "--cache-capacity" => {
                let v = args.next().unwrap_or_else(|| usage());
                config.cache_capacity = if v == "unbounded" {
                    None
                } else {
                    match v.parse() {
                        Ok(n) => Some(n),
                        Err(_) => usage(),
                    }
                };
            }
            "--read-timeout" => {
                // 0 disables the timeout (a connection may then idle
                // forever between requests; drains still proceed).
                let secs = parse_num(&mut args, "--read-timeout");
                config.read_timeout = if secs == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs(secs as u64))
                };
            }
            "--max-frames-per-conn" => {
                // 0 disables the per-connection frame budget.
                let n = parse_num(&mut args, "--max-frames-per-conn");
                config.max_frames_per_conn = if n == 0 { None } else { Some(n as u64) };
            }
            "--max-bytes-per-conn" => {
                // 0 disables the per-connection byte budget.
                let n = parse_num(&mut args, "--max-bytes-per-conn");
                config.max_bytes_per_conn = if n == 0 { None } else { Some(n as u64) };
            }
            "--persist-dir" => {
                // Each shard keeps a `shard-<N>.store` scheme log here;
                // relaunching with the same dir (and shard count) starts
                // every shard with a warm cache.
                config.persist_dir =
                    Some(args.next().unwrap_or_else(|| usage()).into());
            }
            "--metrics-text" => {
                metrics_text = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--trace-dir" => {
                trace_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            _ => usage(),
        }
    }
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create trace dir {}: {e}", dir.display());
            std::process::exit(1);
        }
        // Spans stay a single relaxed atomic load when this flag is
        // absent; flipping it here is the only place the binary pays for
        // tracing.
        retypd_telemetry::set_spans_enabled(true);
    }
    match start(config.clone()) {
        Ok(handle) => {
            eprintln!(
                "retypd-serve listening on {} ({} shards, {} workers/shard, queue depth {}, \
                 cache capacity {:?}, read timeout {:?}, persist dir {:?})",
                handle.addr(),
                config.shards,
                config.workers_per_shard,
                config.queue_depth,
                config.cache_capacity,
                config.read_timeout,
                config.persist_dir
            );
            // `join` consumes the handle; the observer is what lets us
            // render one final exposition after the drain.
            let observer = handle.metrics_observer();
            // `join` returns only after the drain joined every connection
            // handler, so the `shutting_down` ack and all final response
            // frames are already handed to the kernel — no exit dwell.
            handle.join();
            if let Some(path) = &metrics_text {
                match std::fs::write(path, observer.text()) {
                    Ok(()) => eprintln!("metrics exposition written to {}", path.display()),
                    Err(e) => eprintln!("failed to write {}: {e}", path.display()),
                }
            }
            if let Some(dir) = &trace_dir {
                let (events, dropped) = retypd_telemetry::drain_spans();
                let path = dir.join("serve-trace.jsonl");
                match std::fs::write(&path, retypd_telemetry::chrome_trace_json(&events)) {
                    Ok(()) => eprintln!(
                        "trace written to {} ({} spans, {dropped} dropped)",
                        path.display(),
                        events.len()
                    ),
                    Err(e) => eprintln!("failed to write {}: {e}", path.display()),
                }
            }
            eprintln!("retypd-serve drained, exiting");
        }
        Err(e) => {
            eprintln!("failed to bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    }
}
