//! Repo-local concurrency hygiene lints.
//!
//! A deliberately small line/token scanner — no rustc plugin, no syn —
//! enforcing the conventions the model-checking work in `vendor/loom`
//! depends on. Rules (kebab-case slugs are what waivers name):
//!
//! * **`no-raw-atomics`** — `std::sync::atomic` may not appear in code
//!   outside the facade (`retypd_core::sync` / `loom::sync::atomic`).
//!   Raw atomics are invisible to the model checker: a schedule explored
//!   by `conc-check` simply cannot see them interleave.
//! * **`no-raw-thread`** — `std::thread` may not appear in code outside
//!   the facade, with one structural exception that must be waived
//!   explicitly: `std::thread::scope` (borrowed spawns have no modeled
//!   double).
//! * **`safety-comment`** — every `unsafe` keyword in code must be
//!   preceded by a `// SAFETY:` comment (same line, or in the comment
//!   block immediately above, attributes skipped).
//! * **`seqcst-justified`** — `Ordering::SeqCst` in code requires a
//!   `// WHY-SEQCST:` comment on the same line or the line above. The
//!   ordering policy in `retypd_core::sync` says when SeqCst is the
//!   right call; this rule makes each such call auditable.
//! * **`no-fixed-ports`** — test code may not hard-code a TCP port
//!   (`"127.0.0.1:4455"`-style literals). Fixed ports collide under
//!   parallel test runs; bind port 0 and read back the address.
//!
//! Any finding can be waived in place:
//!
//! ```text
//! // retypd-lint: allow(<rule>) <reason>
//! ```
//!
//! on the flagged line or the line immediately above. The reason is
//! mandatory — a bare waiver is itself a violation.
//!
//! Scanned scope: `crates/*/src` and `crates/*/tests`. `vendor/` is the
//! facade's implementation and is exempt by construction; so is
//! `target/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in (as handed to the scanner).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule slug (`no-raw-atomics`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Every rule slug the scanner knows, in report order.
pub const RULES: [&str; 5] = [
    "no-raw-atomics",
    "no-raw-thread",
    "safety-comment",
    "seqcst-justified",
    "no-fixed-ports",
];

/// Strips the line-comment tail (`// …`) off a source line, returning
/// the code part. Not string-literal aware by design: a `//` inside a
/// string truncates the scan of that line, which can only *miss* a
/// banned token inside a string — where none of the rules apply anyway.
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// The comment tail of a line (`// …` onward), if any.
fn comment_part(line: &str) -> Option<&str> {
    line.find("//").map(|i| &line[i..])
}

/// Parses a waiver comment, returning the waived rule slug and whether a
/// reason follows. Format: `// retypd-lint: allow(<rule>) <reason>`.
fn parse_waiver(line: &str) -> Option<(&str, bool)> {
    let comment = comment_part(line)?;
    let rest = comment.split("retypd-lint:").nth(1)?.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    let reason = rest[close + 1..].trim();
    Some((rule, !reason.is_empty()))
}

/// Is `rule` waived for line `idx` (0-based)? A waiver counts on the
/// flagged line itself or the line immediately above.
fn waived(lines: &[&str], idx: usize, rule: &str) -> bool {
    let mut candidates = vec![lines[idx]];
    if idx > 0 {
        candidates.push(lines[idx - 1]);
    }
    candidates.iter().any(|l| {
        parse_waiver(l).is_some_and(|(r, has_reason)| r == rule && has_reason)
    })
}

/// Does the word `unsafe` appear in `code` as its own token (not as part
/// of an identifier like `unsafe_code` or `AssertUnwindSafe`)?
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let before_ok = start == 0 || {
            let c = bytes[start - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let after_ok = end == bytes.len() || {
            let c = bytes[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Is there a `// SAFETY:` comment covering line `idx`? Same line, or in
/// the contiguous comment/attribute block immediately above.
fn safety_covered(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("SAFETY:") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") {
            if t.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        if t.starts_with("#[") || t.starts_with("#![") {
            continue; // attributes may sit between the comment and the item
        }
        return false;
    }
    false
}

/// Does `code` hard-code a TCP port in a string literal? Looks for
/// `"<anything>:<digits>"` where the digits form a nonzero port and the
/// prefix looks like a host (dotted quad or `localhost`/`[::1]`).
fn fixed_port(code: &str) -> Option<u32> {
    // Walk string literals only: ports in code (array sizes etc.) are
    // not addresses.
    let mut rest = code;
    while let Some(open) = rest.find('"') {
        let tail = &rest[open + 1..];
        let Some(close) = tail.find('"') else { return None };
        let lit = &tail[..close];
        if let Some(colon) = lit.rfind(':') {
            let (host, port) = (&lit[..colon], &lit[colon + 1..]);
            let host_like = host == "localhost"
                || host == "[::1]"
                || host.chars().all(|c| c.is_ascii_digit() || c == '.')
                    && host.contains('.');
            if host_like && !port.is_empty() && port.chars().all(|c| c.is_ascii_digit()) {
                if let Ok(p) = port.parse::<u32>() {
                    if p != 0 {
                        return Some(p);
                    }
                }
            }
        }
        rest = &tail[close + 1..];
    }
    None
}

/// Scans one file's contents. `in_tests` marks a file under a `tests/`
/// directory (integration tests), where `no-fixed-ports` applies from
/// line one; in other files it applies from the first `#[cfg(test)]` on.
pub fn scan_source(file: &Path, source: &str, in_tests: bool) -> Vec<Violation> {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    let mut in_test_region = in_tests;
    let mut push = |idx: usize, rule: &'static str, message: String| {
        out.push(Violation {
            file: file.to_path_buf(),
            line: idx + 1,
            rule,
            message,
        });
    };
    for (idx, raw) in lines.iter().enumerate() {
        let code = code_part(raw);
        if raw.contains("#[cfg(test)]") {
            in_test_region = true;
        }
        if code.contains("std::sync::atomic") && !waived(&lines, idx, "no-raw-atomics") {
            push(
                idx,
                "no-raw-atomics",
                "raw std::sync::atomic outside the facade; use retypd_core::sync::atomic \
                 (or waive: // retypd-lint: allow(no-raw-atomics) <reason>)"
                    .into(),
            );
        }
        if code.contains("std::thread") && !waived(&lines, idx, "no-raw-thread") {
            push(
                idx,
                "no-raw-thread",
                "raw std::thread outside the facade; use retypd_core::sync::thread \
                 (or waive: // retypd-lint: allow(no-raw-thread) <reason>)"
                    .into(),
            );
        }
        if has_unsafe_token(code)
            && !safety_covered(&lines, idx)
            && !waived(&lines, idx, "safety-comment")
        {
            push(
                idx,
                "safety-comment",
                "unsafe without a preceding // SAFETY: comment".into(),
            );
        }
        if code.contains("SeqCst")
            && !raw.contains("WHY-SEQCST:")
            && !(idx > 0 && lines[idx - 1].contains("WHY-SEQCST:"))
            && !waived(&lines, idx, "seqcst-justified")
        {
            push(
                idx,
                "seqcst-justified",
                "Ordering::SeqCst without a // WHY-SEQCST: justification; \
                 prefer the weakest ordering the protocol needs (see retypd_core::sync docs)"
                    .into(),
            );
        }
        if in_test_region {
            if let Some(port) = fixed_port(code) {
                if !waived(&lines, idx, "no-fixed-ports") {
                    push(
                        idx,
                        "no-fixed-ports",
                        format!(
                            "test hard-codes TCP port {port}; bind port 0 and read back \
                             the address"
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Scans a file on disk (see [`scan_source`]); unreadable files are
/// reported as a violation rather than silently skipped.
pub fn scan_file(file: &Path) -> Vec<Violation> {
    let in_tests = file
        .components()
        .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches");
    match std::fs::read_to_string(file) {
        Ok(src) => scan_source(file, &src, in_tests),
        Err(e) => vec![Violation {
            file: file.to_path_buf(),
            line: 0,
            rule: "io",
            message: format!("unreadable: {e}"),
        }],
    }
}

/// Recursively collects the `.rs` files the lint covers under `root`:
/// everything beneath `crates/`, skipping `vendor/` (the facade's
/// implementation — modeled, not routed), `target/`, and the lint crate
/// itself (its rule messages, unit fixtures, and this very docstring
/// spell out the banned tokens; a scanner that is not string-literal
/// aware cannot tell those mentions from uses).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut stack = vec![crates.clone()];
    let lint_crate = crates.join("lint");
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                if name == "target" || path == lint_crate {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Vec<Violation> {
    let mut out: Vec<Violation> = workspace_files(root)
        .iter()
        .flat_map(|f| scan_file(f))
        .collect();
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<Violation> {
        scan_source(Path::new("x.rs"), src, false)
    }

    #[test]
    fn raw_atomics_are_flagged_and_waivable() {
        let v = scan("use std::sync::atomic::AtomicU64;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-raw-atomics");
        assert_eq!(v[0].line, 1);

        let ok = scan(
            "// retypd-lint: allow(no-raw-atomics) allocator cannot use the facade\n\
             use std::sync::atomic::AtomicU64;\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn waiver_without_a_reason_does_not_count() {
        let v = scan(
            "// retypd-lint: allow(no-raw-atomics)\n\
             use std::sync::atomic::AtomicU64;\n",
        );
        assert_eq!(v.len(), 1, "bare waiver must not suppress");
    }

    #[test]
    fn comments_and_docs_are_not_code() {
        let v = scan(
            "//! talks about std::sync::atomic and std::thread\n\
             // std::thread::spawn in prose\n\
             let x = 1; // std::sync::atomic mention\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_thread_is_flagged() {
        let v = scan("    std::thread::spawn(|| {});\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-raw-thread");
    }

    #[test]
    fn unsafe_needs_a_safety_comment() {
        let v = scan("    unsafe { *p }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "safety-comment");

        assert!(scan("    // SAFETY: p is valid for reads\n    unsafe { *p }\n").is_empty());
        assert!(scan(
            "    // SAFETY: p is valid for reads\n    #[inline]\n    unsafe fn f() {}\n"
        )
        .is_empty());
        // Identifiers containing "unsafe" are not the keyword.
        assert!(scan("#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn seqcst_needs_why() {
        let v = scan("    x.store(1, Ordering::SeqCst);\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "seqcst-justified");

        let justified = concat!(
            "    // WHY-SEQCST: total order with flag y observed by the drain loop\n",
            "    x.store(1, Ordering::SeqCst);\n"
        );
        assert!(scan(justified).is_empty());
    }

    #[test]
    fn fixed_ports_only_in_test_code() {
        // Outside a test region: no finding.
        assert!(scan("let a = \"127.0.0.1:9999\";\n").is_empty());
        // Inside #[cfg(test)]: flagged.
        let v = scan("#[cfg(test)]\nmod tests {\n    let a = \"127.0.0.1:9999\";\n}\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-fixed-ports");
        // Port 0 is the sanctioned pattern.
        assert!(scan("#[cfg(test)]\nlet a = \"127.0.0.1:0\";\n").is_empty());
        // Files under tests/ are test code from line one.
        let v = scan_source(Path::new("tests/t.rs"), "let a = \"localhost:8080\";\n", true);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn non_address_strings_are_not_ports() {
        assert!(scan("#[cfg(test)]\nlet a = \"shard-0.store:1\";\n").is_empty());
        assert!(scan("#[cfg(test)]\nlet t = \"12:30\";\n").is_empty());
    }
}
