//! # retypd-bench
//!
//! The benchmark suite definition and one binary per table/figure of the
//! paper's evaluation (§6). Run e.g.:
//!
//! ```text
//! cargo run --release -p retypd-bench --bin fig07_suite
//! cargo run --release -p retypd-bench --bin fig08_distance
//! cargo run --release -p retypd-bench --bin fig09_conservativeness
//! cargo run --release -p retypd-bench --bin fig10_clusters
//! cargo run --release -p retypd-bench --bin fig11_time_scaling
//! cargo run --release -p retypd-bench --bin fig12_memory
//! cargo run --release -p retypd-bench --bin tbl_const_recall
//! cargo run --release -p retypd-bench --bin fig02_close_last
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use retypd_core::graph::ConstraintGraph;
use retypd_core::parse::parse_constraint_set;
use retypd_core::saturation::saturate;
use retypd_core::shapes::ShapeQuotient;
use retypd_core::{BaseVar, ConstraintSet, Lattice, Sketch};
use retypd_minic::ast::Module;
use retypd_minic::genprog::{ClusterSpec, GenConfig, ProgramGenerator};

/// The Figure 2 constraint set used by the `core_solver` benches: the
/// recursive linked-list walker with a `#FileDescriptor` handle field.
pub fn figure2_constraints() -> ConstraintSet {
    parse_constraint_set(
        "
        f.in_stack0 <= t
        t.load.σ32@0 <= t
        t.load.σ32@4 <= #FileDescriptor
        t.load.σ32@4 <= int
        int <= f.out_eax
        #SuccessZ <= f.out_eax
        ",
    )
    .expect("figure2 constraints parse")
}

/// A value-flow chain of `n` links with pointer stores/loads every third
/// link — the `saturate_chain_*` workload shared by the criterion bench,
/// the JSON emitter, and the determinism regression tests. Keeping one
/// definition here means the committed `BENCH_*.json` trajectories and the
/// pinned graph counts always measure the same program.
pub fn chain_constraints(n: usize) -> ConstraintSet {
    let mut cs = ConstraintSet::new();
    for i in 0..n {
        cs.add_sub_str(&format!("v{i}"), &format!("v{}", i + 1));
        if i % 3 == 0 {
            cs.add_sub_str(&format!("p{i}.load.σ32@0"), &format!("v{i}"));
            cs.add_sub_str(&format!("v{i}"), &format!("p{}.store.σ32@0", i + 1));
        }
    }
    cs.add_sub_str("v0", "int");
    cs
}

/// A constant-heavy recursive-struct constraint set: many sketch states ×
/// many type constants, the workload dominated by `Sketch::infer`'s bound
/// queries (the batched-sweep target; see `sketches/sketch_infer_wide` in
/// the committed `BENCH_*.json` trajectories).
pub fn wide_bounds_constraints() -> ConstraintSet {
    let mut src = String::from("f.in_stack0 <= t; t.load.σ32@0 <= t;\n");
    let consts = [
        "int", "uint", "int32", "uint32", "int16", "uint16", "int8", "uint8",
        "#FileDescriptor", "#SuccessZ", "#SignalNumber", "pid_t", "bool_t",
        "time_t", "size_t", "uintptr_t", "char", "float", "double",
    ];
    for (i, k) in consts.iter().enumerate() {
        src.push_str(&format!("t.load.σ32@{} <= {k};\n", 4 * (i + 1)));
        src.push_str(&format!("{k} <= f.out_eax;\n"));
        src.push_str(&format!("g{i} <= t.load.σ32@{};\n", 4 * (i + 1)));
    }
    parse_constraint_set(&src).expect("wide bounds constraints parse")
}

/// Infers `f`'s sketch from a textual constraint set (the `sketches`
/// bench fixture builder).
pub fn sketch_for(src: &str, lattice: &Lattice) -> Sketch {
    let cs = parse_constraint_set(src).expect("sketch fixture parses");
    let mut g = ConstraintGraph::build(&cs);
    saturate(&mut g);
    let q = ShapeQuotient::build(&cs);
    let consts: Vec<BaseVar> = cs.base_vars().into_iter().filter(|b| b.is_const()).collect();
    Sketch::infer(BaseVar::var("f"), &g, &q, lattice, &consts).expect("f has a class")
}

/// A named standalone benchmark (the Figure 7 singles).
pub struct SingleSpec {
    /// Benchmark name (mirrors the flavor of the paper's suite).
    pub name: &'static str,
    /// Short description.
    pub description: &'static str,
    /// Generator function count (drives instruction count).
    pub functions: usize,
    /// Seed.
    pub seed: u64,
}

/// The standalone members of the benchmark suite, smallest to largest
/// (Figure 7's single binaries, scaled to harness-friendly sizes).
pub const SINGLES: &[SingleSpec] = &[
    SingleSpec { name: "libidn-like", description: "domain name translator", functions: 14, seed: 101 },
    SingleSpec { name: "tutorial-like", description: "graphics tutorial", functions: 18, seed: 102 },
    SingleSpec { name: "zlib-like", description: "compression library", functions: 28, seed: 103 },
    SingleSpec { name: "ogg-like", description: "multimedia library", functions: 40, seed: 104 },
    SingleSpec { name: "distributor-like", description: "network repeater", functions: 44, seed: 105 },
    SingleSpec { name: "libbz2-like", description: "BZIP library", functions: 74, seed: 106 },
    SingleSpec { name: "glut-like", description: "GL utility library", functions: 80, seed: 107 },
    SingleSpec { name: "pngtest-like", description: "PNG test driver", functions: 84, seed: 108 },
    SingleSpec { name: "freeglut-like", description: "GL utility, newer", functions: 154, seed: 109 },
    SingleSpec { name: "miranda-like", description: "IRC client", functions: 200, seed: 110 },
    SingleSpec { name: "xmail-like", description: "mail server", functions: 274, seed: 111 },
    SingleSpec { name: "yasm-like", description: "modular assembler", functions: 380, seed: 112 },
];

/// The clusters of Figure 10, scaled down.
pub fn clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec { name: "freeglut-demos".into(), members: 3, shared_functions: 4, member_functions: 3, seed: 201, call_depth: 0 },
        ClusterSpec { name: "coreutils".into(), members: 12, shared_functions: 16, member_functions: 4, seed: 202, call_depth: 0 },
        ClusterSpec { name: "vpx-d".into(), members: 4, shared_functions: 30, member_functions: 8, seed: 203, call_depth: 0 },
        ClusterSpec { name: "vpx-e".into(), members: 4, shared_functions: 40, member_functions: 10, seed: 204, call_depth: 0 },
        ClusterSpec { name: "sphinx2".into(), members: 4, shared_functions: 44, member_functions: 10, seed: 205, call_depth: 0 },
        ClusterSpec { name: "putty".into(), members: 4, shared_functions: 48, member_functions: 12, seed: 206, call_depth: 0 },
    ]
}

/// Generates a single benchmark module.
pub fn generate_single(spec: &SingleSpec) -> Module {
    ProgramGenerator::new(GenConfig {
        seed: spec.seed,
        functions: spec.functions,
        structs: 3 + (spec.functions / 25),
        ..GenConfig::default()
    })
    .generate()
}

/// Generates a module of approximately `target` instructions (for the
/// scaling sweeps of Figures 11–12).
pub fn generate_sized(target_insts: usize, seed: u64) -> Module {
    // ~55 machine instructions per generated function on average.
    let functions = (target_insts / 55).max(2);
    ProgramGenerator::new(GenConfig {
        seed,
        functions,
        structs: 3 + functions / 30,
        ..GenConfig::default()
    })
    .generate()
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", 100.0 * x)
}
