//! Routing topology must be invisible in results: a client solving
//! through a gateway over 1, 2, or 4 backends — including a membership
//! change mid-run — gets byte-identical reports to the sequential
//! solver. Also pins the gateway's warm affinity (a re-submitted batch
//! is all cache hits), its stats/metrics aggregation, and the hedged
//! request's exactly-one-reply contract under an artificially slow
//! backend.

use std::time::{Duration, Instant};

use retypd_core::{Lattice, Solver};
use retypd_driver::ModuleJob;
use retypd_gateway::{server, BackendSpec, GatewayConfig, GatewayHandle};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::wire::WireReport;
use retypd_serve::{start as serve_start, Client, ServeConfig, ServerHandle};

fn corpus() -> Vec<ModuleJob> {
    let spec = ClusterSpec {
        name: "gw".into(),
        members: 4,
        shared_functions: 5,
        member_functions: 3,
        seed: 929,
        call_depth: 5,
    };
    ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("cluster member compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect()
}

fn sequential(jobs: &[ModuleJob]) -> Vec<String> {
    let lattice = Lattice::c_types();
    jobs.iter()
        .map(|j| {
            WireReport::from_result(&j.name, &Solver::new(&lattice).infer(&j.program))
                .canonical_text()
        })
        .collect()
}

fn backend(solve_delay: Option<Duration>) -> ServerHandle {
    serve_start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        shards: 2,
        workers_per_shard: 1,
        queue_depth: 64,
        cache_capacity: Some(1024),
        solve_delay,
        ..ServeConfig::default()
    })
    .expect("bind backend")
}

/// A gateway fronting `n` fresh in-process backends. Fast health sweeps
/// keep membership-change tests quick.
fn gateway(backends: &[&ServerHandle], hedge_after: Option<Duration>) -> GatewayHandle {
    server::start(
        GatewayConfig {
            health_interval: Duration::from_millis(50),
            hedge_after,
            ..GatewayConfig::default()
        },
        backends
            .iter()
            .map(|h| BackendSpec::External { addr: h.addr() })
            .collect(),
    )
    .expect("gateway starts")
}

#[test]
fn results_are_bit_identical_to_sequential_at_1_2_and_4_backends() {
    let jobs = corpus();
    let want = sequential(&jobs);
    for n in [1usize, 2, 4] {
        let backends: Vec<ServerHandle> = (0..n).map(|_| backend(None)).collect();
        let gw = gateway(&backends.iter().collect::<Vec<_>>(), None);
        let mut client = Client::connect(gw.addr()).expect("connect");

        // Single-frame batch.
        let reports = client.solve_batch(&jobs).expect("batch through gateway");
        assert_eq!(reports.len(), jobs.len());
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.name, jobs[i].name, "submission order preserved");
            assert_eq!(
                r.canonical_text(),
                want[i],
                "{} diverged through {n} backend(s)",
                jobs[i].name
            );
        }

        // Streaming batch: every index exactly once, same bytes.
        let mut stream = client
            .solve_batch_stream(&jobs, None)
            .expect("stream admitted");
        let mut by_index: Vec<Option<WireReport>> = vec![None; jobs.len()];
        while let Some(item) = stream.next() {
            let (index, report) = item.expect("no per-module failures");
            assert!(
                by_index[index].replace(report).is_none(),
                "index {index} reported twice — duplicate reply leaked"
            );
        }
        let summary = stream.summary().expect("terminal batch_done").clone();
        assert_eq!(summary.modules, jobs.len());
        assert_eq!(summary.delivered, jobs.len());
        assert!(summary.errors.is_empty(), "{:?}", summary.errors);
        for (i, slot) in by_index.iter().enumerate() {
            assert_eq!(
                slot.as_ref().expect("every module reported").canonical_text(),
                want[i]
            );
        }
        gw.shutdown();
        for b in backends {
            b.shutdown();
        }
    }
}

#[test]
fn warm_affinity_makes_resubmissions_pure_cache_hits() {
    let jobs = corpus();
    let backends: Vec<ServerHandle> = (0..3).map(|_| backend(None)).collect();
    let gw = gateway(&backends.iter().collect::<Vec<_>>(), None);
    let mut client = Client::connect(gw.addr()).expect("connect");

    let cold = client.solve_batch(&jobs).expect("cold batch");
    let warm = client.solve_batch(&jobs).expect("warm batch");
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.canonical_text(), w.canonical_text(), "{}", c.name);
        assert_eq!(
            w.stats.cache_misses, 0,
            "{}: consistent hashing must re-route to the warm backend",
            w.name
        );
    }

    // Aggregated stats see the whole fleet: every solved job is counted
    // and the shard list spans all backends' shards.
    let stats = client.stats().expect("aggregated stats");
    let total_jobs: u64 = stats.shards.iter().map(|s| s.jobs).sum();
    assert_eq!(total_jobs, 2 * jobs.len() as u64);
    assert_eq!(stats.shards.len(), 3 * 2, "3 backends x 2 shards each");

    // Merged metrics carry both gateway and backend instruments.
    let metrics = client.metrics().expect("merged metrics");
    let get = |name: &str| {
        metrics
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(get("gateway.requests") > 0, "gateway's own counters present");
    assert_eq!(
        get("serve.admitted_jobs"),
        2 * jobs.len() as u64,
        "backend registries merged (summed across the fleet)"
    );
    gw.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn membership_change_mid_run_reshards_deterministically() {
    let jobs = corpus();
    let want = sequential(&jobs);
    let backends: Vec<ServerHandle> = (0..3).map(|_| backend(None)).collect();
    let gw = gateway(&backends.iter().collect::<Vec<_>>(), None);
    let mut client = Client::connect(gw.addr()).expect("connect");

    let cold = client.solve_batch(&jobs).expect("cold batch");
    for (i, r) in cold.iter().enumerate() {
        assert_eq!(r.canonical_text(), want[i]);
    }
    let epoch0 = gw.ring_epoch();

    // Evict slot 1: the supervisor notices the (operator-injected) death,
    // re-shards, and — the backend actually still being alive — re-adds
    // it on a later sweep, re-sharding back to the original map.
    gw.kill_backend(1);
    assert!(gw.ring_epoch() > epoch0, "eviction must re-shard");
    let during = client.solve_batch(&jobs).expect("batch during eviction");
    for (i, r) in during.iter().enumerate() {
        assert_eq!(
            r.canonical_text(),
            want[i],
            "{} diverged while slot 1 was out",
            jobs[i].name
        );
    }

    // Wait for the re-add.
    let deadline = Instant::now() + Duration::from_secs(10);
    while gw.healthy_slots().len() < 3 {
        assert!(Instant::now() < deadline, "slot 1 never re-added");
        retypd_core::sync::thread::sleep(Duration::from_millis(20));
    }
    let after = client.solve_batch(&jobs).expect("batch after re-add");
    for (i, r) in after.iter().enumerate() {
        assert_eq!(r.canonical_text(), want[i]);
    }
    // The restored ring is the original map: modules go back to their
    // warm owners, so the post-re-add batch is all cache hits.
    for r in &after {
        assert_eq!(
            r.stats.cache_misses, 0,
            "{}: re-add must restore the original routing",
            r.name
        );
    }
    gw.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn dead_backend_is_evicted_and_requests_reroute() {
    let jobs = corpus();
    let want = sequential(&jobs);
    let backends: Vec<ServerHandle> = (0..2).map(|_| backend(None)).collect();
    let survivor_addr = backends[0].addr();
    let gw = gateway(&backends.iter().collect::<Vec<_>>(), None);
    let mut client = Client::connect(gw.addr()).expect("connect");
    let _ = client.solve_batch(&jobs).expect("cold batch");

    // Actually stop backend 1's server; its port goes dead.
    let mut backends = backends;
    backends.remove(1).shutdown();
    let batch = client.solve_batch(&jobs).expect("re-routed batch");
    for (i, r) in batch.iter().enumerate() {
        assert_eq!(
            r.canonical_text(),
            want[i],
            "{} diverged after backend death",
            jobs[i].name
        );
    }
    // Only the survivor remains routed.
    let deadline = Instant::now() + Duration::from_secs(10);
    while gw.healthy_slots() != vec![0] {
        assert!(Instant::now() < deadline, "dead backend never evicted");
        retypd_core::sync::thread::sleep(Duration::from_millis(20));
    }
    let again = client.solve_batch(&jobs).expect("all traffic on survivor");
    for (i, r) in again.iter().enumerate() {
        assert_eq!(r.canonical_text(), want[i]);
    }
    assert_eq!(survivor_addr, backends[0].addr());
    gw.shutdown();
    backends.remove(0).shutdown();
}

#[test]
fn hedged_request_beats_a_slow_backend_with_exactly_one_reply() {
    let jobs = corpus();
    let want = sequential(&jobs);

    // Decide which slot the probe module routes to on a 2-slot ring,
    // then make exactly that slot's backend artificially slow. The
    // stall is pure latency (injected before the solve), so the hedge
    // race cannot change bytes — only who delivers them.
    let probe = &jobs[0];
    let key = retypd_gateway::route_key(
        Lattice::c_types().fingerprint(),
        probe.fingerprint(),
    );
    let slow_slot = retypd_gateway::Ring::build(&[0, 1])
        .route(key)
        .expect("two-slot ring routes");
    let stall = Duration::from_secs(8);
    let handles: Vec<ServerHandle> = (0..2)
        .map(|slot| backend((slot == slow_slot).then_some(stall)))
        .collect();
    let gw = gateway(
        &handles.iter().collect::<Vec<_>>(),
        Some(Duration::from_millis(150)),
    );
    let mut client = Client::connect(gw.addr()).expect("connect");

    let started = Instant::now();
    let report = client.solve_module(probe).expect("hedged solve");
    let took = started.elapsed();
    assert_eq!(report.canonical_text(), want[0], "hedged result identical");
    assert!(
        took < stall,
        "hedge never fired: the solve took the slow backend's full {stall:?}"
    );

    // Exactly one reply crossed the gateway: the same connection must
    // stay perfectly framed for the next request.
    let stats = client.stats().expect("connection still framed");
    assert!(stats.accepted >= 1);

    let snap = gw.metrics_snapshot();
    let get = |name: &str| {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert!(get("gateway.hedge_fired") >= 1, "hedge timer must have fired");
    assert!(get("gateway.hedge_won") >= 1, "fast backend must have won");
    gw.shutdown();
    for h in handles {
        h.shutdown();
    }
}

#[test]
fn gateway_refuses_cleanly_while_draining() {
    let jobs = corpus();
    let b = backend(None);
    let gw = gateway(&[&b], None);
    let mut client = Client::connect(gw.addr()).expect("connect");
    let _ = client.solve_module(&jobs[0]).expect("pre-drain solve");
    client.shutdown().expect("drain acknowledged");
    gw.join();
    b.shutdown();
}
