//! A SecondWrite/REWARDS-style unification baseline (§6.5, §7).
//!
//! Every subtype constraint is treated as a type *equation*, callsites are
//! linked monomorphically (no per-callsite instantiation), and each
//! equivalence class receives a single scalar type — the meet of every
//! constant in the class, falling back to the join on conflict. This is
//! exactly the design the paper argues against: the §2.1/§2.5 idioms
//! (semi-syntactic constants, false register parameters, stack-slot
//! aliasing through merged classes) make unrelated types collapse, which
//! is visible in the evaluation as lost conservativeness and larger
//! distances.

use std::collections::BTreeSet;

use retypd_core::shapes::ShapeQuotient;
use retypd_core::{
    BaseVar, ConstraintSet, DerivedVar, Label, Lattice, Program, Symbol,
};

use crate::common::{InfTy, InferredFunc, InferredProgram};

/// Runs the unification baseline on a constraint program.
pub fn infer_unification(program: &Program, lattice: &Lattice) -> InferredProgram {
    // One monolithic constraint set: all bodies, external schemes expanded
    // ONCE per callee (not per callsite), and every callsite variable
    // unified with the callee itself.
    let mut cs = ConstraintSet::new();
    let mut seen_ext: BTreeSet<Symbol> = BTreeSet::new();
    for proc in &program.procs {
        cs.extend(&proc.constraints);
        for site in &proc.callsites {
            let callee_name = match site.callee {
                retypd_core::CallTarget::Internal(i) => program.procs[i].name,
                retypd_core::CallTarget::External(n) => n,
            };
            let tagged = DerivedVar::var(&format!("{callee_name}@{}", site.tag));
            let own = DerivedVar::new(BaseVar::Var(callee_name));
            // Monomorphic: both directions — a unification.
            cs.add_sub(tagged.clone(), own.clone());
            cs.add_sub(own, tagged);
            if let retypd_core::CallTarget::External(n) = site.callee {
                if seen_ext.insert(n) {
                    if let Some(scheme) = program.externals.get(&n) {
                        // Expand the external's constraints monomorphically.
                        let (inst, _) = scheme.instantiate("mono", &program.globals);
                        cs.extend(&inst);
                        cs.add_sub(
                            DerivedVar::var(&format!("{n}@mono")),
                            DerivedVar::new(BaseVar::Var(n)),
                        );
                        cs.add_sub(
                            DerivedVar::new(BaseVar::Var(n)),
                            DerivedVar::var(&format!("{n}@mono")),
                        );
                    }
                }
            }
        }
    }
    // The shape quotient *is* unification: classes merge on every
    // constraint, and the pointer congruence merges pointees. Additive
    // constraints are applied with their Figure 13 integral feedback.
    let cs = retypd_core::addsub::augment_with_addsubs(&cs, lattice);
    let quotient = ShapeQuotient::build(&cs);

    // Single type per class: the meet of constants in the class.
    let class_type = |class: retypd_core::shapes::ClassId| -> Option<String> {
        let mut m = lattice.top();
        let mut found = false;
        for d in quotient.members(class) {
            if d.is_empty() && d.base().is_const() {
                if let Some(e) = lattice.element_sym(d.base().name()) {
                    m = lattice.meet(m, e);
                    found = true;
                }
            }
        }
        if found {
            Some(lattice.name(m).to_owned())
        } else {
            None
        }
    };

    let mut out = InferredProgram::new();
    for proc in &program.procs {
        let mut inferred = InferredFunc::default();
        let pv = BaseVar::Var(proc.name);
        // Parameter locations: every in_L capability of the proc class.
        if let Some(root) = quotient.walk(pv, &[]) {
            for (l, c) in quotient.successors(root) {
                match l {
                    Label::In(loc) => {
                        inferred
                            .params
                            .insert(loc, class_to_infty(&quotient, c, lattice, &class_type, 0));
                        let has_load = quotient.step(c, Label::Load).is_some();
                        let has_store = quotient.step(c, Label::Store).is_some();
                        if has_load || has_store {
                            // Unification cannot distinguish read/write: a
                            // merged pointee always looks written.
                            inferred.const_params.insert(loc, has_load && !has_store);
                        }
                    }
                    Label::Out(_) => {
                        inferred.ret =
                            Some(class_to_infty(&quotient, c, lattice, &class_type, 0));
                    }
                    _ => {}
                }
            }
        }
        out.insert(proc.name, inferred);
    }
    out
}

fn class_to_infty(
    quotient: &ShapeQuotient,
    class: retypd_core::shapes::ClassId,
    lattice: &Lattice,
    class_type: &dyn Fn(retypd_core::shapes::ClassId) -> Option<String>,
    depth: u32,
) -> InfTy {
    if depth > 4 {
        return InfTy::Unknown;
    }
    let pointee = quotient
        .step(class, Label::Load)
        .or_else(|| quotient.step(class, Label::Store));
    if let Some(p) = pointee {
        // Structured pointee?
        let fields: Vec<(i32, InfTy)> = quotient
            .successors(p)
            .into_iter()
            .filter_map(|(l, c)| match l {
                Label::Sigma { offset, .. } => Some((
                    offset,
                    class_to_infty(quotient, c, lattice, class_type, depth + 1),
                )),
                _ => None,
            })
            .collect();
        if fields.is_empty() {
            return InfTy::Ptr(Box::new(class_to_infty(
                quotient,
                p,
                lattice,
                class_type,
                depth + 1,
            )));
        }
        if fields.len() == 1 && fields[0].0 == 0 {
            return InfTy::Ptr(Box::new(fields.into_iter().next().expect("one field").1));
        }
        return InfTy::Ptr(Box::new(InfTy::Struct(fields)));
    }
    match class_type(class) {
        Some(name) => InfTy::Scalar {
            mark: name.clone(),
            lower: name.clone(),
            upper: name,
        },
        None => {
            let _ = lattice;
            InfTy::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retypd_core::parse::parse_constraint_set;
    use retypd_core::{CallTarget, Callsite, Loc, Procedure};

    fn proc(name: &str, cs: &str, callsites: Vec<Callsite>) -> Procedure {
        Procedure {
            name: Symbol::intern(name),
            constraints: parse_constraint_set(cs).unwrap(),
            callsites,
        }
    }

    #[test]
    fn overunification_merges_polymorphic_callsites() {
        // id is used at an int callsite and a pointer callsite; unification
        // merges them (the failure mode Retypd avoids).
        let lattice = Lattice::c_types();
        let mut program = Program::new();
        program.add_proc(proc(
            "id",
            "id.in_stack0 <= v; v <= id.out_eax",
            vec![],
        ));
        program.add_proc(proc(
            "caller",
            "
                int32 <= id@caller_a.in_stack0
                p.load.σ32@0 <= float32
                p <= id@caller_b.in_stack0
                id@caller_b.out_eax <= q
                caller.in_stack0 <= p
            ",
            vec![
                Callsite {
                    callee: CallTarget::Internal(0),
                    tag: "caller_a".into(),
                },
                Callsite {
                    callee: CallTarget::Internal(0),
                    tag: "caller_b".into(),
                },
            ],
        ));
        let result = infer_unification(&program, &lattice);
        // The caller's pointer parameter exists; through over-unification
        // its pointee has absorbed int32 (conflicting with float32 → ⊥-ish
        // or int-ish display, depending on meet order). The key observable:
        // id's input class merged with BOTH callsites.
        let id = &result[&Symbol::intern("id")];
        assert!(id.params.contains_key(&Loc::Stack(0)));
        let ty = &id.params[&Loc::Stack(0)];
        // Unification forced a single answer that is a pointer (the two
        // callsites merged), demonstrating the §2.5 failure mode.
        assert!(matches!(ty, InfTy::Ptr(_)), "{ty}");
    }

    #[test]
    fn simple_int_param() {
        let lattice = Lattice::c_types();
        let mut program = Program::new();
        program.add_proc(proc("f", "f.in_stack0 <= int32", vec![]));
        let result = infer_unification(&program, &lattice);
        let f = &result[&Symbol::intern("f")];
        match &f.params[&Loc::Stack(0)] {
            InfTy::Scalar { upper, .. } => assert_eq!(upper, "int32"),
            other => panic!("{other}"),
        }
    }
}
