//! # retypd-baselines
//!
//! The comparison algorithms of §6.5, reimplemented from their published
//! descriptions:
//!
//! * [`unification`] — a SecondWrite/REWARDS-style *unification* algorithm:
//!   every value assignment merges types, callsites are monomorphic, and a
//!   single type is produced per variable. Sensitive to the §2 idioms by
//!   construction (over-unification).
//! * [`tie`] — a TIE-style *subtype-bounds* algorithm: upper and lower
//!   lattice bounds per variable, but monomorphic callsites and no
//!   recursive types (bounded-depth structural results).
//!
//! Both consume the *same* constraint programs produced by
//! [`retypd_congen`], so comparisons isolate the type-system differences
//! the paper credits (polymorphism, subtyping, recursive sketches).
//!
//! The shared [`common::InfTy`] tree is the output format scored by the
//! evaluation crate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod tie;
pub mod unification;

pub use common::{InfTy, InferredFunc, InferredProgram};
pub use tie::infer_tie;
pub use unification::infer_unification;
