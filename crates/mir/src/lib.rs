//! # retypd-mir
//!
//! The machine-code substrate for the Retypd reproduction: a 32-bit
//! x86-like instruction set, program representation, and the program
//! analyses the paper's constraint generator relies on (§4.1):
//!
//! * control-flow graphs per procedure ([`mod@cfg`]),
//! * stack-pointer tracking — "affine relations between the stack and frame
//!   pointers" (§6.1) — and activation-record layout ([`stack`]),
//! * reaching definitions for registers and stack slots, giving the
//!   flow-sensitive variable naming of Appendix A's `TYPE_A` ([`reaching`]),
//! * formal-in/out location recovery ("locators", Appendix A.4)
//!   ([`stack`]).
//!
//! This crate plays the role CodeSurfer's recovered IR plays for the
//! original system; see `DESIGN.md` for the substitution argument.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cfg;
pub mod isa;
pub mod program;
pub mod reaching;
pub mod stack;

pub use cfg::Cfg;
pub use isa::{BinOp, Cond, Inst, Mem, Operand, Reg};
pub use program::{CallKind, FuncId, Function, Program};
pub use reaching::ReachingDefs;
pub use stack::{FrameInfo, Loc32};
