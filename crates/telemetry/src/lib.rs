//! # retypd-telemetry — std-only observability for the Retypd stack
//!
//! Two subsystems, both safe to leave compiled into release binaries:
//!
//! - **[`metrics`]** — a registry of atomic [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket log-scale [`Histogram`]s. Recording is lock-free (callers
//!   hold `Arc`s to the instruments); snapshots merge across registries with
//!   plain bucket addition, and quantiles are reported as deterministic
//!   bucket bounds so merged p50/p95/p99 are bit-identical no matter how
//!   samples were sharded. This is what the serve layer's wire `metrics`
//!   request and Prometheus-style text exposition serialize.
//!
//! - **[`spans`]** — RAII tracing spans written to per-thread ring buffers,
//!   gated on a process-wide flag that defaults to *off* (a disarmed span is
//!   one relaxed atomic load). Span events carry a thread-local trace id
//!   propagated from the wire envelope, and drain as Chrome-trace JSONL for
//!   flamegraph inspection (`--trace-dir` in the serve bin).
//!
//! The crate has no dependencies — it sits below `retypd-core` so every
//! layer of the stack (core solver phases, driver scheduling/caching, serve
//! connection handling) can instrument itself without cycles.
//!
//! ```
//! use retypd_telemetry as tele;
//!
//! // Metrics: register once, record lock-free.
//! let hits = tele::global().counter("demo.cache_hits");
//! let lat = tele::global().histogram("demo.latency_ns");
//! hits.inc();
//! lat.record(1_250);
//! let snap = tele::global().snapshot();
//! assert_eq!(snap.histograms.iter().find(|(n, _)| n == "demo.latency_ns").unwrap().1.count, 1);
//!
//! // Spans: no-ops until enabled.
//! tele::set_spans_enabled(true);
//! {
//!     let _trace = tele::set_current_trace(tele::trace_id_hash("req-42"));
//!     let _span = tele::span("demo.solve");
//! }
//! tele::set_spans_enabled(false);
//! let (events, _dropped) = tele::drain_spans();
//! assert_eq!(events.last().unwrap().name, "demo.solve");
//! ```

pub mod metrics;
pub mod spans;

pub use metrics::{
    bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry, NUM_BUCKETS,
};
pub use spans::{
    chrome_trace_json, current_trace, drain_spans, now_ns, set_current_trace, set_spans_enabled,
    span, spans_enabled, trace_id_hash, SpanEvent, SpanGuard, TraceGuard,
};

use loom::sync::OnceLock;

/// The process-wide default registry. Core and driver instrumentation lands
/// here; serve additionally keeps per-shard registries and merges them with
/// this one when answering a `metrics` request.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}
