//! The client library: a thin, blocking wrapper over the wire protocol.
//!
//! One [`Client`] owns one TCP connection and issues requests serially
//! (the protocol is request/response). Concurrency comes from owning
//! several clients — the `loadgen` binary drives one per worker thread.

use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use retypd_driver::ModuleJob;

use crate::wire::{self, Request, Response, WireModule, WireReport, WireStats};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or protocol trouble.
    Wire(wire::WireError),
    /// The server refused the request at admission control.
    Overloaded {
        /// Jobs in flight at the server when it refused.
        queued: usize,
        /// The server's admission limit.
        limit: usize,
    },
    /// The server is draining.
    ShuttingDown,
    /// The server reported a request error.
    Server(String),
    /// The server answered with a response kind the call did not expect.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Overloaded { queued, limit } => {
                write!(f, "server overloaded ({queued}/{limit} jobs in flight)")
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<wire::WireError> for ClientError {
    fn from(e: wire::WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Wire(wire::WireError::Io(e))
    }
}

/// A blocking connection to a `retypd-serve` server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Fails if the address does not resolve or the connection is refused.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Connects, retrying until `timeout` elapses — for racing a server
    /// that is still binding its socket (the CI load test starts the
    /// server as a background process).
    ///
    /// # Errors
    ///
    /// Returns the last connection error once the deadline passes.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, &req.encode())?;
        let payload = wire::read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Unexpected("server closed the connection".into()))?;
        Ok(Response::decode(&payload)?)
    }

    fn expect_solved(resp: Response) -> Result<Vec<WireReport>, ClientError> {
        match resp {
            Response::Solved(reports) => Ok(reports),
            Response::Overloaded { queued, limit } => {
                Err(ClientError::Overloaded { queued, limit })
            }
            Response::ShuttingDown => Err(ClientError::ShuttingDown),
            Response::Error(m) => Err(ClientError::Server(m)),
            Response::Stats(_) => Err(ClientError::Unexpected("stats".into())),
        }
    }

    /// Solves one module.
    ///
    /// # Errors
    ///
    /// [`ClientError::Overloaded`] when admission control refuses the job;
    /// other variants for protocol or server failures.
    pub fn solve_module(&mut self, job: &ModuleJob) -> Result<WireReport, ClientError> {
        let resp = self.roundtrip(&Request::SolveModule(WireModule::from_job(job)))?;
        let mut reports = Self::expect_solved(resp)?;
        if reports.len() != 1 {
            return Err(ClientError::Unexpected(format!(
                "{} reports for one module",
                reports.len()
            )));
        }
        Ok(reports.remove(0))
    }

    /// Solves a batch; reports come back in submission order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Overloaded`] when other in-flight work leaves no
    /// room in the admission budget (admission is all-or-nothing, so
    /// retrying later can succeed); [`ClientError::Server`] when the batch
    /// is bigger than the server's whole budget and could *never* be
    /// admitted — split it instead of retrying; other variants for
    /// protocol or server failures.
    pub fn solve_batch(&mut self, jobs: &[ModuleJob]) -> Result<Vec<WireReport>, ClientError> {
        let modules = jobs.iter().map(WireModule::from_job).collect();
        let resp = self.roundtrip(&Request::SolveBatch(modules))?;
        let reports = Self::expect_solved(resp)?;
        if reports.len() != jobs.len() {
            return Err(ClientError::Unexpected(format!(
                "{} reports for {} modules",
                reports.len(),
                jobs.len()
            )));
        }
        Ok(reports)
    }

    /// Fetches server statistics.
    ///
    /// # Errors
    ///
    /// Fails on protocol or server errors.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(m) => Err(ClientError::Server(m)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// Fails on protocol errors or if the request cannot be sent. A
    /// `shutting_down` reply is success — and so is the server hanging up
    /// after the request went out: a draining server's process may exit
    /// before the ack frame is fully delivered, and the hang-up itself is
    /// evidence the drain is underway.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        wire::write_frame(&mut self.stream, &Request::Shutdown.encode())?;
        match wire::read_frame(&mut self.stream) {
            Ok(Some(payload)) => match Response::decode(&payload)? {
                Response::ShuttingDown => Ok(()),
                Response::Error(m) => Err(ClientError::Server(m)),
                other => Err(ClientError::Unexpected(format!("{other:?}"))),
            },
            Ok(None) | Err(wire::WireError::Io(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}
