//! Conversion of sketches to human-readable C types (§4.3, Appendix G).
//!
//! Sketches carry more information than C types, so this phase is lossy by
//! design and collects the *policies* (heuristics) the paper deliberately
//! quarantines away from the sound inference core:
//!
//! * **const policy** (Example 4.1): a pointer parameter at location `L` is
//!   `const` when the sketch has `in_L.load` but not `in_L.store`;
//! * **union policy** (Example 4.2): contradictory scalar bounds become a
//!   union of the offending type names instead of an error;
//! * **struct reconstruction**: `σN@k` capabilities become struct fields at
//!   the corresponding offsets; recursive sketches produce recursive named
//!   structs (the reroll policy of Example G.3 falls out of the DFA
//!   representation: a cycle *is* the rerolled type);
//! * **tag display**: semantic tags like `#FileDescriptor` are displayed as
//!   their nearest untagged C ancestor with the tag kept as a comment,
//!   matching Figure 2's `int /*#FileDescriptor*/`.

use std::collections::HashMap;
use std::fmt;

use crate::label::{Label, Loc};
use crate::lattice::{Lattice, LatticeElem};
use crate::sketch::{Sketch, SketchState};

/// A reconstructed C type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CType {
    /// No information (`⊤`): rendered as the width-appropriate default.
    Unknown {
        /// Bit width if known from the field label.
        bits: Option<u16>,
    },
    /// `void` (used for unused results).
    Void,
    /// A named scalar type, with an optional semantic tag comment.
    Scalar {
        /// The C name to print.
        name: String,
        /// A `#tag` retained as a comment, if any.
        tag: Option<String>,
    },
    /// A union of incompatible reconstructions (Example 4.2).
    Union(Vec<CType>),
    /// A pointer.
    Ptr {
        /// Pointee type.
        pointee: Box<CType>,
        /// Whether the pointee is only ever loaded through this pointer.
        is_const: bool,
    },
    /// Reference to a named struct in the [`TypeTable`].
    Struct(usize),
    /// A function pointer / function type.
    Func(Box<FuncSig>),
}

/// A reconstructed function signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncSig {
    /// Parameters ordered by location.
    pub params: Vec<Param>,
    /// Return type (`Void` when no out location was observed).
    pub ret: CType,
}

/// One reconstructed parameter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Input location (stack offset or register).
    pub loc: Loc,
    /// Parameter type.
    pub ty: CType,
}

/// A reconstructed struct definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructDef {
    /// Struct name (`Struct_0`, `Struct_1`, …).
    pub name: String,
    /// Fields ordered by offset.
    pub fields: Vec<FieldDef>,
}

/// One struct field.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldDef {
    /// Byte offset.
    pub offset: i32,
    /// Bit width.
    pub bits: u16,
    /// Field type.
    pub ty: CType,
}

/// The table of named structs discovered during conversion.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    /// Struct definitions; `CType::Struct(i)` indexes into this.
    pub structs: Vec<StructDef>,
}

impl TypeTable {
    /// Renders all struct definitions as C source.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.structs {
            let _ = writeln!(out, "struct {} {{", s.name);
            for f in &s.fields {
                let _ = writeln!(
                    out,
                    "    {} field_{};",
                    render_type(&f.ty, self),
                    f.offset
                );
            }
            let _ = writeln!(out, "}};");
        }
        out
    }
}

/// Renders a type as C source (struct references by name).
pub fn render_type(t: &CType, table: &TypeTable) -> String {
    match t {
        CType::Unknown { bits: Some(b) } => format!("uint{b}_t /*unknown*/", b = b),
        CType::Unknown { bits: None } => "void /*unknown*/".to_owned(),
        CType::Void => "void".to_owned(),
        CType::Scalar { name, tag: None } => name.clone(),
        CType::Scalar {
            name,
            tag: Some(tag),
        } => format!("{name} /*{tag}*/"),
        CType::Union(parts) => {
            let inner: Vec<String> = parts.iter().map(|p| render_type(p, table)).collect();
            format!("union {{ {} }}", inner.join("; "))
        }
        CType::Ptr { pointee, is_const } => {
            if *is_const {
                format!("const {} *", render_type(pointee, table))
            } else {
                format!("{} *", render_type(pointee, table))
            }
        }
        CType::Struct(i) => format!("struct {}", table.structs[*i].name),
        CType::Func(sig) => {
            let params: Vec<String> =
                sig.params.iter().map(|p| render_type(&p.ty, table)).collect();
            format!(
                "{} (*)({})",
                render_type(&sig.ret, table),
                params.join(", ")
            )
        }
    }
}

impl fmt::Display for FuncSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let empty = TypeTable::default();
        write!(f, "{} (", render_type(&self.ret, &empty))?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", render_type(&p.ty, &empty))?;
        }
        write!(f, ")")
    }
}

/// Converts sketches into C types, accumulating struct definitions.
#[derive(Debug)]
pub struct CTypeBuilder<'l> {
    lattice: &'l Lattice,
    table: TypeTable,
    /// Memo: sketch states already converted to structs (breaks recursion).
    memo: HashMap<SketchState, usize>,
}

impl<'l> CTypeBuilder<'l> {
    /// Creates a builder.
    pub fn new(lattice: &'l Lattice) -> CTypeBuilder<'l> {
        CTypeBuilder {
            lattice,
            table: TypeTable::default(),
            memo: HashMap::new(),
        }
    }

    /// Finishes conversion, returning the struct table.
    pub fn into_table(self) -> TypeTable {
        self.table
    }

    /// A read-only view of the accumulated struct table.
    pub fn table(&self) -> &TypeTable {
        &self.table
    }

    /// Converts a whole-procedure sketch (with `in_L`/`out_L` edges at the
    /// root) into a function signature, applying the const policy.
    pub fn function_type(&mut self, sketch: &Sketch) -> FuncSig {
        self.memo.clear();
        let root = sketch.root();
        let mut params: Vec<Param> = Vec::new();
        let mut ret = CType::Void;
        for (l, t) in sketch.edges(root) {
            match l {
                Label::In(loc) => {
                    let ty = self.value_type_at(sketch, t, None, true);
                    params.push(Param { loc, ty });
                }
                Label::Out(_) => {
                    ret = self.value_type(sketch, t, None);
                }
                _ => {}
            }
        }
        params.sort_by_key(|p| p.loc);
        FuncSig { params, ret }
    }

    /// Converts the sketch subtree at `state` to a C type. `bits` is the
    /// field width if the value was reached through a `σN@k` label.
    pub fn value_type(&mut self, sketch: &Sketch, state: SketchState, bits: Option<u16>) -> CType {
        self.value_type_at(sketch, state, bits, false)
    }

    /// As [`CTypeBuilder::value_type`]; `at_param` enables the const
    /// policy, which the paper applies *only* to function parameters
    /// (Example 4.1).
    fn value_type_at(
        &mut self,
        sketch: &Sketch,
        state: SketchState,
        bits: Option<u16>,
        at_param: bool,
    ) -> CType {
        let has_load = sketch.step(state, Label::Load).is_some();
        let has_store = sketch.step(state, Label::Store).is_some();
        if has_load || has_store {
            // Pointer: prefer the load view of the pointee.
            let pointee_state = sketch
                .step(state, Label::Load)
                .or_else(|| sketch.step(state, Label::Store))
                .expect("pointer has a pointee");
            let pointee = self.pointee_type(sketch, pointee_state);
            return CType::Ptr {
                pointee: Box::new(pointee),
                is_const: at_param && has_load && !has_store,
            };
        }
        let is_func = sketch
            .edges(state)
            .any(|(l, _)| matches!(l, Label::In(_) | Label::Out(_)));
        if is_func {
            let mut params = Vec::new();
            let mut ret = CType::Void;
            for (l, t) in sketch.edges(state) {
                match l {
                    Label::In(loc) => {
                        let ty = self.value_type(sketch, t, None);
                        params.push(Param { loc, ty });
                    }
                    Label::Out(_) => ret = self.value_type(sketch, t, None),
                    _ => {}
                }
            }
            params.sort_by_key(|p| p.loc);
            return CType::Func(Box::new(FuncSig { params, ret }));
        }
        self.scalar_type(sketch, state, bits)
    }

    fn pointee_type(&mut self, sketch: &Sketch, state: SketchState) -> CType {
        let fields: Vec<(i32, u16, SketchState)> = sketch
            .edges(state)
            .filter_map(|(l, t)| match l {
                Label::Sigma { bits, offset } => Some((offset, bits, t)),
                _ => None,
            })
            .collect();
        if fields.is_empty() {
            // Pointer to pointer, function, or opaque scalar.
            return self.value_type(sketch, state, None);
        }
        // A single machine-word field at offset 0 with no recursion is a
        // pointer-to-scalar rather than a pointer-to-struct.
        if fields.len() == 1 && fields[0].0 == 0 && !self.memo.contains_key(&state) {
            let (off, bits, t) = fields[0];
            if off == 0 && !state_in_cycle(sketch, state) {
                return self.value_type(sketch, t, Some(bits));
            }
        }
        if let Some(&id) = self.memo.get(&state) {
            return CType::Struct(id);
        }
        let id = self.table.structs.len();
        self.table.structs.push(StructDef {
            name: format!("Struct_{id}"),
            fields: Vec::new(),
        });
        self.memo.insert(state, id);
        let mut defs: Vec<FieldDef> = Vec::new();
        for (offset, bits, t) in fields {
            let ty = self.value_type(sketch, t, Some(bits));
            defs.push(FieldDef { offset, bits, ty });
        }
        defs.sort_by_key(|f| f.offset);
        self.table.structs[id].fields = defs;
        CType::Struct(id)
    }

    fn scalar_type(&mut self, sketch: &Sketch, state: SketchState, bits: Option<u16>) -> CType {
        let mark = sketch.mark(state);
        let (lower, upper) = sketch.interval(state);
        if mark == self.lattice.top() {
            return CType::Unknown { bits };
        }
        // Union policy (Example 4.2): an inconsistent interval means
        // incompatible scalar constraints were merged; emit a union of the
        // bound names rather than failing.
        if mark == self.lattice.bottom() {
            let mut parts = Vec::new();
            for e in [lower, upper] {
                if e != self.lattice.bottom() && e != self.lattice.top() {
                    parts.push(self.named_scalar(e));
                }
            }
            parts.dedup();
            return match parts.len() {
                0 => CType::Unknown { bits },
                1 => parts.pop().expect("one part"),
                _ => CType::Union(parts),
            };
        }
        self.named_scalar(mark)
    }

    fn named_scalar(&self, e: LatticeElem) -> CType {
        let name = self.lattice.name(e);
        if let Some(tag) = name.strip_prefix('#') {
            // Display the nearest untagged ancestor, keep the tag as a
            // comment (Figure 2's `int /*#FileDescriptor*/`).
            let display = self.nearest_untagged_ancestor(e);
            return CType::Scalar {
                name: display,
                tag: Some(format!("#{tag}")),
            };
        }
        CType::Scalar {
            name: name.to_owned(),
            tag: None,
        }
    }

    fn nearest_untagged_ancestor(&self, e: LatticeElem) -> String {
        let mut best: Option<LatticeElem> = None;
        for c in self.lattice.elements() {
            if c == e || c == self.lattice.top() {
                continue;
            }
            if self.lattice.name(c).starts_with('#') {
                continue;
            }
            if self.lattice.leq(e, c) {
                best = match best {
                    None => Some(c),
                    Some(b) if self.lattice.leq(c, b) => Some(c),
                    other => other,
                };
            }
        }
        match best {
            Some(b) => self.lattice.name(b).to_owned(),
            None => "int".to_owned(),
        }
    }
}

/// True if `state` can reach itself (recursive subtree ⇒ named struct).
fn state_in_cycle(sketch: &Sketch, state: SketchState) -> bool {
    let mut stack = vec![state];
    let mut seen = std::collections::HashSet::new();
    while let Some(s) = stack.pop() {
        for (_, t) in sketch.edges(s) {
            if t == state {
                return true;
            }
            if seen.insert(t) {
                stack.push(t);
            }
        }
    }
    false
}

/// Renders a full function declaration, Figure 2 style:
/// `int /*#SuccessZ*/ close_last(const struct Struct_0 *)`.
pub fn render_signature(name: &str, sig: &FuncSig, table: &TypeTable) -> String {
    let params: Vec<String> = sig
        .params
        .iter()
        .map(|p| render_type(&p.ty, table))
        .collect();
    format!(
        "{} {}({})",
        render_type(&sig.ret, table),
        name,
        if params.is_empty() {
            "void".to_owned()
        } else {
            params.join(", ")
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtv::BaseVar;
    use crate::graph::ConstraintGraph;
    use crate::parse::parse_constraint_set;
    use crate::saturation::saturate;
    use crate::shapes::ShapeQuotient;

    fn infer_sketch(src: &str, base: &str) -> (Sketch, Lattice) {
        let cs = parse_constraint_set(src).unwrap();
        let lattice = Lattice::c_types();
        let mut g = ConstraintGraph::build(&cs);
        saturate(&mut g);
        let quotient = ShapeQuotient::build(&cs);
        let consts: Vec<BaseVar> = cs
            .base_vars()
            .into_iter()
            .filter(|b| b.is_const())
            .collect();
        let sk = Sketch::infer(BaseVar::var(base), &g, &quotient, &lattice, &consts).unwrap();
        (sk, lattice)
    }

    #[test]
    fn figure2_struct_reconstruction() {
        let src = "
            f.in_stack0 <= t
            t.load.σ32@0 <= t
            t.load.σ32@4 <= #FileDescriptor
            #SuccessZ <= f.out_eax
        ";
        let (sk, lat) = infer_sketch(src, "f");
        let mut b = CTypeBuilder::new(&lat);
        let sig = b.function_type(&sk);
        let table = b.into_table();
        let rendered = render_signature("close_last", &sig, &table);
        // const pointer parameter to a recursive struct; tagged int return.
        assert!(rendered.contains("const struct Struct_0 *"), "{rendered}");
        assert!(rendered.contains("/*#SuccessZ*/"), "{rendered}");
        let structs = table.render();
        assert!(structs.contains("struct Struct_0 *"), "{structs}");
        assert!(structs.contains("/*#FileDescriptor*/"), "{structs}");
    }

    #[test]
    fn const_policy() {
        // Load-only parameter ⇒ const; load+store ⇒ mutable.
        let (sk, lat) = infer_sketch("f.in_stack0 <= p; p.load.σ32@0 <= int32", "f");
        let mut b = CTypeBuilder::new(&lat);
        let sig = b.function_type(&sk);
        match &sig.params[0].ty {
            CType::Ptr { is_const, .. } => assert!(is_const),
            other => panic!("expected pointer, got {other:?}"),
        }
        let (sk2, lat2) =
            infer_sketch("f.in_stack0 <= p; p.load.σ32@0 <= int32; int32 <= p.store.σ32@0", "f");
        let mut b2 = CTypeBuilder::new(&lat2);
        let sig2 = b2.function_type(&sk2);
        match &sig2.params[0].ty {
            CType::Ptr { is_const, .. } => assert!(!is_const),
            other => panic!("expected pointer, got {other:?}"),
        }
    }

    #[test]
    fn pointer_to_scalar_not_struct() {
        let (sk, lat) = infer_sketch("f.in_stack0 <= p; p.load.σ32@0 <= int32", "f");
        let mut b = CTypeBuilder::new(&lat);
        let sig = b.function_type(&sk);
        let t = &sig.params[0].ty;
        match t {
            CType::Ptr { pointee, .. } => match pointee.as_ref() {
                CType::Scalar { name, .. } => assert_eq!(name, "int32"),
                other => panic!("expected scalar pointee, got {other:?}"),
            },
            other => panic!("expected pointer, got {other:?}"),
        }
        assert!(b.into_table().structs.is_empty());
    }

    #[test]
    fn union_policy_on_conflict() {
        // x is bounded above by two incomparable scalars: int32 ∧ float32
        // has meet ⊥, triggering the union policy.
        let (sk, lat) = infer_sketch(
            "f.in_stack0 <= x; x <= int32; x <= float32",
            "f",
        );
        let mut b = CTypeBuilder::new(&lat);
        let sig = b.function_type(&sk);
        match &sig.params[0].ty {
            CType::Union(_) | CType::Unknown { .. } | CType::Scalar { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn render_forms() {
        let table = TypeTable::default();
        let t = CType::Ptr {
            pointee: Box::new(CType::Scalar {
                name: "char".into(),
                tag: None,
            }),
            is_const: true,
        };
        assert_eq!(render_type(&t, &table), "const char *");
    }
}
