//! The persistent scheme cache.
//!
//! Entries are keyed by the content fingerprints of [`crate::fingerprint`]
//! and persist for the lifetime of an [`crate::AnalysisDriver`], across
//! `solve`/`solve_batch` calls — that is the incremental-re-analysis story:
//! a batch whose modules share procedures (real corpora are full of
//! near-duplicates) re-solves only the dirtied SCCs, and a re-submitted
//! identical module is a 100% fingerprint hit that touches the solver not
//! at all.
//!
//! The cache stores *exact* solver outputs (schemes with their fingerprints
//! for pass 1, full [`SccRefinement`]s for pass 2), so hits are
//! bit-identical to a fresh solve and cannot perturb determinism. Values
//! are held behind `Arc` so concurrent wave workers share them without
//! copying under the lock.
//!
//! ## Bounding
//!
//! A driver resident in a long-running service sees an unbounded stream of
//! distinct modules, so each of the two maps can be given a capacity
//! ([`SchemeCache::with_capacity`], wired from
//! [`crate::DriverConfig::cache_capacity`]). When a map exceeds its
//! capacity the *least-recently-hit* entry is evicted (insertion counts as
//! a hit). Eviction only ever costs a re-solve on a later miss — cached
//! values are pure functions of their fingerprint, so correctness is
//! unaffected, which the eviction tests pin.

use retypd_core::sync::atomic::{AtomicU64, Ordering};
use retypd_core::sync::{Arc, Mutex};

use retypd_core::fxhash::FxHashMap;
use retypd_core::{SccRefinement, Symbol, TypeScheme};

/// Cached pass-1 output of one SCC.
#[derive(Clone, Debug)]
pub struct CachedSchemes {
    /// `(procedure, scheme, scheme fingerprint)` per SCC member, in member
    /// order. The fingerprint rides along so dependent SCCs can extend
    /// their own keys without re-rendering the scheme.
    pub schemes: Vec<(Symbol, TypeScheme, u64)>,
    /// Combined-constraint count (for [`retypd_core::SolverStats`] parity
    /// with the sequential solver).
    pub constraints: usize,
}

/// Aggregate cache counters (cumulative over the cache's lifetime).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a solve.
    pub misses: u64,
    /// Entries evicted to stay within the configured capacity.
    pub evictions: u64,
    /// Pass-1 entries currently stored.
    pub scheme_entries: usize,
    /// Pass-2 entries currently stored.
    pub refine_entries: usize,
}

/// A bounded map with least-recently-hit eviction: every `get`/`insert`
/// stamps the entry with a monotone tick; exceeding `capacity` evicts the
/// entry with the smallest stamp. `capacity: None` never evicts.
#[derive(Debug)]
struct LruMap<V> {
    capacity: Option<usize>,
    tick: u64,
    /// fingerprint → (value, last-hit tick).
    map: FxHashMap<u64, (V, u64)>,
    /// last-hit tick → fingerprint (ticks are unique, so this is a total
    /// recency order; `BTreeMap` gives O(log n) oldest-first eviction).
    order: std::collections::BTreeMap<u64, u64>,
    evictions: u64,
}

impl<V> LruMap<V> {
    fn new(capacity: Option<usize>) -> LruMap<V> {
        LruMap {
            capacity,
            tick: 0,
            map: FxHashMap::default(),
            order: std::collections::BTreeMap::new(),
            evictions: 0,
        }
    }

    fn touch(tick: &mut u64) -> u64 {
        *tick += 1;
        *tick
    }

    fn get(&mut self, fp: u64) -> Option<&V> {
        let now = Self::touch(&mut self.tick);
        match self.map.get_mut(&fp) {
            Some((_, stamp)) => {
                self.order.remove(stamp);
                *stamp = now;
                self.order.insert(now, fp);
                self.map.get(&fp).map(|(v, _)| v)
            }
            None => None,
        }
    }

    /// Inserts (refreshing recency), returning the fingerprints evicted to
    /// stay within capacity — the persistent store mirrors removals from
    /// them, so the on-disk log tracks the live cache.
    fn insert(&mut self, fp: u64, value: V) -> Vec<u64> {
        let now = Self::touch(&mut self.tick);
        if let Some((_, stamp)) = self.map.insert(fp, (value, now)) {
            self.order.remove(&stamp);
        }
        self.order.insert(now, fp);
        let mut evicted = Vec::new();
        if let Some(cap) = self.capacity {
            while self.map.len() > cap.max(1) {
                let (&oldest, &victim) = self
                    .order
                    .iter()
                    .next()
                    .expect("order tracks every map entry");
                self.order.remove(&oldest);
                self.map.remove(&victim);
                self.evictions += 1;
                evicted.push(victim);
            }
        }
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// A concurrent, persistent scheme + refinement cache.
#[derive(Debug)]
pub struct SchemeCache {
    schemes: Mutex<LruMap<Arc<CachedSchemes>>>,
    refines: Mutex<LruMap<Arc<SccRefinement>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SchemeCache {
    fn default() -> SchemeCache {
        SchemeCache::new()
    }
}

impl SchemeCache {
    /// An empty, unbounded cache.
    pub fn new() -> SchemeCache {
        SchemeCache::with_capacity(None)
    }

    /// An empty cache holding at most `capacity` entries *per pass* (pass-1
    /// schemes and pass-2 refinements are bounded independently, since one
    /// entry of each exists per live SCC). `None` means unbounded.
    pub fn with_capacity(capacity: Option<usize>) -> SchemeCache {
        SchemeCache {
            schemes: Mutex::new(LruMap::new(capacity)),
            refines: Mutex::new(LruMap::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a pass-1 entry, counting the hit or miss.
    pub fn lookup_schemes(&self, fp: u64) -> Option<Arc<CachedSchemes>> {
        let got = self.schemes.lock().expect("cache lock").get(fp).cloned();
        self.count(got.is_some());
        got
    }

    /// Stores a pass-1 entry, returning any fingerprints evicted to stay
    /// within capacity (so a persistent store can drop their mirror
    /// records).
    pub fn insert_schemes(&self, fp: u64, entry: Arc<CachedSchemes>) -> Vec<u64> {
        self.schemes.lock().expect("cache lock").insert(fp, entry)
    }

    /// Looks up a pass-2 entry, counting the hit or miss.
    pub fn lookup_refine(&self, fp: u64) -> Option<Arc<SccRefinement>> {
        let got = self.refines.lock().expect("cache lock").get(fp).cloned();
        self.count(got.is_some());
        got
    }

    /// Stores a pass-2 entry, returning any evicted fingerprints (see
    /// [`SchemeCache::insert_schemes`]).
    pub fn insert_refine(&self, fp: u64, entry: Arc<SccRefinement>) -> Vec<u64> {
        self.refines.lock().expect("cache lock").insert(fp, entry)
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative counters and current sizes.
    pub fn stats(&self) -> CacheStats {
        let schemes = self.schemes.lock().expect("cache lock");
        let refines = self.refines.lock().expect("cache lock");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: schemes.evictions + refines.evictions,
            scheme_entries: schemes.len(),
            refine_entries: refines.len(),
        }
    }

    /// Drops every entry (counters keep accumulating).
    pub fn clear(&self) {
        self.schemes.lock().expect("cache lock").clear();
        self.refines.lock().expect("cache lock").clear();
    }
}

#[cfg(test)]
mod lru_tests {
    use super::LruMap;

    #[test]
    fn unbounded_never_evicts() {
        let mut m: LruMap<usize> = LruMap::new(None);
        for i in 0..1000u64 {
            m.insert(i, i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.evictions, 0);
    }

    #[test]
    fn evicts_least_recently_hit() {
        let mut m: LruMap<&str> = LruMap::new(Some(2));
        m.insert(1, "a");
        m.insert(2, "b");
        // Hit 1 so 2 becomes the coldest entry.
        assert_eq!(m.get(1), Some(&"a"));
        m.insert(3, "c");
        assert_eq!(m.evictions, 1);
        assert_eq!(m.get(2), None, "2 was least recently hit");
        assert_eq!(m.get(1), Some(&"a"));
        assert_eq!(m.get(3), Some(&"c"));
    }

    #[test]
    fn reinsert_refreshes_recency_without_growth() {
        let mut m: LruMap<&str> = LruMap::new(Some(2));
        m.insert(1, "a");
        m.insert(2, "b");
        m.insert(1, "a2"); // refresh, not growth
        assert_eq!(m.len(), 2);
        assert_eq!(m.evictions, 0);
        m.insert(3, "c"); // evicts 2, the coldest
        assert_eq!(m.get(2), None);
        assert_eq!(m.get(1), Some(&"a2"));
    }

    #[test]
    fn capacity_zero_keeps_one_entry() {
        // A degenerate capacity still admits the most recent entry so a
        // solve's own insert remains visible within that solve.
        let mut m: LruMap<&str> = LruMap::new(Some(0));
        m.insert(1, "a");
        assert_eq!(m.len(), 1);
        m.insert(2, "b");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(2), Some(&"b"));
    }
}
