//! Stack-pointer tracking and activation-record layout.
//!
//! The paper's evaluation runs with VSA disabled but "computing affine
//! relations between the stack and frame pointers" (§6.1). This module does
//! exactly that: for every instruction it derives the `esp` and `ebp`
//! offsets relative to the value of `esp` at function entry (where `[esp]`
//! holds the return address and `[esp+4]` the first stack argument), so
//! that memory operands based on either register resolve to
//! *entry-relative stack slots*.

use crate::cfg::Cfg;
use crate::isa::{BinOp, Inst, Mem, Operand, Reg};
use crate::program::Function;

/// An entry-relative stack location: `+4` is the first cdecl argument,
/// negative offsets are locals.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Loc32(pub i32);

/// Per-instruction stack-frame facts.
#[derive(Clone, Debug)]
pub struct FrameInfo {
    /// `esp − esp_entry` *before* each instruction (`None` = unknown).
    pub esp_delta: Vec<Option<i32>>,
    /// `ebp − esp_entry` before each instruction, if `ebp` currently holds
    /// a frame pointer.
    pub ebp_delta: Vec<Option<i32>>,
}

impl FrameInfo {
    /// Computes frame facts by forward propagation over the CFG, joining
    /// with equality (disagreeing deltas become unknown).
    pub fn compute(f: &Function, cfg: &Cfg) -> FrameInfo {
        let n = f.insts.len();
        let mut esp: Vec<Option<Option<i32>>> = vec![None; n]; // None = unvisited
        let mut ebp: Vec<Option<Option<i32>>> = vec![None; n];
        if n == 0 {
            return FrameInfo {
                esp_delta: Vec::new(),
                ebp_delta: Vec::new(),
            };
        }
        // Block-entry states.
        let nb = cfg.len();
        let mut bin: Vec<Option<(Option<i32>, Option<i32>)>> = vec![None; nb];
        bin[0] = Some((Some(0), None));
        let order = cfg.reverse_postorder();
        // Iterate to fixpoint (deltas only decrease in precision).
        loop {
            let mut changed = false;
            for &b in &order {
                let Some((mut e, mut p)) = bin[b.0] else {
                    continue;
                };
                let blk = &cfg.blocks()[b.0];
                for i in blk.start..blk.end {
                    let merged_e = merge(esp[i], e);
                    let merged_p = merge(ebp[i], p);
                    if esp[i] != Some(merged_e) || ebp[i] != Some(merged_p) {
                        esp[i] = Some(merged_e);
                        ebp[i] = Some(merged_p);
                        changed = true;
                    }
                    e = merged_e;
                    p = merged_p;
                    step(&f.insts[i], &mut e, &mut p);
                }
                for s in &blk.succs {
                    let nv = match bin[s.0] {
                        None => (e, p),
                        Some((se, sp)) => (join(se, e), join(sp, p)),
                    };
                    if bin[s.0] != Some(nv) {
                        bin[s.0] = Some(nv);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        FrameInfo {
            esp_delta: esp.into_iter().map(|x| x.flatten()).collect(),
            ebp_delta: ebp.into_iter().map(|x| x.flatten()).collect(),
        }
    }

    /// Resolves a memory operand at instruction `i` to an entry-relative
    /// stack slot, if its base register's offset is known.
    pub fn resolve(&self, i: usize, m: &Mem) -> Option<Loc32> {
        let base = match m.base {
            Reg::Esp => self.esp_delta[i]?,
            Reg::Ebp => self.ebp_delta[i]?,
            _ => return None,
        };
        Some(Loc32(base + m.disp))
    }

    /// The slot written by a `push` at instruction `i`.
    pub fn push_slot(&self, i: usize) -> Option<Loc32> {
        Some(Loc32(self.esp_delta[i]? - 4))
    }

    /// The slot read by a `pop` at instruction `i`.
    pub fn pop_slot(&self, i: usize) -> Option<Loc32> {
        Some(Loc32(self.esp_delta[i]?))
    }
}

fn merge(slot: Option<Option<i32>>, v: Option<i32>) -> Option<i32> {
    match slot {
        None => v,
        Some(prev) => join(prev, v),
    }
}

fn join(a: Option<i32>, b: Option<i32>) -> Option<i32> {
    match (a, b) {
        (Some(x), Some(y)) if x == y => Some(x),
        _ => None,
    }
}

fn step(inst: &Inst, esp: &mut Option<i32>, ebp: &mut Option<i32>) {
    match inst {
        Inst::Push(_) => *esp = esp.map(|d| d - 4),
        Inst::Pop(r) => {
            if *r == Reg::Ebp {
                // `pop ebp` restores a saved frame pointer: ebp is no longer
                // a known frame pointer (conservative).
                *ebp = None;
            }
            *esp = esp.map(|d| d + 4);
        }
        Inst::Mov {
            dst: Reg::Ebp,
            src: Operand::Reg(Reg::Esp),
        } => *ebp = *esp,
        Inst::Mov {
            dst: Reg::Esp,
            src: Operand::Reg(Reg::Ebp),
        } => *esp = *ebp,
        Inst::Mov { dst: Reg::Esp, .. } => *esp = None,
        Inst::Mov { dst: Reg::Ebp, .. } => *ebp = None,
        Inst::Bin {
            op,
            dst: Reg::Esp,
            src: Operand::Imm(k),
        } => {
            *esp = match op {
                BinOp::Add => esp.map(|d| d + *k as i32),
                BinOp::Sub => esp.map(|d| d - *k as i32),
                _ => None,
            }
        }
        Inst::Bin { dst: Reg::Esp, .. } => *esp = None,
        Inst::Bin { dst: Reg::Ebp, .. } => *ebp = None,
        Inst::Lea { dst: Reg::Esp, .. } => *esp = None,
        Inst::Lea { dst: Reg::Ebp, .. } => *ebp = None,
        Inst::Load { dst: Reg::Esp, .. } => *esp = None,
        Inst::Load { dst: Reg::Ebp, .. } => *ebp = None,
        Inst::Call(_) => {
            // Callee pops the return address; cdecl: caller cleans args, so
            // esp after the call equals esp before it.
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cond, Mem};
    use crate::program::Function;

    fn prologue_fn() -> Function {
        // Standard frame: push ebp; mov ebp, esp; sub esp, 8;
        // mov eax, [ebp+8] (arg0); mov [esp], eax (local); leave-ish; ret
        Function::new(
            "f",
            vec![
                Inst::Push(Operand::Reg(Reg::Ebp)),
                Inst::Mov {
                    dst: Reg::Ebp,
                    src: Operand::Reg(Reg::Esp),
                },
                Inst::Bin {
                    op: BinOp::Sub,
                    dst: Reg::Esp,
                    src: Operand::Imm(8),
                },
                Inst::Load {
                    dst: Reg::Eax,
                    addr: Mem::new(Reg::Ebp, 8),
                    size: 4,
                },
                Inst::Store {
                    addr: Mem::new(Reg::Esp, 0),
                    src: Operand::Reg(Reg::Eax),
                    size: 4,
                },
                Inst::Mov {
                    dst: Reg::Esp,
                    src: Operand::Reg(Reg::Ebp),
                },
                Inst::Pop(Reg::Ebp),
                Inst::Ret,
            ],
        )
    }

    #[test]
    fn frame_deltas() {
        let f = prologue_fn();
        let cfg = Cfg::build(&f);
        let fi = FrameInfo::compute(&f, &cfg);
        // Before the push, esp = 0; after push ebp / mov / sub, esp = -12.
        assert_eq!(fi.esp_delta[0], Some(0));
        assert_eq!(fi.esp_delta[3], Some(-12));
        // ebp was set to -4 by the prologue.
        assert_eq!(fi.ebp_delta[3], Some(-4));
        // [ebp+8] is entry-relative +4: the first argument.
        assert_eq!(fi.resolve(3, &Mem::new(Reg::Ebp, 8)), Some(Loc32(4)));
        // [esp] in the body is the local at -12.
        assert_eq!(fi.resolve(4, &Mem::new(Reg::Esp, 0)), Some(Loc32(-12)));
        // The epilogue restores esp before ret.
        assert_eq!(fi.esp_delta[7], Some(0));
    }

    #[test]
    fn joins_disagreeing_deltas_to_unknown() {
        // One path pushes, the other does not, then they join.
        // 0: cmp eax,0; 1: jz 3; 2: push eax; 3: nop; 4: ret
        let f = Function::new(
            "g",
            vec![
                Inst::Cmp {
                    a: Reg::Eax,
                    b: Operand::Imm(0),
                },
                Inst::Jcc {
                    cond: Cond::Eq,
                    target: 3,
                },
                Inst::Push(Operand::Reg(Reg::Eax)),
                Inst::Nop,
                Inst::Ret,
            ],
        );
        let cfg = Cfg::build(&f);
        let fi = FrameInfo::compute(&f, &cfg);
        assert_eq!(fi.esp_delta[2], Some(0));
        assert_eq!(fi.esp_delta[3], None); // join of 0 and -4
    }

    #[test]
    fn push_pop_slots() {
        let f = Function::new(
            "h",
            vec![Inst::Push(Operand::Reg(Reg::Eax)), Inst::Pop(Reg::Ebx), Inst::Ret],
        );
        let cfg = Cfg::build(&f);
        let fi = FrameInfo::compute(&f, &cfg);
        assert_eq!(fi.push_slot(0), Some(Loc32(-4)));
        assert_eq!(fi.pop_slot(1), Some(Loc32(-4)));
    }
}
