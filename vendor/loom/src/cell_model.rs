//! [`RaceCell`]: an `UnsafeCell` whose accesses are data-race-checked
//! under the model.
//!
//! This is the checker's probe for *non-atomic* shared state: wrap the
//! plain data a lock or a release/acquire protocol is supposed to
//! protect in a `RaceCell`, and any explored interleaving in which two
//! threads touch it concurrently (per vector clocks, at least one
//! access a write) fails the model with the schedule that got there.
//! Outside a model execution the accessors degrade to raw
//! `UnsafeCell` access — which is why they are `unsafe fn`: the caller
//! asserts the external synchronization the model would have checked.

use std::cell::UnsafeCell;

use crate::rt;

/// A cell holding plain shared data whose synchronization protocol is
/// *checked* by the model (and merely *asserted* outside it).
#[derive(Debug, Default)]
pub struct RaceCell<T: ?Sized> {
    val: UnsafeCell<T>,
}

// SAFETY: `RaceCell` hands out references only through `with`/
// `with_mut`, whose contract (checked under the model) is that
// accesses are externally synchronized; with that contract upheld it
// is no more than a `T` shared by synchronized threads.
unsafe impl<T: ?Sized + Send> Send for RaceCell<T> {}
// SAFETY: as above — the accessors' contract carries the
// synchronization obligation.
unsafe impl<T: ?Sized + Send> Sync for RaceCell<T> {}

impl<T> RaceCell<T> {
    /// Creates a cell (usable in `static`s).
    pub const fn new(val: T) -> RaceCell<T> {
        RaceCell {
            val: UnsafeCell::new(val),
        }
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        self.val.into_inner()
    }
}

impl<T: ?Sized> RaceCell<T> {
    fn addr(&self) -> usize {
        self.val.get() as *const () as usize
    }

    /// Shared (read) access to the value.
    ///
    /// # Safety
    ///
    /// No thread may mutate the cell concurrently. Under the model
    /// this is *checked*: a concurrent write in any explored
    /// interleaving fails the run with a replayable schedule.
    pub unsafe fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let _ = rt::op(|g, tid| g.cell_access(tid, self.addr(), false));
        // SAFETY: shared read; the caller (plus the model, when
        // running) guarantees no concurrent mutation.
        f(unsafe { &*self.val.get() })
    }

    /// Exclusive (write) access to the value.
    ///
    /// # Safety
    ///
    /// No other thread may access the cell concurrently. Under the
    /// model this is *checked* (see [`RaceCell::with`]).
    pub unsafe fn with_mut<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let _ = rt::op(|g, tid| g.cell_access(tid, self.addr(), true));
        // SAFETY: the caller (plus the model, when running) guarantees
        // this is the only live access.
        f(unsafe { &mut *self.val.get() })
    }

    /// Safe exclusive access (`&mut self` proves no concurrency).
    pub fn get_mut(&mut self) -> &mut T {
        self.val.get_mut()
    }
}
