//! Global string interner for type-variable and label names.
//!
//! Compiler-style symbol interning: strings are leaked into a process-wide
//! table and referenced by a small copyable [`Symbol`]. Interning the same
//! string twice yields the same symbol, so equality and hashing are O(1).
//!
//! ```
//! use retypd_core::Symbol;
//!
//! let a = Symbol::intern("eax");
//! let b = Symbol::intern("eax");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "eax");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// An interned string.
///
/// Symbols are cheap to copy and compare. Ordering is by string content (not
/// interning order) so that data structures built from symbols iterate in a
/// deterministic order regardless of interning history.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical symbol.
    pub fn intern(s: &str) -> Symbol {
        {
            let guard = interner().read();
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = guard.strings.len() as u32;
        guard.strings.push(leaked);
        guard.map.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// Returns the raw index of this symbol in the interner.
    ///
    /// Only meaningful within a single process run; use [`Symbol::as_str`]
    /// for anything persistent.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn ordering_is_by_string() {
        // Intern in reverse lexicographic order; Ord must still be lexicographic.
        let z = Symbol::intern("zzz_order");
        let a = Symbol::intern("aaa_order");
        assert!(a < z);
    }

    #[test]
    fn debug_shows_content() {
        let s = Symbol::intern("dbg");
        assert_eq!(format!("{s:?}"), "\"dbg\"");
        assert_eq!(format!("{s}"), "dbg");
    }
}
