//! The constraint graph: a finite encoding of the unconstrained pushdown
//! system `P_C` of Appendix D.
//!
//! Nodes are pairs *(derived type variable, variance)*; the variance
//! component tracks whether the ambient subtyping direction has been flipped
//! by contravariant labels (the `⊕`/`⊖` superscripts on control states in
//! Definition D.3). Edges come in three kinds:
//!
//! * **ε edges** encode constraints: `l ⊑ r` yields `(l,⊕) → (r,⊕)` and the
//!   dual `(r,⊖) → (l,⊖)` (the `rule⊕`/`rule⊖` constructions).
//! * **pop edges** `(x,v) --pop ℓ--> (x.ℓ, v·⟨ℓ⟩)` read a capability label
//!   from the input (the `∆start`-side chains).
//! * **push edges** `(x.ℓ,v) --push ℓ--> (x, v·⟨ℓ⟩)` write a capability
//!   label to the output (the `∆end`-side chains).
//!
//! A proof of `X.u ⊑ Y.v` in the Figure 3 system corresponds to a path from
//! `(X, ⟨u⟩)` to `(Y, ⟨v⟩)` whose stack-operation word reduces to
//! `pop u ⊗ push v` (Theorem D.1). [`crate::saturation`] closes the graph so
//! that balanced push/pop excursions become explicit ε edges.
//!
//! # Data plane
//!
//! The representation is index-based throughout, honoring the paper's point
//! that the finite `∆` encoding is what makes saturation tractable:
//!
//! * Derived type variables are interned per graph into a dense [`DtvId`]
//!   table (the per-process analogue is [`crate::intern::Symbol`]). The
//!   interner is *structural*: a dtv is a base variable or a
//!   `(parent, label)` child, so lookups walk one small hash per label
//!   instead of hashing and cloning whole path vectors.
//! * Adjacency is CSR-style and partitioned by [`EdgeKind`]: three flat
//!   target arrays (ε / pop / push) with per-node ranges, sealed once at the
//!   end of [`ConstraintGraph::build`]. Consumers that only care about one
//!   kind (saturation's shortcut rule pops, ε-closure queries) index their
//!   partition directly instead of filtering a mixed edge list.
//! * ε edges added *after* sealing — saturation's shortcut edges — go to an
//!   append-only per-node delta lane, so saturation can interleave reads and
//!   inserts without snapshotting adjacency.
//!
//! All ε insertions go through [`ConstraintGraph::add_eps_pair`], which adds
//! an edge together with its Lemma D.7 mirror and asserts (in debug builds)
//! that the graph stays mirror-symmetric at the insertion site.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use crate::constraint::ConstraintSet;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::dtv::{BaseVar, DerivedVar};
use crate::label::Label;
use crate::variance::Variance;

/// Dense per-graph index of an interned derived type variable.
///
/// Ids are assigned in first-materialization order; the two graph nodes of a
/// dtv (one per variance) are `2*id` and `2*id + 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DtvId(pub(crate) u32);

impl DtvId {
    /// The raw index (usable as a dense table key).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense index of a node `(derived type variable, variance)`.
///
/// The two variances of a derived variable occupy adjacent indices so that
/// the mirror involution of Lemma D.7 is `id ^ 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The mirror node `(d, ¬v)` (Lemma D.7's involution).
    pub fn mirror(self) -> NodeId {
        NodeId(self.0 ^ 1)
    }

    /// The variance component of this node.
    pub fn variance(self) -> Variance {
        if self.0 & 1 == 0 {
            Variance::Covariant
        } else {
            Variance::Contravariant
        }
    }

    /// The interned derived-variable id of this node.
    pub fn dtv_id(self) -> DtvId {
        DtvId(self.0 >> 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Kind of a graph edge (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeKind {
    /// A subtype step (weight 1 in the `StackOp` semiring).
    Eps,
    /// Reads label `ℓ` from the input stack.
    Pop(Label),
    /// Writes label `ℓ` to the output stack.
    Push(Label),
}

/// A directed edge to `to` with the given kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Target node.
    pub to: NodeId,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// Packs an ε edge into the dedup-set key.
fn eps_key(from: NodeId, to: NodeId) -> u64 {
    ((from.0 as u64) << 32) | to.0 as u64
}

/// The constraint graph for one constraint set (see module docs for the
/// CSR layout).
#[derive(Clone, Debug)]
pub struct ConstraintGraph {
    /// Interned derived variables, one per [`DtvId`].
    dtvs: Vec<DerivedVar>,
    /// Structural interner roots: base variable → id of the bare dtv.
    base_ids: FxHashMap<BaseVar, DtvId>,
    /// Structural interner steps: `(parent, label)` → child id.
    children: FxHashMap<(DtvId, Label), DtvId>,
    /// CSR ε partition: `eps_tgt[eps_idx[n] .. eps_idx[n+1]]`.
    eps_idx: Vec<u32>,
    eps_tgt: Vec<NodeId>,
    /// Append-only ε delta lane for post-seal (saturation) insertions.
    eps_delta: Vec<Vec<NodeId>>,
    /// ε dedup set over `eps_key` (covers base + delta lanes).
    eps_set: FxHashSet<u64>,
    /// CSR pop partition (chain edges; immutable after sealing).
    pop_idx: Vec<u32>,
    pop_tgt: Vec<(Label, NodeId)>,
    /// CSR push partition (chain edges; immutable after sealing).
    push_idx: Vec<u32>,
    push_tgt: Vec<(Label, NodeId)>,
}

/// Pre-seal staging: per-node edge vectors, flattened into CSR by
/// [`GraphBuilder::seal`].
struct GraphBuilder {
    dtvs: Vec<DerivedVar>,
    base_ids: FxHashMap<BaseVar, DtvId>,
    children: FxHashMap<(DtvId, Label), DtvId>,
    eps: Vec<Vec<NodeId>>,
    pop: Vec<Vec<(Label, NodeId)>>,
    push: Vec<Vec<(Label, NodeId)>>,
    eps_set: FxHashSet<u64>,
}

impl GraphBuilder {
    fn new() -> GraphBuilder {
        GraphBuilder {
            dtvs: Vec::new(),
            base_ids: FxHashMap::default(),
            children: FxHashMap::default(),
            eps: Vec::new(),
            pop: Vec::new(),
            push: Vec::new(),
            eps_set: FxHashSet::default(),
        }
    }

    fn node_of(id: DtvId, v: Variance) -> NodeId {
        NodeId(id.0 * 2 + if v.is_covariant() { 0 } else { 1 })
    }

    fn new_dtv(&mut self, dv: DerivedVar) -> DtvId {
        let id = DtvId(self.dtvs.len() as u32);
        self.dtvs.push(dv);
        self.eps.push(Vec::new());
        self.eps.push(Vec::new());
        self.pop.push(Vec::new());
        self.pop.push(Vec::new());
        self.push.push(Vec::new());
        self.push.push(Vec::new());
        id
    }

    fn ensure_base(&mut self, base: BaseVar) -> DtvId {
        if let Some(&id) = self.base_ids.get(&base) {
            return id;
        }
        let id = self.new_dtv(DerivedVar::new(base));
        self.base_ids.insert(base, id);
        id
    }

    /// Materializes the child `parent.ℓ` with its pop/push chain edges in
    /// both variance rows.
    fn ensure_child(&mut self, parent: DtvId, label: Label) -> DtvId {
        if let Some(&id) = self.children.get(&(parent, label)) {
            return id;
        }
        let dv = self.dtvs[parent.index()].clone().push(label);
        let id = self.new_dtv(dv);
        self.children.insert((parent, label), id);
        // Chain edges in both variance rows:
        //   (x, v)   --pop ℓ-->  (x.ℓ, v·⟨ℓ⟩)
        //   (x.ℓ, v) --push ℓ--> (x,   v·⟨ℓ⟩)
        for v in [Variance::Covariant, Variance::Contravariant] {
            let x = Self::node_of(parent, v);
            let xl = Self::node_of(id, v.compose(label.variance()));
            self.pop[x.index()].push((label, xl));
            let xl_src = Self::node_of(id, v);
            let x_tgt = Self::node_of(parent, v.compose(label.variance()));
            self.push[xl_src.index()].push((label, x_tgt));
        }
        id
    }

    /// Interns a derived variable (and all its prefixes), walking the
    /// structural interner one label at a time.
    fn ensure_dtv(&mut self, dv: &DerivedVar) -> DtvId {
        let mut id = self.ensure_base(dv.base());
        for &l in dv.path() {
            id = self.ensure_child(id, l);
        }
        id
    }

    /// Adds the ε edges for constraint `l ⊑ r` and its dual `(r,⊖) → (l,⊖)`
    /// — which is exactly the Lemma D.7 mirror of the primary edge.
    fn add_constraint_edges(&mut self, lid: DtvId, rid: DtvId) {
        let from = Self::node_of(lid, Variance::Covariant);
        let to = Self::node_of(rid, Variance::Covariant);
        for (f, t) in [(from, to), (to.mirror(), from.mirror())] {
            if f != t && self.eps_set.insert(eps_key(f, t)) {
                self.eps[f.index()].push(t);
            }
        }
    }

    /// Flattens the per-node lanes into the sealed CSR graph.
    fn seal(self) -> ConstraintGraph {
        fn csr<T: Copy>(lanes: Vec<Vec<T>>) -> (Vec<u32>, Vec<T>) {
            let mut idx = Vec::with_capacity(lanes.len() + 1);
            let total = lanes.iter().map(Vec::len).sum();
            let mut tgt = Vec::with_capacity(total);
            idx.push(0);
            for lane in lanes {
                tgt.extend_from_slice(&lane);
                idx.push(tgt.len() as u32);
            }
            (idx, tgt)
        }
        let n = self.eps.len();
        let (eps_idx, eps_tgt) = csr(self.eps);
        let (pop_idx, pop_tgt) = csr(self.pop);
        let (push_idx, push_tgt) = csr(self.push);
        ConstraintGraph {
            dtvs: self.dtvs,
            base_ids: self.base_ids,
            children: self.children,
            eps_idx,
            eps_tgt,
            eps_delta: vec![Vec::new(); n],
            eps_set: self.eps_set,
            pop_idx,
            pop_tgt,
            push_idx,
            push_tgt,
        }
    }
}

impl ConstraintGraph {
    /// Builds the graph for a constraint set: materializes every prefix of
    /// every mentioned derived variable (in both variances) with its
    /// push/pop chains, and adds the ε edges for each subtype constraint
    /// and its dual.
    ///
    /// The materialized set is additionally closed under swapping `.load` ↔
    /// `.store` at any position. The pushdown system's `∆ptr` rule family
    /// (`v.store ⊑ v.load` for *every* derived variable `v`) can rewrite a
    /// pointer label mid-derivation, so the sibling chain must exist for
    /// saturation's lazy S-POINTER clause to find its pop edge. Sibling
    /// chains that correspond to no real capability are pruned later by the
    /// shape quotient (see [`crate::simplify`]).
    pub fn build(cs: &ConstraintSet) -> ConstraintGraph {
        let mut b = GraphBuilder::new();
        // Materialize every mention, caching the interned constraint
        // endpoints so the ε-edge pass below need not re-walk the paths.
        let endpoint_ids: Vec<(DtvId, DtvId)> = cs
            .subtypes()
            .map(|c| (b.ensure_dtv(&c.lhs), b.ensure_dtv(&c.rhs)))
            .collect();
        for v in cs.var_decls() {
            b.ensure_dtv(v);
        }
        for a in cs.addsubs() {
            b.ensure_dtv(&a.x);
            b.ensure_dtv(&a.y);
            b.ensure_dtv(&a.z);
        }
        // Sibling closure: `dtvs` grows monotonically, so a plain index scan
        // reaches a fixpoint (each variable has finitely many load/store
        // positions to toggle).
        let mut idx = 0;
        while idx < b.dtvs.len() {
            for i in 0..b.dtvs[idx].path().len() {
                let l = b.dtvs[idx].path()[i];
                let swapped = match l {
                    Label::Load => Label::Store,
                    Label::Store => Label::Load,
                    _ => continue,
                };
                let mut path = b.dtvs[idx].path().to_vec();
                path[i] = swapped;
                let base = b.dtvs[idx].base();
                b.ensure_dtv(&DerivedVar::with_path(base, path));
            }
            idx += 1;
        }
        for (lid, rid) in endpoint_ids {
            b.add_constraint_edges(lid, rid);
        }
        b.seal()
    }

    fn node_of(id: DtvId, v: Variance) -> NodeId {
        GraphBuilder::node_of(id, v)
    }

    /// Adds the ε edge `from → to` *and its Lemma D.7 mirror*
    /// `to.mirror() → from.mirror()` to the delta lane. Returns which of the
    /// two was new. This is the only post-seal mutation: saturation's
    /// shortcut rule inserts summary ε edges through it.
    pub fn add_eps_pair(&mut self, from: NodeId, to: NodeId) -> (bool, bool) {
        let a = self.insert_eps(from, to);
        let b = self.insert_eps(to.mirror(), from.mirror());
        // Lemma D.7: every ε insertion must leave the ε relation closed
        // under the mirror involution. `has_eps` consults the dedup set, so
        // a lane/set divergence (a representation bug) fails here, at the
        // insertion site, rather than in a downstream symmetry test.
        debug_assert!(
            (from == to || self.has_eps(from, to))
                && (from == to || self.has_eps(to.mirror(), from.mirror())),
            "ε insertion broke Lemma D.7 mirror symmetry: {from:?} → {to:?}"
        );
        (a, b)
    }

    fn insert_eps(&mut self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        if self.eps_set.insert(eps_key(from, to)) {
            self.eps_delta[from.index()].push(to);
            true
        } else {
            false
        }
    }

    /// True if the ε edge `from → to` is present.
    pub fn has_eps(&self, from: NodeId, to: NodeId) -> bool {
        self.eps_set.contains(&eps_key(from, to))
    }

    /// Looks up the interned id of a derived variable by walking the
    /// structural interner (no path cloning or whole-path hashing).
    pub fn dtv_id(&self, dv: &DerivedVar) -> Option<DtvId> {
        let mut id = *self.base_ids.get(&dv.base())?;
        for &l in dv.path() {
            id = *self.children.get(&(id, l))?;
        }
        Some(id)
    }

    /// Looks up the node for `(dv, variance)` if the dtv is materialized.
    pub fn node(&self, dv: &DerivedVar, v: Variance) -> Option<NodeId> {
        self.dtv_id(dv).map(|id| Self::node_of(id, v))
    }

    /// True if the derived variable is materialized (mentioned in the
    /// constraint set, a prefix of a mention, or in the load/store sibling
    /// closure thereof). Entailment queries between materialized variables
    /// are complete with respect to Figure 3; deeper words are supported
    /// only through the untouched-suffix mechanism (see
    /// [`crate::transducer::accepts`]).
    pub fn contains(&self, dv: &DerivedVar) -> bool {
        self.dtv_id(dv).is_some()
    }

    /// The derived variable of a node.
    pub fn dtv(&self, n: NodeId) -> &DerivedVar {
        &self.dtvs[n.dtv_id().index()]
    }

    /// Resolves an interned id.
    pub fn resolve_dtv(&self, id: DtvId) -> &DerivedVar {
        &self.dtvs[id.index()]
    }

    /// Number of interned derived variables.
    pub fn dtv_count(&self) -> usize {
        self.dtvs.len()
    }

    /// ε successors of a node (base CSR lane, then the delta lane).
    pub fn eps_out(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let r = self.eps_idx[n.index()] as usize..self.eps_idx[n.index() + 1] as usize;
        self.eps_tgt[r]
            .iter()
            .chain(self.eps_delta[n.index()].iter())
            .copied()
    }

    /// Number of ε successors of `n` right now. Paired with
    /// [`ConstraintGraph::eps_out_nth`] this supports stable indexed
    /// iteration while the delta lane grows (it is append-only).
    pub fn eps_out_len(&self, n: NodeId) -> usize {
        (self.eps_idx[n.index() + 1] - self.eps_idx[n.index()]) as usize
            + self.eps_delta[n.index()].len()
    }

    /// The `i`-th ε successor of `n` (base lane first, then delta).
    pub fn eps_out_nth(&self, n: NodeId, i: usize) -> NodeId {
        let base = (self.eps_idx[n.index() + 1] - self.eps_idx[n.index()]) as usize;
        if i < base {
            self.eps_tgt[self.eps_idx[n.index()] as usize + i]
        } else {
            self.eps_delta[n.index()][i - base]
        }
    }

    /// Pop successors of a node: `(label, target)` pairs.
    pub fn pop_out(&self, n: NodeId) -> &[(Label, NodeId)] {
        &self.pop_tgt[self.pop_idx[n.index()] as usize..self.pop_idx[n.index() + 1] as usize]
    }

    /// The range of `n`'s pop edges within [`ConstraintGraph::pop_edges`]
    /// (the pop partition is immutable after build, so indices are stable).
    pub fn pop_range(&self, n: NodeId) -> Range<usize> {
        self.pop_idx[n.index()] as usize..self.pop_idx[n.index() + 1] as usize
    }

    /// The flat pop partition (indexable via [`ConstraintGraph::pop_range`]).
    pub fn pop_edges(&self) -> &[(Label, NodeId)] {
        &self.pop_tgt
    }

    /// Push successors of a node: `(label, target)` pairs.
    pub fn push_out(&self, n: NodeId) -> &[(Label, NodeId)] {
        &self.push_tgt[self.push_idx[n.index()] as usize..self.push_idx[n.index() + 1] as usize]
    }

    /// All outgoing edges of a node, ε partition first. Prefer the
    /// partitioned accessors ([`ConstraintGraph::eps_out`],
    /// [`ConstraintGraph::pop_out`], [`ConstraintGraph::push_out`]) in hot
    /// loops — this combined view exists for whole-graph walks (display,
    /// reverse adjacency, extraction).
    pub fn edges_out(&self, n: NodeId) -> impl Iterator<Item = Edge> + '_ {
        self.eps_out(n)
            .map(|to| Edge {
                to,
                kind: EdgeKind::Eps,
            })
            .chain(self.pop_out(n).iter().map(|&(l, to)| Edge {
                to,
                kind: EdgeKind::Pop(l),
            }))
            .chain(self.push_out(n).iter().map(|&(l, to)| Edge {
                to,
                kind: EdgeKind::Push(l),
            }))
    }

    /// Number of nodes (twice the number of materialized dtvs).
    pub fn node_count(&self) -> usize {
        self.dtvs.len() * 2
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.eps_set.len() + self.pop_tgt.len() + self.push_tgt.len()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterates over all materialized derived variables.
    pub fn dtvs(&self) -> impl Iterator<Item = &DerivedVar> {
        self.dtvs.iter()
    }

    /// All nodes whose dtv is the bare `base` variable.
    pub fn base_nodes(&self, base: BaseVar) -> Vec<NodeId> {
        match self.base_ids.get(&base) {
            Some(&id) => vec![
                Self::node_of(id, Variance::Covariant),
                Self::node_of(id, Variance::Contravariant),
            ],
            None => vec![],
        }
    }

    /// The set of base variables appearing in the graph.
    pub fn bases(&self) -> BTreeSet<BaseVar> {
        self.dtvs.iter().map(|d| d.base()).collect()
    }

    /// Builds the reverse adjacency list (for backward reachability).
    pub fn reverse_adjacency(&self) -> Vec<Vec<Edge>> {
        let mut rev = vec![Vec::new(); self.node_count()];
        for n in self.nodes() {
            for e in self.edges_out(n) {
                rev[e.to.index()].push(Edge { to: n, kind: e.kind });
            }
        }
        rev
    }
}

impl fmt::Display for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for n in self.nodes() {
            for e in self.edges_out(n) {
                let kind = match e.kind {
                    EdgeKind::Eps => "ε".to_owned(),
                    EdgeKind::Pop(l) => format!("pop {l}"),
                    EdgeKind::Push(l) => format!("push {l}"),
                };
                writeln!(
                    f,
                    "({}, {}) --{}--> ({}, {})",
                    self.dtv(n),
                    n.variance(),
                    kind,
                    self.dtv(e.to),
                    e.to.variance()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_constraint_set;

    #[test]
    fn chains_materialize_with_variance() {
        let cs = parse_constraint_set("p.load.σ32@0 <= x").unwrap();
        let g = ConstraintGraph::build(&cs);
        // dtvs: p, p.load, p.load.σ32@0, x, plus the sibling-closure chain
        // p.store, p.store.σ32@0 → 12 nodes.
        assert_eq!(g.node_count(), 12);
        let p = crate::parse::parse_derived_var("p").unwrap();
        let pl = crate::parse::parse_derived_var("p.load").unwrap();
        let n_p = g.node(&p, Variance::Covariant).unwrap();
        // (p,⊕) --pop load--> (p.load,⊕)
        let has_pop = g
            .pop_out(n_p)
            .iter()
            .any(|&(l, to)| l == Label::Load && g.dtv(to) == &pl);
        assert!(has_pop);
    }

    #[test]
    fn store_chain_flips_variance() {
        let cs = parse_constraint_set("x <= p.store").unwrap();
        let g = ConstraintGraph::build(&cs);
        let p = crate::parse::parse_derived_var("p").unwrap();
        let ps = crate::parse::parse_derived_var("p.store").unwrap();
        let n_ps_co = g.node(&ps, Variance::Covariant).unwrap();
        // (p.store,⊕) --push store--> (p,⊖): variance flips through store.
        let pushes: Vec<_> = g
            .push_out(n_ps_co)
            .iter()
            .filter(|(l, _)| *l == Label::Store)
            .collect();
        assert_eq!(pushes.len(), 1);
        assert_eq!(g.dtv(pushes[0].1), &p);
        assert_eq!(pushes[0].1.variance(), Variance::Contravariant);
    }

    #[test]
    fn constraint_edges_have_duals() {
        let cs = parse_constraint_set("a <= b").unwrap();
        let g = ConstraintGraph::build(&cs);
        let a = DerivedVar::var("a");
        let b = DerivedVar::var("b");
        let a_co = g.node(&a, Variance::Covariant).unwrap();
        let b_contra = g.node(&b, Variance::Contravariant).unwrap();
        assert!(g.eps_out(a_co).any(|to| g.dtv(to) == &b));
        assert!(g.eps_out(b_contra).any(|to| g.dtv(to) == &a));
    }

    #[test]
    fn mirror_involution() {
        let n = NodeId(4);
        assert_eq!(n.variance(), Variance::Covariant);
        assert_eq!(n.mirror().variance(), Variance::Contravariant);
        assert_eq!(n.mirror().mirror(), n);
    }

    #[test]
    fn dtv_interning_is_structural() {
        let cs = parse_constraint_set("p.load.σ32@0 <= x").unwrap();
        let g = ConstraintGraph::build(&cs);
        let pl = crate::parse::parse_derived_var("p.load").unwrap();
        let id = g.dtv_id(&pl).expect("materialized");
        assert_eq!(g.resolve_dtv(id), &pl);
        // Unmaterialized words miss without panicking.
        let deep = crate::parse::parse_derived_var("p.load.load").unwrap();
        assert!(g.dtv_id(&deep).is_none());
        assert!(!g.contains(&deep));
    }

    #[test]
    fn eps_pair_insertion_is_mirror_symmetric() {
        let cs = parse_constraint_set("a <= b; c <= d").unwrap();
        let mut g = ConstraintGraph::build(&cs);
        let a = g
            .node(&DerivedVar::var("a"), Variance::Covariant)
            .unwrap();
        let d = g
            .node(&DerivedVar::var("d"), Variance::Covariant)
            .unwrap();
        let (new_fwd, new_mirror) = g.add_eps_pair(a, d);
        assert!(new_fwd && new_mirror);
        assert!(g.has_eps(a, d));
        assert!(g.has_eps(d.mirror(), a.mirror()));
        // Re-insertion is a no-op in both lanes.
        assert_eq!(g.add_eps_pair(a, d), (false, false));
        assert!(g.eps_out(a).any(|t| t == d));
        assert!(g.eps_out(d.mirror()).any(|t| t == a.mirror()));
    }
}
