//! The load generator: replays a generated corpus against a server and
//! reports latency, throughput, and cache behavior as JSON.
//!
//! ```text
//! # Self-hosted (spawns an in-process server):
//! cargo run --release -p retypd-serve --bin loadgen -- --small --out serve-load.json
//! # Against an external server (CI starts `serve` in the background):
//! cargo run --release -p retypd-serve --bin loadgen -- --small --addr 127.0.0.1:7411
//! ```
//!
//! Two passes over the same corpus — cold, then warm — at a target
//! concurrency (one connection per worker thread). The warm pass must be a
//! shard-cache re-hit: the run *asserts* that the warm hit rate is ≥ 90%,
//! that warm p50 latency is strictly below cold p50, and that every report
//! from both passes is bit-identical (canonical text) to a sequential
//! in-process `Solver::infer` of the same module — so a routing bug, a
//! cache bug, or a wire round-trip bug fails the run rather than skewing
//! the numbers.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use retypd_core::{Lattice, Solver};
use retypd_driver::ModuleJob;
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{ClusterSpec, ProgramGenerator};
use retypd_serve::wire::WireReport;
use retypd_serve::{start, Client, ServeConfig};

struct PassOutcome {
    latencies_ns: Vec<u64>,
    wall: Duration,
    hits: u64,
    misses: u64,
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx]
}

/// Replays every job once across `concurrency` clients (one connection
/// each, work distributed by an atomic cursor), collecting per-request
/// latency and verifying each report against the sequential reference.
fn run_pass(
    addr: std::net::SocketAddr,
    jobs: &[ModuleJob],
    references: &[String],
    concurrency: usize,
    shard_counters: impl Fn() -> (u64, u64),
) -> PassOutcome {
    let cursor = AtomicUsize::new(0);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(jobs.len()));
    let (hits0, misses0) = shard_counters();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..concurrency.max(1) {
            scope.spawn(|| {
                let mut client = Client::connect_retry(addr, Duration::from_secs(10))
                    .expect("connect to server");
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let req_start = Instant::now();
                    let report: WireReport =
                        client.solve_module(&jobs[i]).expect("solve request");
                    let lat = req_start.elapsed().as_nanos() as u64;
                    assert_eq!(
                        report.canonical_text(),
                        references[i],
                        "module {} diverged from sequential Solver::infer",
                        jobs[i].name
                    );
                    latencies.lock().expect("latency vec").push(lat);
                }
            });
        }
    });
    let wall = start.elapsed();
    let (hits1, misses1) = shard_counters();
    let mut latencies_ns = latencies.into_inner().expect("latency vec");
    latencies_ns.sort_unstable();
    PassOutcome {
        latencies_ns,
        wall,
        hits: hits1 - hits0,
        misses: misses1 - misses0,
    }
}

fn pass_json(name: &str, p: &PassOutcome, requests: usize) -> String {
    let hit_rate = if p.hits + p.misses == 0 {
        0.0
    } else {
        p.hits as f64 / (p.hits + p.misses) as f64
    };
    format!(
        "  \"{name}\": {{\"requests\": {requests}, \"wall_ns\": {}, \
         \"throughput_rps\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.3}}}",
        p.wall.as_nanos(),
        requests as f64 / p.wall.as_secs_f64().max(1e-9),
        percentile(&p.latencies_ns, 50),
        percentile(&p.latencies_ns, 95),
        p.latencies_ns.last().copied().unwrap_or(0),
        p.hits,
        p.misses,
        hit_rate,
    )
}

fn main() {
    let mut small = false;
    let mut addr_arg: Option<String> = None;
    let mut shards_arg: Option<usize> = None;
    let mut concurrency = 4usize;
    let mut out_path: Option<String> = None;
    let mut shutdown_server = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--small" => small = true,
            "--addr" => addr_arg = args.next(),
            "--shutdown" => shutdown_server = true,
            "--shards" => {
                shards_arg = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| {
                            eprintln!("--shards expects a positive integer");
                            std::process::exit(2);
                        }),
                )
            }
            "--concurrency" => {
                concurrency = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--concurrency expects a positive integer");
                        std::process::exit(2);
                    })
            }
            "--out" => out_path = args.next(),
            other => {
                eprintln!(
                    "unknown argument {other}; usage: loadgen [--small] [--addr HOST:PORT] \
                     [--shards N] [--concurrency N] [--out FILE] [--shutdown]"
                );
                std::process::exit(2);
            }
        }
    }
    // `--shards` only shapes the in-process server; an external server
    // keeps its own shard count, so combining the flags would silently
    // misattribute the per-shard numbers in the report. Reject before the
    // corpus generation and reference solves, which cost seconds.
    if addr_arg.is_some() && shards_arg.is_some() {
        eprintln!(
            "--shards configures the in-process server and cannot be combined with \
             --addr (the external server's own shard count applies)"
        );
        std::process::exit(2);
    }

    // --- Corpus: the same deep cluster shape as `driver_demo` (shared
    // library + per-member code + a 6-deep call chain). ---
    let spec = if small {
        ClusterSpec {
            name: "load".into(),
            members: 4,
            shared_functions: 8,
            member_functions: 3,
            seed: 7171,
            call_depth: 6,
        }
    } else {
        ClusterSpec {
            name: "load".into(),
            members: 8,
            shared_functions: 20,
            member_functions: 8,
            seed: 7171,
            call_depth: 6,
        }
    };
    let jobs: Vec<ModuleJob> = ProgramGenerator::generate_cluster(&spec)
        .iter()
        .map(|(name, module)| {
            let (mir, _) = compile(module).expect("generated module compiles");
            ModuleJob {
                name: name.clone(),
                program: retypd_congen::generate(&mir),
            }
        })
        .collect();

    // --- Sequential in-process reference for every module. ---
    let lattice = Lattice::c_types();
    let references: Vec<String> = jobs
        .iter()
        .map(|j| {
            WireReport::from_result(&j.name, &Solver::new(&lattice).infer(&j.program))
                .canonical_text()
        })
        .collect();

    // --- Target server: external (`--addr`) or spawned in-process. ---
    let spawned = if addr_arg.is_none() {
        let mut config = ServeConfig {
            addr: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        };
        if let Some(shards) = shards_arg {
            config.shards = shards;
        }
        Some(start(config).expect("spawn in-process server"))
    } else {
        None
    };
    let addr: std::net::SocketAddr = match (&spawned, &addr_arg) {
        (Some(handle), _) => handle.addr(),
        (None, Some(a)) => {
            use std::net::ToSocketAddrs as _;
            a.to_socket_addrs()
                .ok()
                .and_then(|mut it| it.next())
                .unwrap_or_else(|| {
                    eprintln!("--addr {a} does not resolve");
                    std::process::exit(2);
                })
        }
        (None, None) => unreachable!(),
    };

    let shard_counters = || {
        let mut client =
            Client::connect_retry(addr, Duration::from_secs(10)).expect("connect for stats");
        let stats = client.stats().expect("stats request");
        let hits: u64 = stats.shards.iter().map(|s| s.cache.hits).sum();
        let misses: u64 = stats.shards.iter().map(|s| s.cache.misses).sum();
        (hits, misses)
    };

    eprintln!(
        "corpus: {} modules, target {addr}, concurrency {concurrency}",
        jobs.len()
    );
    let cold = run_pass(addr, &jobs, &references, concurrency, shard_counters);
    eprintln!(
        "cold: p50 {:.3?} p95 {:.3?} ({} hits / {} misses)",
        Duration::from_nanos(percentile(&cold.latencies_ns, 50)),
        Duration::from_nanos(percentile(&cold.latencies_ns, 95)),
        cold.hits,
        cold.misses
    );
    let warm = run_pass(addr, &jobs, &references, concurrency, shard_counters);
    eprintln!(
        "warm: p50 {:.3?} p95 {:.3?} ({} hits / {} misses)",
        Duration::from_nanos(percentile(&warm.latencies_ns, 50)),
        Duration::from_nanos(percentile(&warm.latencies_ns, 95)),
        warm.hits,
        warm.misses
    );

    // --- Acceptance assertions (see module docs). ---
    let warm_hit_rate = warm.hits as f64 / ((warm.hits + warm.misses) as f64).max(1.0);
    assert!(
        warm_hit_rate >= 0.9,
        "warm pass must re-hit its shard caches: hit rate {warm_hit_rate:.3}"
    );
    let (cold_p50, warm_p50) = (
        percentile(&cold.latencies_ns, 50),
        percentile(&warm.latencies_ns, 50),
    );
    assert!(
        warm_p50 < cold_p50,
        "warm p50 ({warm_p50} ns) must beat cold p50 ({cold_p50} ns)"
    );
    eprintln!(
        "verified: all reports bit-identical to sequential Solver::infer ✓, \
         warm hit rate {:.0}% ✓, warm p50 {:.2}x faster ✓",
        100.0 * warm_hit_rate,
        cold_p50 as f64 / warm_p50.max(1) as f64
    );

    // --- Final per-shard stats + JSON report. ---
    let mut client = Client::connect_retry(addr, Duration::from_secs(10)).expect("connect");
    let stats = client.stats().expect("stats");
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"modules\": {}, \"concurrency\": {concurrency},\n",
        jobs.len()
    ));
    json.push_str(&pass_json("cold", &cold, jobs.len()));
    json.push_str(",\n");
    json.push_str(&pass_json("warm", &warm, jobs.len()));
    json.push_str(",\n  \"shards\": [\n");
    for (i, s) in stats.shards.iter().enumerate() {
        let rate = if s.cache.hits + s.cache.misses == 0 {
            0.0
        } else {
            s.cache.hits as f64 / (s.cache.hits + s.cache.misses) as f64
        };
        json.push_str(&format!(
            "    {{\"shard\": {}, \"jobs\": {}, \"hits\": {}, \"misses\": {}, \
             \"evictions\": {}, \"hit_rate\": {rate:.3}}}{}\n",
            s.shard,
            s.jobs,
            s.cache.hits,
            s.cache.misses,
            s.cache.evictions,
            if i + 1 == stats.shards.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"accepted\": {}, \"rejected\": {}, \"verified\": true\n}}\n",
        stats.accepted, stats.rejected
    ));

    if shutdown_server {
        // Drain the external server too (CI runs it as a background
        // process and waits for a clean exit).
        client.shutdown().expect("server drains");
    }
    if let Some(handle) = spawned {
        handle.shutdown();
    }
    match out_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write loadgen JSON");
            eprintln!("wrote {p}");
        }
        None => {
            std::io::stdout().write_all(json.as_bytes()).expect("stdout");
        }
    }
}
