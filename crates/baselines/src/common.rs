//! The common inferred-type representation scored by the evaluation.

use std::collections::BTreeMap;
use std::fmt;

use retypd_core::{Loc, Symbol};

/// A bounded-depth inferred type tree with lattice-interval leaves.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InfTy {
    /// No information.
    Unknown,
    /// A scalar with `[lower, upper]` lattice bounds and a display mark.
    Scalar {
        /// Display mark (lattice element name).
        mark: String,
        /// Lower bound name.
        lower: String,
        /// Upper bound name.
        upper: String,
    },
    /// A pointer.
    Ptr(Box<InfTy>),
    /// A record with fields at byte offsets.
    Struct(Vec<(i32, InfTy)>),
}

impl InfTy {
    /// Number of pointer levels along the leftmost spine.
    pub fn pointer_depth(&self) -> u32 {
        match self {
            InfTy::Ptr(p) => 1 + p.pointer_depth(),
            InfTy::Struct(fields) => fields
                .iter()
                .find(|(o, _)| *o == 0)
                .map(|(_, t)| t.pointer_depth())
                .unwrap_or(0),
            _ => 0,
        }
    }
}

impl fmt::Display for InfTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfTy::Unknown => f.write_str("?"),
            InfTy::Scalar { mark, lower, upper } => {
                if lower == upper {
                    write!(f, "{mark}")
                } else {
                    write!(f, "{mark}[{lower},{upper}]")
                }
            }
            InfTy::Ptr(p) => write!(f, "{p}*"),
            InfTy::Struct(fields) => {
                f.write_str("{ ")?;
                for (o, t) in fields {
                    write!(f, "@{o}:{t}; ")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// One function's inferred interface.
#[derive(Clone, Debug, Default)]
pub struct InferredFunc {
    /// Parameter types by location.
    pub params: BTreeMap<Loc, InfTy>,
    /// `const` flags per pointer parameter location.
    pub const_params: BTreeMap<Loc, bool>,
    /// Return type, if any.
    pub ret: Option<InfTy>,
}

/// A whole program's inferred interfaces, keyed by function name.
pub type InferredProgram = BTreeMap<Symbol, InferredFunc>;
