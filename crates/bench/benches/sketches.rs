//! Criterion benchmark: sketch lattice operations (Figure 18).

use criterion::{criterion_group, criterion_main, Criterion};
use retypd_core::graph::ConstraintGraph;
use retypd_core::parse::parse_constraint_set;
use retypd_core::saturation::saturate;
use retypd_core::shapes::ShapeQuotient;
use retypd_core::{BaseVar, Lattice, Sketch};

fn sketch_for(src: &str, lattice: &Lattice) -> Sketch {
    let cs = parse_constraint_set(src).unwrap();
    let mut g = ConstraintGraph::build(&cs);
    saturate(&mut g);
    let q = ShapeQuotient::build(&cs);
    let consts: Vec<BaseVar> = cs.base_vars().into_iter().filter(|b| b.is_const()).collect();
    Sketch::infer(BaseVar::var("f"), &g, &q, lattice, &consts).unwrap()
}

fn bench(c: &mut Criterion) {
    let lattice = Lattice::c_types();
    let a = sketch_for(
        "f.in_stack0 <= t; t.load.σ32@0 <= t; t.load.σ32@4 <= int; int <= f.out_eax",
        &lattice,
    );
    let b2 = sketch_for(
        "f.in_stack0 <= u; int <= u.store.σ32@0; u.load.σ32@8 <= #FileDescriptor",
        &lattice,
    );
    c.bench_function("sketch_meet", |b| b.iter(|| a.meet(&b2, &lattice)));
    c.bench_function("sketch_join", |b| b.iter(|| a.join(&b2, &lattice)));
    c.bench_function("sketch_leq", |b| b.iter(|| a.leq(&b2, &lattice)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
