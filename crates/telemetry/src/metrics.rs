//! Metrics registry: atomic counters, gauges, and fixed-bucket log-scale
//! histograms.
//!
//! The record path is lock-free: every instrument is a fistful of atomics,
//! and callers hold an `Arc` to the instrument so recording never touches
//! the registry lock (the lock exists only for registration and snapshots).
//!
//! # Bucket scheme
//!
//! Histograms use a fixed 256-bucket layout chosen for *determinism under
//! merging*, not for minimal error:
//!
//! - values `0..16` land in sixteen exact unit buckets;
//! - values `>= 16` land in log2 octaves split into 4 sub-buckets each
//!   (the leading bit picks the octave, the next two bits the sub-bucket),
//!   covering the full `u64` range.
//!
//! A quantile is reported as the *inclusive upper bound* of the bucket that
//! contains the target rank. Because that bound is a pure function of the
//! bucket index, merged histograms report bit-identical quantiles no matter
//! how the same samples were sharded before the merge — the property the
//! serve layer's 1-vs-N-shard determinism tests pin.

use loom::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};

/// Number of exact unit buckets at the bottom of the range.
const LINEAR_BUCKETS: usize = 16;
/// Sub-buckets per log2 octave above the linear range.
const SUB_BUCKETS: usize = 4;
/// Total bucket count: 16 linear + 4 per octave for octaves 4..=63.
pub const NUM_BUCKETS: usize = LINEAR_BUCKETS + (64 - 4) * SUB_BUCKETS;

/// Map a sample to its bucket index. Total (every `u64` has a bucket).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_BUCKETS as u64 {
        value as usize
    } else {
        // Leading-one position is >= 4 here; the two bits below it pick the
        // sub-bucket within the octave.
        let msb = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (msb - 2)) & 0b11) as usize;
        LINEAR_BUCKETS + (msb - 4) * SUB_BUCKETS + sub
    }
}

/// Inclusive upper bound of a bucket — the deterministic value quantiles
/// report. Pure function of the index, independent of recorded samples.
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    if index < LINEAR_BUCKETS {
        index as u64
    } else {
        let msb = 4 + (index - LINEAR_BUCKETS) / SUB_BUCKETS;
        let sub = (index - LINEAR_BUCKETS) % SUB_BUCKETS;
        // The bucket holds values [ (4+sub) << (msb-2), ((5+sub) << (msb-2)) - 1 ].
        let upper = ((4 + sub as u128) + 1) << (msb - 2);
        u64::try_from(upper - 1).unwrap_or(u64::MAX)
    }
}

/// Monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log-scale histogram with a lock-free record path.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        // `AtomicU64` is not Copy; build the boxed array through a Vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("bucket count");
        Self { buckets, count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Three relaxed atomic adds; no locks, no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (concurrent recording may skew
    /// `count` vs buckets by in-flight samples; quiesced reads are exact).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Owned copy of a histogram's state. Merging is plain per-bucket addition,
/// so it is associative and commutative by construction.
#[derive(Clone)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; NUM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { count: 0, sum: 0, buckets: [0; NUM_BUCKETS] }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.quantile(50, 100))
            .field("p99", &self.quantile(99, 100))
            .finish()
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot in (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }

    /// The `numer/denom` quantile as the inclusive upper bound of the bucket
    /// containing that rank. `quantile(50, 100)` is the median. Returns 0 on
    /// an empty histogram.
    pub fn quantile(&self, numer: u64, denom: u64) -> u64 {
        assert!(denom > 0 && numer <= denom);
        if self.count == 0 {
            return 0;
        }
        // ceil(count * numer / denom), clamped to at least rank 1.
        let rank =
            ((self.count as u128 * numer as u128 + denom as u128 - 1) / denom as u128).max(1);
        let mut seen: u128 = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c as u128;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(NUM_BUCKETS - 1)
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs, in
    /// ascending bound order — the wire representation.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bound(i), c))
            .collect()
    }

    /// Rebuild a snapshot from `(upper_bound, count)` pairs as produced by
    /// [`Self::nonzero_buckets`]. Pairs whose bound is not a bucket bound are
    /// ignored. `sum` cannot be reconstructed from bounds, so it is taken as
    /// an argument.
    pub fn from_buckets(pairs: &[(u64, u64)], sum: u64) -> Self {
        let mut s = HistogramSnapshot { count: 0, sum, buckets: [0; NUM_BUCKETS] };
        for &(bound, c) in pairs {
            let idx = bucket_index(bound);
            if bucket_bound(idx) == bound {
                s.buckets[idx] += c;
                s.count += c;
            }
        }
        s
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named instrument store. Registration and snapshots take a mutex; the
/// instruments themselves are handed out as `Arc`s so the record path never
/// comes back here.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Instrument)>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Registry { .. }")
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter with this name.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different instrument
    /// kind — that is always a programming error worth failing loudly on.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        for (n, inst) in inner.iter() {
            if n == name {
                match inst {
                    Instrument::Counter(c) => return Arc::clone(c),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
        }
        let c = Arc::new(Counter::new());
        inner.push((name.to_string(), Instrument::Counter(Arc::clone(&c))));
        c
    }

    /// Get or register the gauge with this name (same panic contract as
    /// [`Self::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        for (n, inst) in inner.iter() {
            if n == name {
                match inst {
                    Instrument::Gauge(g) => return Arc::clone(g),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
        }
        let g = Arc::new(Gauge::new());
        inner.push((name.to_string(), Instrument::Gauge(Arc::clone(&g))));
        g
    }

    /// Get or register the histogram with this name (same panic contract as
    /// [`Self::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        for (n, inst) in inner.iter() {
            if n == name {
                match inst {
                    Instrument::Histogram(h) => return Arc::clone(h),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
        }
        let h = Arc::new(Histogram::new());
        inner.push((name.to_string(), Instrument::Histogram(Arc::clone(&h))));
        h
    }

    /// Point-in-time copy of every instrument, name-sorted for determinism.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, inst) in inner.iter() {
            match inst {
                Instrument::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Instrument::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Instrument::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap.sort();
        snap
    }
}

/// Merged, name-sorted view of one or more registries — the thing the wire
/// `metrics` request serializes and the text exposition renders.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Merge another snapshot in: counters and gauges with the same name sum
    /// (shard gauges are per-shard quantities, so the merged value is the
    /// fleet total); histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, cur)) => *cur += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, cur)) => *cur += v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, cur)) => cur.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.sort();
    }

    /// Prometheus-style text exposition. Counter/gauge lines plus, per
    /// histogram, cumulative `_bucket{le=..}` lines and `_count`/`_sum`.
    pub fn to_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (bound, c) in h.nonzero_buckets() {
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_total_and_monotone() {
        // Spot-check monotonicity over a sweep of the whole range.
        let mut prev = bucket_index(0);
        let mut v = 0u64;
        loop {
            let idx = bucket_index(v);
            assert!(idx >= prev, "bucket index regressed at {v}");
            assert!(idx < NUM_BUCKETS);
            assert!(bucket_bound(idx) >= v, "bound below sample at {v}");
            prev = idx;
            v = if v < 1024 { v + 1 } else { v.saturating_mul(2).saturating_add(7) };
            if v == u64::MAX {
                assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
                break;
            }
        }
    }

    #[test]
    fn bucket_boundary_pins() {
        // Exact unit buckets below 16.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
        // First octave: 16..32 in four sub-buckets of width 4.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(19), 16);
        assert_eq!(bucket_index(20), 17);
        assert_eq!(bucket_index(31), 19);
        assert_eq!(bucket_bound(16), 19);
        assert_eq!(bucket_bound(19), 31);
        // Octave starts are always a fresh bucket whose lower bound is the
        // previous bucket's bound + 1.
        for msb in 4..63 {
            let start = 1u64 << msb;
            let idx = bucket_index(start);
            assert_eq!(bucket_bound(idx - 1) + 1, start);
        }
        // Top of the range.
        assert_eq!(bucket_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_bounds_and_deterministic() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 200, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        let p50 = s.quantile(50, 100);
        // Rank ceil(6*0.5)=3 → the bucket holding sample `3`.
        assert_eq!(p50, 3);
        // Every reported quantile is some bucket's bound.
        for (n, d) in [(1, 100), (50, 100), (95, 100), (99, 100), (1, 1)] {
            let q = s.quantile(n, d);
            assert_eq!(bucket_bound(bucket_index(q)), q);
        }
        assert_eq!(s.quantile(1, 1), bucket_bound(bucket_index(5000)));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(50, 100), 0);
    }

    #[test]
    fn merge_is_associative_and_commutative_across_shardings() {
        // Deterministic sample stream, sharded three different ways; merged
        // quantiles must be bit-identical to the unsharded histogram's.
        let samples: Vec<u64> =
            (0..5000u64).map(|i| (i.wrapping_mul(2654435761) >> 7) % 1_000_000).collect();

        let whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let reference = whole.snapshot();

        for shards in [1usize, 2, 3, 7] {
            let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
            for (i, &s) in samples.iter().enumerate() {
                parts[i % shards].record(s);
            }
            // Merge left-to-right...
            let mut merged = HistogramSnapshot::default();
            for p in &parts {
                merged.merge(&p.snapshot());
            }
            // ...and right-to-left.
            let mut merged_rev = HistogramSnapshot::default();
            for p in parts.iter().rev() {
                merged_rev.merge(&p.snapshot());
            }
            for (n, d) in [(50u64, 100u64), (95, 100), (99, 100)] {
                let q = reference.quantile(n, d);
                assert_eq!(merged.quantile(n, d), q, "shards={shards} p{n}");
                assert_eq!(merged_rev.quantile(n, d), q, "shards={shards} rev p{n}");
            }
            assert_eq!(merged.count, reference.count);
            assert_eq!(merged.sum, reference.sum);
            assert_eq!(merged.buckets, reference.buckets);
        }

        // Associativity: (a+b)+c == a+(b+c) on an uneven 3-way split.
        let thirds: Vec<HistogramSnapshot> = [0..100, 100..1500, 1500..5000]
            .into_iter()
            .map(|r| {
                let h = Histogram::new();
                for &s in &samples[r] {
                    h.record(s);
                }
                h.snapshot()
            })
            .collect();
        let mut left = thirds[0].clone();
        left.merge(&thirds[1]);
        left.merge(&thirds[2]);
        let mut right = thirds[1].clone();
        right.merge(&thirds[2]);
        let mut outer = thirds[0].clone();
        outer.merge(&right);
        assert_eq!(left.buckets, outer.buckets);
        assert_eq!(left.count, outer.count);
        assert_eq!(left.sum, outer.sum);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 20_000u64;
        // retypd-lint: allow(no-raw-thread) scoped spawns are not modeled
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record((t as u64).wrapping_mul(1_000_003).wrapping_add(i) % 50_000);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads as u64 * per_thread);
        assert_eq!(s.buckets.iter().map(|&c| c as u128).sum::<u128>(), s.count as u128);
    }

    #[test]
    fn wire_bucket_round_trip_preserves_quantiles() {
        let h = Histogram::new();
        for v in 0..10_000u64 {
            h.record(v * 37 % 90_000);
        }
        let s = h.snapshot();
        let rebuilt = HistogramSnapshot::from_buckets(&s.nonzero_buckets(), s.sum);
        assert_eq!(rebuilt.count, s.count);
        assert_eq!(rebuilt.buckets, s.buckets);
        for (n, d) in [(50u64, 100u64), (95, 100), (99, 100)] {
            assert_eq!(rebuilt.quantile(n, d), s.quantile(n, d));
        }
    }

    #[test]
    fn registry_snapshot_and_text_exposition() {
        let r = Registry::new();
        r.counter("requests.total").add(3);
        r.gauge("cache.entries").set(42);
        let h = r.histogram("latency.ns");
        h.record(10);
        h.record(1000);
        // Re-registration returns the same instrument.
        r.counter("requests.total").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("requests.total".into(), 4)]);
        assert_eq!(snap.gauges, vec![("cache.entries".into(), 42)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 2);

        let text = snap.to_text();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 4"));
        assert!(text.contains("cache_entries 42"));
        assert!(text.contains("latency_ns_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn snapshot_merge_sums_by_name() {
        let a = Registry::new();
        a.counter("jobs").add(2);
        let ha = a.histogram("h");
        ha.record(5);
        let b = Registry::new();
        b.counter("jobs").add(3);
        b.counter("only_b").inc();
        let hb = b.histogram("h");
        hb.record(7);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counters, vec![("jobs".into(), 5), ("only_b".into(), 1)]);
        assert_eq!(m.histograms[0].1.count, 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
