//! §6.4: recovery of pointer-parameter `const` annotations
//! (paper: 98% recall).

use retypd_bench::{clusters, generate_single, pct, SINGLES};
use retypd_core::Lattice;
use retypd_eval::harness::evaluate_module;
use retypd_minic::genprog::ProgramGenerator;

fn main() {
    let lattice = Lattice::c_types();
    let mut found = 0.0f64;
    let mut total = 0usize;
    println!("§6.4 const-correctness recall, per benchmark:");
    for spec in clusters() {
        for (name, module) in ProgramGenerator::generate_cluster(&spec) {
            let r = evaluate_module(&name, &module, &lattice);
            let m = r.scores.retypd;
            if m.const_truths > 0 {
                println!("  {:<24} {:>5}  ({} const params)", name, pct(m.const_recall), m.const_truths);
                found += m.const_recall * m.const_truths as f64;
                total += m.const_truths;
            }
        }
    }
    for spec in SINGLES {
        let module = generate_single(spec);
        let r = evaluate_module(spec.name, &module, &lattice);
        let m = r.scores.retypd;
        if m.const_truths > 0 {
            println!("  {:<24} {:>5}  ({} const params)", spec.name, pct(m.const_recall), m.const_truths);
            found += m.const_recall * m.const_truths as f64;
            total += m.const_truths;
        }
    }
    println!("{}", "-".repeat(44));
    println!(
        "overall const recall: {} over {} annotated params  (paper: 98%)",
        pct(found / total.max(1) as f64),
        total
    );
}
