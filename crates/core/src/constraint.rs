//! Type constraints and constraint sets (Definition 3.3).

use std::collections::BTreeSet;
use std::fmt;

use crate::dtv::DerivedVar;

/// A subtyping constraint `X ⊑ Y` between derived type variables.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SubtypeConstraint {
    /// The subtype side.
    pub lhs: DerivedVar,
    /// The supertype side.
    pub rhs: DerivedVar,
}

impl SubtypeConstraint {
    /// Creates the constraint `lhs ⊑ rhs`.
    pub fn new(lhs: DerivedVar, rhs: DerivedVar) -> SubtypeConstraint {
        SubtypeConstraint { lhs, rhs }
    }
}

impl fmt::Display for SubtypeConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ⊑ {}", self.lhs, self.rhs)
    }
}

/// Whether an additive constraint arose from an addition or a subtraction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AddSubKind {
    /// `z = x + y`
    Add,
    /// `z = x - y`
    Sub,
}

/// A three-place additive constraint `ADD(X, Y; Z)` or `SUB(X, Y; Z)`
/// (Appendix A.6, Figure 13).
///
/// These conditionally propagate pointer-ness and integer-ness between the
/// operands and result of an addition/subtraction whose operands are not
/// statically constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AddSubConstraint {
    /// Addition or subtraction.
    pub kind: AddSubKind,
    /// First operand type variable.
    pub x: DerivedVar,
    /// Second operand type variable.
    pub y: DerivedVar,
    /// Result type variable (`z = x ± y`).
    pub z: DerivedVar,
}

impl fmt::Display for AddSubConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AddSubKind::Add => "Add",
            AddSubKind::Sub => "Sub",
        };
        write!(f, "{k}({}, {}; {})", self.x, self.y, self.z)
    }
}

/// A finite set of constraints over derived type variables
/// (Definition 3.3).
///
/// The set stores subtype constraints, explicit capability (`VAR`)
/// declarations, and additive constraints. Iteration order is deterministic.
///
/// ```
/// use retypd_core::ConstraintSet;
///
/// let mut c = ConstraintSet::new();
/// c.add_sub_str("y", "p");
/// c.add_sub_str("p.load", "x");
/// assert_eq!(c.subtypes().count(), 2);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ConstraintSet {
    subtypes: BTreeSet<SubtypeConstraint>,
    var_decls: BTreeSet<DerivedVar>,
    addsubs: BTreeSet<AddSubConstraint>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Adds `lhs ⊑ rhs`.
    pub fn add_sub(&mut self, lhs: DerivedVar, rhs: DerivedVar) {
        self.subtypes.insert(SubtypeConstraint::new(lhs, rhs));
    }

    /// Adds a subtype constraint given in the textual syntax of
    /// [`crate::parse`] (e.g. `"p.load.σ32@0 <= x"`).
    ///
    /// # Panics
    ///
    /// Panics if either side fails to parse; intended for tests and
    /// examples. Use [`crate::parse::parse_derived_var`] for fallible
    /// parsing.
    pub fn add_sub_str(&mut self, lhs: &str, rhs: &str) {
        let l = crate::parse::parse_derived_var(lhs)
            .unwrap_or_else(|e| panic!("bad derived var {lhs:?}: {e}"));
        let r = crate::parse::parse_derived_var(rhs)
            .unwrap_or_else(|e| panic!("bad derived var {rhs:?}: {e}"));
        self.add_sub(l, r);
    }

    /// Adds an explicit capability declaration `VAR X`.
    pub fn add_var_decl(&mut self, v: DerivedVar) {
        self.var_decls.insert(v);
    }

    /// Adds an additive constraint.
    pub fn add_addsub(&mut self, c: AddSubConstraint) {
        self.addsubs.insert(c);
    }

    /// Iterates over the subtype constraints in deterministic order.
    pub fn subtypes(&self) -> impl Iterator<Item = &SubtypeConstraint> {
        self.subtypes.iter()
    }

    /// Iterates over explicit `VAR` declarations.
    pub fn var_decls(&self) -> impl Iterator<Item = &DerivedVar> {
        self.var_decls.iter()
    }

    /// Iterates over additive constraints.
    pub fn addsubs(&self) -> impl Iterator<Item = &AddSubConstraint> {
        self.addsubs.iter()
    }

    /// Number of subtype constraints.
    pub fn len(&self) -> usize {
        self.subtypes.len()
    }

    /// True if there are no constraints of any kind.
    pub fn is_empty(&self) -> bool {
        self.subtypes.is_empty() && self.var_decls.is_empty() && self.addsubs.is_empty()
    }

    /// Returns every derived type variable mentioned anywhere in the set
    /// (both sides of subtype constraints, `VAR` declarations, and additive
    /// constraints), without prefix-closure.
    pub fn mentioned_vars(&self) -> BTreeSet<DerivedVar> {
        let mut out = BTreeSet::new();
        for c in &self.subtypes {
            out.insert(c.lhs.clone());
            out.insert(c.rhs.clone());
        }
        for v in &self.var_decls {
            out.insert(v.clone());
        }
        for a in &self.addsubs {
            out.insert(a.x.clone());
            out.insert(a.y.clone());
            out.insert(a.z.clone());
        }
        out
    }

    /// Returns all base variables mentioned in the set.
    pub fn base_vars(&self) -> BTreeSet<crate::BaseVar> {
        self.mentioned_vars().iter().map(|d| d.base()).collect()
    }

    /// Merges another constraint set into this one.
    pub fn extend(&mut self, other: &ConstraintSet) {
        self.subtypes.extend(other.subtypes.iter().cloned());
        self.var_decls.extend(other.var_decls.iter().cloned());
        self.addsubs.extend(other.addsubs.iter().cloned());
    }

    /// True if the exact constraint `lhs ⊑ rhs` is syntactically present.
    pub fn contains_sub(&self, lhs: &DerivedVar, rhs: &DerivedVar) -> bool {
        self.subtypes
            .contains(&SubtypeConstraint::new(lhs.clone(), rhs.clone()))
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.subtypes {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        for v in &self.var_decls {
            if !first {
                writeln!(f)?;
            }
            write!(f, "VAR {v}")?;
            first = false;
        }
        for a in &self.addsubs {
            if !first {
                writeln!(f)?;
            }
            write!(f, "{a}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<SubtypeConstraint> for ConstraintSet {
    fn from_iter<I: IntoIterator<Item = SubtypeConstraint>>(iter: I) -> ConstraintSet {
        let mut c = ConstraintSet::new();
        for s in iter {
            c.add_sub(s.lhs, s.rhs);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    #[test]
    fn dedup_and_order() {
        let mut c = ConstraintSet::new();
        c.add_sub_str("b", "c");
        c.add_sub_str("a", "b");
        c.add_sub_str("a", "b");
        assert_eq!(c.len(), 2);
        let rendered = c.to_string();
        // BTreeSet ordering puts a ⊑ b first.
        assert!(rendered.starts_with("a ⊑ b"));
    }

    #[test]
    fn mentioned_vars_includes_everything() {
        let mut c = ConstraintSet::new();
        c.add_sub_str("x.load", "y");
        c.add_var_decl(DerivedVar::var("z").push(Label::Store));
        let vars = c.mentioned_vars();
        assert!(vars.contains(&crate::parse::parse_derived_var("x.load").unwrap()));
        assert!(vars.contains(&DerivedVar::var("y")));
        assert!(vars.contains(&DerivedVar::var("z").push(Label::Store)));
    }
}
