//! Polymorphic functions in machine code (§2.2): one `malloc` wrapper and
//! one generic `release` wrapper used at two *different* struct types.
//! Retypd's callsite instantiation keeps the two types separate; a
//! unification-based analysis merges them.
//!
//! ```text
//! cargo run --example polymorphic_malloc
//! ```

use retypd::baselines::{infer_unification, InfTy};
use retypd::core::{Lattice, Loc, Symbol};
use retypd::eval::infer_retypd;
use retypd::minic::codegen::compile;
use retypd::minic::parse_module;

fn main() {
    let src = "
        struct point { int x; int y; };
        struct name { char* first; char* last; };

        // ∀τ. size_t → τ*, via malloc (a user-defined allocator, §2.2).
        void* alloc(int n) { return malloc(n); }
        // ∀τ. τ* → void.
        void release(void* p) { free(p); return; }

        int use_both() {
            struct point* p = (struct point*) alloc(8);
            p->y = 1;
            struct name* q = (struct name*) alloc(8);
            char* f = q->first;
            release((void*) p);
            release((void*) q);
            return p->y;
        }
    ";
    let module = parse_module(src).expect("parses");
    let (mir, _) = compile(&module).expect("compiles");
    let program = retypd::congen::generate(&mir);
    let lattice = Lattice::c_types();

    let retypd_types = infer_retypd(&program, &lattice);
    let unif_types = infer_unification(&program, &lattice);

    let show = |types: &retypd::baselines::InferredProgram, f: &str| -> String {
        types
            .get(&Symbol::intern(f))
            .and_then(|x| x.params.get(&Loc::Stack(0)))
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into())
    };

    println!("alloc's parameter (both tools agree — it is just a size):");
    println!("  retypd:      {}", show(&retypd_types, "alloc"));
    println!("  unification: {}\n", show(&unif_types, "alloc"));

    println!("release's parameter — the polymorphism test:");
    let r = show(&retypd_types, "release");
    let u = show(&unif_types, "release");
    println!("  retypd:      {r}");
    println!("  unification: {u}");
    println!();
    println!("Retypd leaves the generic pointer generic (each callsite gets a");
    println!("fresh instantiation); unification merges the two structs through");
    println!("the shared formal, inventing a blob type with both field sets.");

    let unif_release = unif_types
        .get(&Symbol::intern("release"))
        .and_then(|x| x.params.get(&Loc::Stack(0)));
    if let Some(InfTy::Ptr(p)) = unif_release {
        if let InfTy::Struct(fields) = p.as_ref() {
            println!(
                "(unification's merged pointee has {} fields — from two structs)",
                fields.len()
            );
        }
    }
}
