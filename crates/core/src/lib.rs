//! # retypd-core
//!
//! A from-scratch reproduction of **Retypd** — *Polymorphic Type Inference
//! for Machine Code* (Noonan, Loginov, Cok; PLDI 2016).
//!
//! Retypd infers most-general, recursively constrained polymorphic type
//! schemes for machine-code procedures from subtyping constraints, models
//! solutions with *sketches* (regular trees marked with elements of a
//! customizable lattice Λ), and downgrades the results to readable C types.
//!
//! The crate is organized to mirror the paper:
//!
//! * [`label`], [`dtv`], [`constraint`] — the constraint language of §3.1
//!   (field labels with variance, derived type variables, constraint sets).
//! * [`lattice`] — the auxiliary lattice Λ of §3.5 / Appendix E.
//! * [`deduction`] — a direct (naive) implementation of the Figure 3 rules,
//!   used as a test oracle.
//! * [`graph`], [`saturation`], [`transducer`] — the pushdown-system
//!   encoding and saturation algorithm of §5.2 / Appendices C–D.
//! * [`simplify`], [`scheme`] — constraint-set simplification and type
//!   schemes (§5, Algorithm D.3).
//! * [`sketch`], [`shapes`] — sketches and shape inference (§3.5,
//!   Appendix E).
//! * [`addsub`] — additive-constraint propagation (Appendix A.6, Fig. 13).
//! * [`solver`] — the bottom-up, SCC-driven pipeline (Appendix F).
//! * [`ctype`] — conversion of sketches to C types, `const` inference, and
//!   the display policies of §4.3 / Appendix G.
//!
//! ## Quick start
//!
//! ```
//! use retypd_core::{ConstraintSet, Lattice, SchemeBuilder};
//!
//! // Constraints for a procedure `f` returning the int stored in its
//! // argument's first field: f.in_stack0.load.σ32@0 flows to f.out_eax.
//! let mut cs = ConstraintSet::new();
//! cs.add_sub_str("f.in_stack0", "t");
//! cs.add_sub_str("t.load.σ32@0", "int");
//! cs.add_sub_str("t.load.σ32@0", "f.out_eax");
//!
//! let lattice = Lattice::c_types();
//! let scheme = SchemeBuilder::new(&lattice).infer("f", &cs);
//! // The simplified scheme relates f's input capability to the constant.
//! assert!(!scheme.constraints().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addsub;
pub mod bitset;
pub mod constraint;
pub mod ctype;
pub mod deduction;
pub mod dtv;
pub mod fuzzing;
pub mod fxhash;
pub mod graph;
mod intern;
pub mod label;
pub mod lattice;
pub mod parse;
pub mod saturation;
pub mod scheme;
pub mod shapes;
pub mod simplify;
pub mod sketch;
pub mod solver;
pub mod sync;
pub mod transducer;
pub mod variance;

pub use constraint::{AddSubConstraint, AddSubKind, ConstraintSet, SubtypeConstraint};
pub use ctype::{CType, CTypeBuilder, FuncSig, TypeTable};
pub use dtv::{BaseVar, DerivedVar};
pub use intern::{Interner, Symbol};
pub use label::{word_variance, Label, Loc};
pub use lattice::{Lattice, LatticeBuilder, LatticeDescriptor, LatticeElem, LatticeError};
pub use scheme::TypeScheme;
pub use shapes::ShapeQuotient;
pub use simplify::SchemeBuilder;
pub use sketch::Sketch;
pub use solver::{
    callsite_actuals, CallTarget, Callsite, Condensation, ProcResult, Procedure, Program,
    SccRefinement, SccSchemes, Solver, SolverResult, SolverStats,
};
pub use variance::Variance;

// The analysis data types are shared across worker threads by
// `retypd-driver`'s SCC-wave scheduler. Guarantee at compile time that the
// types crossing that boundary are `Send + Sync` (in particular `Symbol`,
// which carries a `&'static str` into a process-wide interner, and
// `Lattice`, whose tables are read concurrently by every worker).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Symbol>();
    assert_send_sync::<Lattice>();
    assert_send_sync::<LatticeDescriptor>();
    assert_send_sync::<LatticeElem>();
    assert_send_sync::<TypeScheme>();
    assert_send_sync::<Sketch>();
    assert_send_sync::<ConstraintSet>();
    assert_send_sync::<DerivedVar>();
    assert_send_sync::<Program>();
    assert_send_sync::<Procedure>();
    assert_send_sync::<SolverResult>();
    assert_send_sync::<Condensation>();
    assert_send_sync::<SccSchemes>();
    assert_send_sync::<SccRefinement>();
};
