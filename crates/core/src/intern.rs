//! Global string interner for type-variable and label names.
//!
//! Compiler-style symbol interning: strings are leaked into a process-wide
//! table and referenced by a small copyable [`Symbol`]. Interning the same
//! string twice yields the same symbol, so equality and hashing are O(1).
//!
//! The symbol carries the canonical `&'static str` itself, so every
//! read-side operation — [`Symbol::as_str`], equality, hashing, and
//! crucially [`Ord`] — is lock-free: only [`Symbol::intern`] touches the
//! global table. (An earlier id-based representation took two interner
//! read-locks and a table lookup per comparison, which made ordered
//! collections of symbols — `BTreeSet<BaseVar>` and friends — a hot-path
//! hazard.)
//!
//! The table itself is an [`Interner`] behind the workspace sync facade
//! ([`crate::sync`]): its double-checked read-then-write locking is one
//! of the protocols `crates/conc-check` model-checks (two threads miss
//! on the same key; exactly one insert must win and both must get the
//! same canonical pointer).
//!
//! ```
//! use retypd_core::Symbol;
//!
//! let a = Symbol::intern("eax");
//! let b = Symbol::intern("eax");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "eax");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::sync::{OnceLock, PoisonError, RwLock};

/// An interned string.
///
/// Symbols are cheap to copy and compare: equality and hashing use the
/// canonical pointer (interning guarantees one allocation per distinct
/// string), and ordering is by string content (not interning order) so that
/// data structures built from symbols iterate in a deterministic order
/// regardless of interning history.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

/// A string-interning table: double-checked read-then-write locking
/// around a canonicalizing map.
///
/// [`Symbol::intern`] goes through one process-wide instance; separate
/// instances exist so the protocol itself is testable (and
/// model-checkable) without global state.
#[derive(Default)]
pub struct Interner {
    table: RwLock<HashMap<&'static str, &'static str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Canonicalizes `s`, leaking it on first sight.
    ///
    /// Fast path: a read lock and a lookup. On a miss, re-check under
    /// the write lock (another thread may have inserted between the
    /// locks) before leaking — the re-check is what makes concurrent
    /// double misses insert exactly once.
    pub fn intern(&self, s: &str) -> &'static str {
        {
            let guard = self.table.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(&canon) = guard.get(s) {
                return canon;
            }
        }
        let mut guard = self.table.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&canon) = guard.get(s) {
            return canon;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        guard.insert(leaked, leaked);
        leaked
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.table
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner").field("len", &self.len()).finish()
    }
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(Interner::new)
}

impl Symbol {
    /// Interns `s`, returning its canonical symbol.
    pub fn intern(s: &str) -> Symbol {
        Symbol(interner().intern(s))
    }

    /// Returns the interned string (no lock: the symbol carries it).
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Interning canonicalizes: content equality ⟺ pointer equality.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the canonical address, not the content: O(1) and consistent
        // with the pointer-based `Eq`.
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        let c = Symbol::intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn ordering_is_by_string() {
        // Intern in reverse lexicographic order; Ord must still be lexicographic.
        let z = Symbol::intern("zzz_order");
        let a = Symbol::intern("aaa_order");
        assert!(a < z);
    }

    #[test]
    fn hash_agrees_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        let h = |s: Symbol| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(Symbol::intern("same")), h(Symbol::intern("same")));
    }

    #[test]
    fn debug_shows_content() {
        let s = Symbol::intern("dbg");
        assert_eq!(format!("{s:?}"), "\"dbg\"");
        assert_eq!(format!("{s}"), "dbg");
    }

    #[test]
    fn standalone_interner_canonicalizes() {
        let i = Interner::new();
        assert!(i.is_empty());
        let a = i.intern("x");
        let b = i.intern("x");
        assert!(std::ptr::eq(a, b));
        assert_eq!(i.len(), 1);
        assert_eq!(format!("{i:?}"), "Interner { len: 1 }");
    }
}
