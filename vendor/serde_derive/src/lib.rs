//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde shim.
//!
//! Written against `proc_macro` alone (no `syn`/`quote`, which are
//! unavailable offline): the macro scans the input token stream for the
//! type name and emits a trivial trait impl. `#[serde(...)]` helper
//! attributes are accepted and ignored. Generic types are not supported —
//! no annotated type in this workspace has generics; the macro panics
//! loudly if one appears.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the `struct`/`enum`/`union` being derived for.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = tokens.next() {
                                if p.as_char() == '<' {
                                    panic!(
                                        "serde_derive shim: generic type `{name}` is not \
                                         supported (vendor the real serde to derive it)"
                                    );
                                }
                            }
                            return name.to_string();
                        }
                        other => panic!("serde_derive shim: expected type name, got {other:?}"),
                    }
                }
                // `pub`, `pub(crate)` etc. fall through and are skipped.
            }
            _ => {}
        }
    }
    panic!("serde_derive shim: no struct/enum/union found in derive input")
}

/// No-op `Serialize` derive: serializes every value as its type name.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 serializer.serialize_str(\"{name}\")\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl parses")
}

/// No-op `Deserialize` derive: always errors (nothing deserializes yet).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 ::core::result::Result::Err(::serde::Deserializer::custom_error(\n\
                     deserializer,\n\
                     \"deserialization is stubbed in the offline serde shim\",\n\
                 ))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive shim: generated impl parses")
}
