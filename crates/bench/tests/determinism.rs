//! Determinism regression tests for the benchmark workloads.
//!
//! The bench generators are seeded, and the whole pipeline — graph
//! construction, saturation, quotient building — is required to be
//! deterministic (BTree-ordered constraint sets, dense index assignment in
//! first-materialization order). These tests pin the node and ε-edge counts
//! of the bench generator programs so that a representation change that
//! silently perturbs the graph (lost edges, duplicated nodes,
//! iteration-order dependence) fails here rather than as an unexplained
//! perf or accuracy shift.

use retypd_bench::chain_constraints;
use retypd_core::graph::ConstraintGraph;
use retypd_core::saturation::saturate;
use retypd_core::{Lattice, Solver};
use retypd_minic::codegen::compile;
use retypd_minic::genprog::{GenConfig, ProgramGenerator};

#[test]
fn chain_200_graph_counts_are_pinned() {
    let cs = chain_constraints(200);
    let mut g = ConstraintGraph::build(&cs);
    let nodes = g.node_count();
    let edges_before = g.edge_count();
    let added = saturate(&mut g);
    let report = format!(
        "nodes={nodes} edges_before={edges_before} eps_added={added} edges_after={}",
        g.edge_count()
    );
    assert_eq!(
        report,
        "nodes=1744 edges_before=2814 eps_added=536 edges_after=3350"
    );
}

#[test]
fn chain_200_saturation_is_repeatable() {
    let cs = chain_constraints(200);
    let mut g1 = ConstraintGraph::build(&cs);
    let mut g2 = ConstraintGraph::build(&cs);
    assert_eq!(saturate(&mut g1), saturate(&mut g2));
    assert_eq!(g1.node_count(), g2.node_count());
    assert_eq!(g1.edge_count(), g2.edge_count());
    // Edge-for-edge equality, not just counts.
    for n in g1.nodes() {
        let e1: Vec<_> = g1.edges_out(n).collect();
        let e2: Vec<_> = g2.edges_out(n).collect();
        assert_eq!(e1, e2, "adjacency diverges at node {n:?}");
    }
}

#[test]
fn pipeline_generator_counts_are_pinned() {
    let lattice = Lattice::c_types();
    let mut reports = Vec::new();
    for functions in [10usize, 40] {
        let module = ProgramGenerator::new(GenConfig {
            seed: 7,
            functions,
            ..GenConfig::default()
        })
        .generate();
        let (mir, _) = compile(&module).unwrap();
        let program = retypd_congen::generate(&mir);
        let result = Solver::new(&lattice).infer(&program);
        reports.push(format!(
            "insts={} graph_nodes={} graph_edges={} quotient_nodes={}",
            mir.instruction_count(),
            result.stats.graph_nodes,
            result.stats.graph_edges,
            result.stats.quotient_nodes,
        ));
    }
    assert_eq!(
        reports,
        [
            "insts=212 graph_nodes=616 graph_edges=824 quotient_nodes=284",
            "insts=856 graph_nodes=2262 graph_edges=3052 quotient_nodes=1049",
        ]
    );
}
